//! The campaign engine: one [`CampaignRequest`] in, one response out,
//! through the result cache, the plan cache, and the full
//! generate → compact → evaluate pipeline.
//!
//! The engine is the part of the daemon that knows nothing about
//! sockets — integration tests and the batch endpoint drive it
//! directly. Every run is wrapped in `catch_unwind`, so a panicking
//! campaign produces a 500 response and a poisoned-free server, never
//! a dead worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use castg_core::report::{render_json_report, PipelineTimings};
use castg_core::{
    compact, evaluate_campaign, test_instances_from_compaction, AnalogMacro, CampaignOptions,
    CompactionOptions, ConfigDescription, DescribedConfig, Generator, GeneratorOptions,
    NominalCache, TestConfiguration,
};
use castg_faults::FaultDictionary;
use castg_netlist::{canonical_deck_bytes, parse_deck_with_params, NetlistMacro, NetlistMacroOptions};

use crate::cache::{PlanCache, PlanEntry, ResultCache, StoredResponse};
use crate::digest::{hex, request_digest, sha256, sort_configs, Digest, DigestOptions, Sha256};
use crate::request::{CampaignRequest, ServerCeilings};

/// Whether a response came out of the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Replayed from the result cache.
    Hit,
    /// Computed by the pipeline this request.
    Miss,
    /// Not cacheable (request was rejected before a digest existed).
    None,
}

impl CacheStatus {
    /// The `X-Castg-Cache` header value.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::None => "none",
        }
    }
}

/// One campaign outcome, ready to serialize: status + exact body bytes.
#[derive(Debug, Clone)]
pub struct CampaignResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON).
    pub body: Arc<Vec<u8>>,
    /// Hex request digest (present whenever the request was well-formed
    /// enough to have one; served as `X-Castg-Digest`).
    pub digest_hex: Option<String>,
    /// Result-cache disposition (served as `X-Castg-Cache`).
    pub cache: CacheStatus,
}

impl CampaignResponse {
    fn error(status: u16, kind: &str, message: &str) -> Self {
        use castg_core::report::json_escape;
        let body = format!(
            "{{\"error\": {{\"kind\": \"{}\", \"message\": \"{}\"}}}}\n",
            json_escape(kind),
            json_escape(message),
        );
        CampaignResponse {
            status,
            body: Arc::new(body.into_bytes()),
            digest_hex: None,
            cache: CacheStatus::None,
        }
    }
}

/// Accumulated fault-outcome tallies across every campaign served.
#[derive(Default)]
pub struct OutcomeTotals {
    /// Faults detected.
    pub detected: AtomicU64,
    /// Faults undetected.
    pub undetected: AtomicU64,
    /// Items that exhausted the convergence ladder.
    pub unconverged: AtomicU64,
    /// Structurally singular variants.
    pub singular: AtomicU64,
    /// Items that blew their budget.
    pub timed_out: AtomicU64,
    /// Items whose worker panicked.
    pub panicked: AtomicU64,
    /// Faults that could not be injected.
    pub injection_failed: AtomicU64,
    /// Newton solves across all campaigns.
    pub solves: AtomicU64,
    /// Newton iterations across all campaigns.
    pub iterations: AtomicU64,
}

/// The socket-free core of the daemon: caches + ceilings + pipeline.
pub struct Engine {
    /// Content-addressed response cache.
    pub result_cache: ResultCache,
    /// Process-wide compiled-deck cache.
    pub plan_cache: PlanCache,
    /// Per-request resource ceilings.
    pub ceilings: ServerCeilings,
    /// Worker threads per campaign (reports are thread-count-invariant,
    /// so this does not enter the digest).
    pub threads: usize,
    /// Campaigns completed successfully (cache hits included).
    pub campaigns: AtomicU64,
    /// Requests rejected or failed (any non-200).
    pub errors: AtomicU64,
    /// Fault-outcome totals across served (non-cached) campaigns.
    pub outcomes: OutcomeTotals,
}

impl Engine {
    /// Creates an engine with the given cache capacities.
    pub fn new(
        result_capacity: usize,
        plan_capacity: usize,
        ceilings: ServerCeilings,
        threads: usize,
    ) -> Self {
        Engine {
            result_cache: ResultCache::new(result_capacity),
            plan_cache: PlanCache::new(plan_capacity),
            ceilings,
            threads: threads.max(1),
            campaigns: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            outcomes: OutcomeTotals::default(),
        }
    }

    /// Runs one campaign request end to end. Never panics and never
    /// returns `Err`: every failure mode is a typed JSON error response.
    pub fn run_campaign(&self, req: &CampaignRequest) -> CampaignResponse {
        let response = self.run_campaign_inner(req);
        match response.status {
            200 => self.campaigns.fetch_add(1, Ordering::Relaxed),
            _ => self.errors.fetch_add(1, Ordering::Relaxed),
        };
        response
    }

    fn run_campaign_inner(&self, req: &CampaignRequest) -> CampaignResponse {
        if req.configs.len() > self.ceilings.max_configs {
            return CampaignResponse::error(
                400,
                "too_many_configs",
                &format!(
                    "{} configurations exceeds the server ceiling of {}",
                    req.configs.len(),
                    self.ceilings.max_configs
                ),
            );
        }

        // Canonical config order: ids are assigned after this sort, so
        // request-side reordering changes neither digest nor report.
        let mut configs = req.configs.clone();
        sort_configs(&mut configs);

        // Plan cache: raw-text memo first (skips the parse on repeat
        // decks), canonical digest second (shares plans across
        // formatting variants).
        let entry = match self.plan_entry(req) {
            Ok(entry) => entry,
            Err(message) => return CampaignResponse::error(400, "deck_error", &message),
        };

        // Budgets enter the digest *post-clamp*: requests asking for
        // more than the ceiling share an entry with requests asking for
        // exactly the ceiling, because they run identically.
        let effective_max_faults = Some(
            req.max_faults.map_or(self.ceilings.max_faults, |v| v.min(self.ceilings.max_faults)),
        );
        let options = DigestOptions {
            derivation: req.derivation,
            bridge_ohms: req.bridge_ohms,
            pinhole_ohms: req.pinhole_ohms,
            skip_faults: req.skip_faults,
            max_faults: effective_max_faults,
            dispatch: req.dispatch,
            max_newton_iters: Some(self.ceilings.clamp_newton(req.max_newton_iters)),
            budget_ms: Some(self.ceilings.clamp_budget_ms(req.budget_ms)),
        };
        let digest =
            request_digest(&req.name, &entry.canonical_deck, &configs, &entry.params, &options);
        let digest_hex = hex(&digest);

        if let Some(stored) = self.result_cache.get(&digest) {
            // Replay the stored bytes: hit and miss are byte-identical
            // by construction.
            return CampaignResponse {
                status: stored.status,
                body: stored.body,
                digest_hex: Some(stored.digest_hex),
                cache: CacheStatus::Hit,
            };
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.execute(req, &configs, &entry, &options)
        }));
        let response = match outcome {
            Ok(Ok(body)) => CampaignResponse {
                status: 200,
                body: Arc::new(body.into_bytes()),
                digest_hex: Some(digest_hex.clone()),
                cache: CacheStatus::Miss,
            },
            Ok(Err(mut failed)) => {
                failed.digest_hex = Some(digest_hex.clone());
                failed
            }
            Err(panic) => {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "campaign panicked".to_string());
                let mut r = CampaignResponse::error(500, "panic", &message);
                r.digest_hex = Some(digest_hex.clone());
                r
            }
        };
        if response.status == 200 {
            // Only successes enter the result cache; errors are cheap
            // to recompute and must not pin a digest to a bad body.
            self.result_cache.insert(
                digest,
                StoredResponse {
                    status: response.status,
                    body: Arc::clone(&response.body),
                    digest_hex: digest_hex.clone(),
                },
            );
        }
        response
    }

    /// Parses or recalls the compiled deck for this request.
    fn plan_entry(&self, req: &CampaignRequest) -> Result<PlanEntry, String> {
        let raw_key = raw_deck_key(&req.deck, &req.params);
        if let Some(canonical) = self.plan_cache.lookup_raw(&raw_key) {
            if let Some(entry) = self.plan_cache.get(&canonical) {
                return Ok(entry);
            }
        }
        let deck =
            parse_deck_with_params(&req.deck, &req.params).map_err(|e| e.to_string())?;
        let title = deck.title.clone();
        let params = deck.params.clone();
        let canonical_deck = Arc::new(
            canonical_deck_bytes(&deck).unwrap_or_else(|_| req.deck.as_bytes().to_vec()),
        );
        let canonical = sha256(&canonical_deck);
        self.plan_cache.memo_raw(raw_key, canonical);
        if let Some(entry) = self.plan_cache.get(&canonical) {
            // A formatting variant of a deck we already compiled: the
            // cached circuit's plan is shared, the fresh parse is
            // discarded.
            return Ok(entry);
        }
        let circuit = deck.into_circuit();
        if circuit.devices().is_empty() {
            return Err("deck holds no devices".to_string());
        }
        circuit.compile_plan();
        let entry = PlanEntry { circuit, title, params, canonical_deck };
        self.plan_cache.insert(canonical, entry.clone());
        Ok(entry)
    }

    /// The pipeline proper (runs under `catch_unwind`).
    fn execute(
        &self,
        req: &CampaignRequest,
        sorted_configs: &[String],
        entry: &PlanEntry,
        options: &DigestOptions,
    ) -> Result<String, CampaignResponse> {
        let macro_options = NetlistMacroOptions {
            derivation: options.derivation,
            bridge_ohms: options.bridge_ohms,
            pinhole_ohms: options.pinhole_ohms,
        };
        let mut mac = NetlistMacro::from_parts(
            req.name.clone(),
            entry.circuit.clone(),
            entry.title.clone(),
            entry.params.clone(),
            macro_options,
        )
        .map_err(|e| CampaignResponse::error(400, "deck_error", &e.to_string()))?;

        let mut described: Vec<Arc<dyn TestConfiguration>> =
            Vec::with_capacity(sorted_configs.len());
        for (i, text) in sorted_configs.iter().enumerate() {
            let description = ConfigDescription::parse(text).map_err(|e| {
                CampaignResponse::error(400, "config_error", &format!("configs[{i}]: {e}"))
            })?;
            let cfg = DescribedConfig::new(i + 1, description).map_err(|e| {
                CampaignResponse::error(400, "config_error", &format!("configs[{i}]: {e}"))
            })?;
            described.push(Arc::new(cfg));
        }
        mac = mac.with_configurations(described);
        if let Some((solver, ordering)) = options.dispatch {
            mac = mac
                .with_solver(solver, ordering)
                .map_err(|e| CampaignResponse::error(400, "config_error", &e.to_string()))?;
        }

        let mut dict = mac.fault_dictionary();
        if options.skip_faults > 0 || options.max_faults.is_some() {
            let take = options.max_faults.unwrap_or(usize::MAX);
            dict = FaultDictionary::new(
                dict.iter().skip(options.skip_faults).take(take).cloned().collect(),
            );
        }
        if dict.is_empty() {
            return Err(CampaignResponse::error(
                422,
                "empty_dictionary",
                "fault selection (skip_faults/max_faults) left no faults",
            ));
        }

        let cache = NominalCache::new();
        let gen_options =
            GeneratorOptions { threads: self.threads, ..GeneratorOptions::default() };
        let t0 = Instant::now();
        let generation = Generator::with_options(&mac, &cache, gen_options).generate(&dict);
        let generate_s = t0.elapsed().as_secs_f64();
        if !generation.failures.is_empty() {
            let mut detail = String::new();
            for (fault, e) in generation.failures.iter().take(5) {
                detail.push_str(&format!("{fault}: {e}; "));
            }
            return Err(CampaignResponse::error(
                422,
                "generation_failed",
                &format!(
                    "{} of {} faults failed generation: {detail}",
                    generation.failures.len(),
                    dict.len()
                ),
            ));
        }

        let t0 = Instant::now();
        let compaction = compact(&mac, &cache, &generation, &CompactionOptions::default())
            .map_err(|e| CampaignResponse::error(422, "compaction_failed", &e.to_string()))?;
        let compact_s = t0.elapsed().as_secs_f64();
        let tests = test_instances_from_compaction(&mac, &compaction)
            .map_err(|e| CampaignResponse::error(422, "compaction_failed", &e.to_string()))?;

        let campaign = CampaignOptions {
            threads: self.threads,
            max_newton_iters: options.max_newton_iters,
            budget_ms: options.budget_ms,
            ..CampaignOptions::default()
        };
        let t0 = Instant::now();
        let coverage = evaluate_campaign(&mac, &cache, &tests, &dict, &campaign)
            .map_err(|e| CampaignResponse::error(422, "evaluation_failed", &e.to_string()))?;
        let evaluate_s = t0.elapsed().as_secs_f64();

        let tally = coverage.tally();
        let o = &self.outcomes;
        o.detected.fetch_add(tally.detected as u64, Ordering::Relaxed);
        o.undetected.fetch_add(tally.undetected as u64, Ordering::Relaxed);
        o.unconverged.fetch_add(tally.unconverged as u64, Ordering::Relaxed);
        o.singular.fetch_add(tally.singular as u64, Ordering::Relaxed);
        o.timed_out.fetch_add(tally.timed_out as u64, Ordering::Relaxed);
        o.panicked.fetch_add(tally.panicked as u64, Ordering::Relaxed);
        o.injection_failed.fetch_add(tally.injection_failed as u64, Ordering::Relaxed);
        o.solves.fetch_add(coverage.ladder.solves() as u64, Ordering::Relaxed);
        o.iterations.fetch_add(coverage.ladder.iterations as u64, Ordering::Relaxed);

        let timings = PipelineTimings { generate_s, compact_s, evaluate_s };
        Ok(render_json_report(
            mac.name(),
            mac.macro_type(),
            dict.len(),
            self.threads,
            &timings,
            tests.len(),
            compaction.original_count,
            &coverage,
        ))
    }
}

/// The raw-memo key: raw deck text + override table, domain-separated.
/// Deck-level (no campaign options) because it memoizes parsing only.
fn raw_deck_key(deck: &str, params: &[(String, f64)]) -> Digest {
    let mut h = Sha256::new();
    let mut field = |tag: &str, bytes: &[u8]| {
        h.update(tag.as_bytes());
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(bytes);
    };
    field("raw_deck", deck.as_bytes());
    let mut sorted: Vec<&(String, f64)> = params.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, value) in sorted {
        field("param", name.as_bytes());
        field("value", &value.to_bits().to_le_bytes());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = "\
.title R-divider
V1 vin 0 DC 5
R1 vin mid 1k
R2 mid out 1k
R3 out 0 2k
";

    const CFG: &str = "\
macro type: R-divider
test configuration: DC output
control vin: dc(lev)
observe out: dc()
return: dV(out)
parameter lev: 1 .. 8
variable box_rel: 0.05
variable box_gain: 0.5
variable box_floor: 1e-3
seed lev: 5
";

    fn request() -> CampaignRequest {
        CampaignRequest {
            name: "divider".into(),
            deck: DECK.into(),
            configs: vec![CFG.into()],
            params: vec![],
            derivation: castg_faults::BridgeDerivation::Exhaustive,
            bridge_ohms: 10e3,
            pinhole_ohms: 2e3,
            dispatch: None,
            skip_faults: 0,
            max_faults: None,
            max_newton_iters: None,
            budget_ms: None,
        }
    }

    #[test]
    fn miss_then_hit_is_byte_identical() {
        let engine = Engine::new(8, 8, ServerCeilings::default(), 2);
        let miss = engine.run_campaign(&request());
        assert_eq!(miss.status, 200, "{}", String::from_utf8_lossy(&miss.body));
        assert_eq!(miss.cache, CacheStatus::Miss);
        let hit = engine.run_campaign(&request());
        assert_eq!(hit.cache, CacheStatus::Hit);
        assert_eq!(miss.body, hit.body);
        assert_eq!(miss.digest_hex, hit.digest_hex);
        assert_eq!(engine.result_cache.stats().0, 1);
        assert_eq!(engine.campaigns.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn formatting_variant_shares_plan_and_result() {
        let engine = Engine::new(8, 8, ServerCeilings::default(), 2);
        let a = engine.run_campaign(&request());
        // Same deck, different formatting: blanks, comments, number
        // spellings, extra spaces. (Identifier case is deliberately
        // unchanged — net-name spellings surface in report bytes, so
        // case is semantic, not formatting.)
        let mut req = request();
        req.deck = "\
.title R-divider
* a comment line
V1   vin 0   DC 5.0

R1 vin mid 1000
R2 mid out 1K
R3 out 0 2e3
".into();
        let b = engine.run_campaign(&req);
        assert_eq!(b.cache, CacheStatus::Hit, "{}", String::from_utf8_lossy(&b.body));
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn config_reordering_is_digest_neutral() {
        let cfg2 = CFG.replace("DC output", "DC output B").replace("seed lev: 5", "seed lev: 6");
        let engine = Engine::new(8, 8, ServerCeilings::default(), 2);
        let mut req = request();
        req.configs = vec![CFG.into(), cfg2.clone()];
        let a = engine.run_campaign(&req);
        req.configs = vec![cfg2, CFG.into()];
        let b = engine.run_campaign(&req);
        assert_eq!(a.status, 200, "{}", String::from_utf8_lossy(&a.body));
        assert_eq!(b.cache, CacheStatus::Hit);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn semantic_change_misses() {
        let engine = Engine::new(8, 8, ServerCeilings::default(), 2);
        let a = engine.run_campaign(&request());
        let mut req = request();
        req.deck = DECK.replace("2k", "3k");
        let b = engine.run_campaign(&req);
        assert_eq!(b.cache, CacheStatus::Miss);
        assert_ne!(a.digest_hex, b.digest_hex);
    }

    #[test]
    fn bad_deck_is_a_400() {
        let engine = Engine::new(8, 8, ServerCeilings::default(), 1);
        let mut req = request();
        req.deck = "R1 a\n".into();
        let r = engine.run_campaign(&req);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8_lossy(&r.body).contains("deck_error"));
        assert_eq!(engine.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bad_config_is_a_400() {
        let engine = Engine::new(8, 8, ServerCeilings::default(), 1);
        let mut req = request();
        req.configs = vec!["not a config".into()];
        let r = engine.run_campaign(&req);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8_lossy(&r.body).contains("config_error"));
    }

    #[test]
    fn empty_fault_slice_is_a_422() {
        let engine = Engine::new(8, 8, ServerCeilings::default(), 1);
        let mut req = request();
        req.skip_faults = 10_000;
        let r = engine.run_campaign(&req);
        assert_eq!(r.status, 422);
        assert!(String::from_utf8_lossy(&r.body).contains("empty_dictionary"));
    }

    #[test]
    fn over_ceiling_budgets_share_a_digest_with_the_ceiling() {
        let ceilings = ServerCeilings { max_newton_iters: 1000, ..Default::default() };
        let engine = Engine::new(8, 8, ceilings, 2);
        let mut req = request();
        req.max_newton_iters = Some(usize::MAX);
        let a = engine.run_campaign(&req);
        req.max_newton_iters = Some(1000);
        let b = engine.run_campaign(&req);
        assert_eq!(a.digest_hex, b.digest_hex);
        assert_eq!(b.cache, CacheStatus::Hit);
    }
}
