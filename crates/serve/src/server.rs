//! The daemon: a `std::net::TcpListener` accept loop, a shared worker
//! pool sized to cores, the HTTP routes, and graceful shutdown.
//!
//! Design notes:
//!
//! * **Thread per connection, pool per campaign.** Connection threads
//!   only parse and serialize; every campaign (single or batch member)
//!   is submitted to one process-wide [`Executor`], so total pipeline
//!   concurrency is bounded by the worker count no matter how many
//!   clients connect.
//! * **Graceful shutdown.** The accept loop polls a shutdown flag
//!   (set by `POST /v1/shutdown`, SIGINT/SIGTERM, or
//!   [`ServerHandle::shutdown`]) every ~2 ms using a nonblocking
//!   listener — polling sidesteps `EINTR`/`SA_RESTART` unreliability
//!   around blocking `accept`. Once set, no new connections are
//!   accepted, in-flight connections drain, and the worker pool joins.
//! * **Failure isolation.** Campaigns run under `catch_unwind` inside
//!   the engine; a panicking request yields a 500 for that tenant and
//!   nothing else.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use castg_core::report::json_escape;

use crate::campaign::{CampaignResponse, Engine};
use crate::http::{read_request_abortable, write_response, Method, Request};
use crate::json::parse_json;
use crate::request::{CampaignRequest, ServerCeilings};

/// How the daemon is launched.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size: campaigns in flight at once (0 = cores).
    pub workers: usize,
    /// Threads each campaign's fan-out uses (thread counts never change
    /// report bytes, only latency).
    pub threads_per_campaign: usize,
    /// Result-cache capacity (responses).
    pub result_capacity: usize,
    /// Plan-cache capacity (compiled decks).
    pub plan_capacity: usize,
    /// Per-request resource ceilings.
    pub ceilings: ServerCeilings,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            threads_per_campaign: 1,
            result_capacity: 256,
            plan_capacity: 64,
            ceilings: ServerCeilings::default(),
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of workers pulling jobs off one channel.
struct Executor {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    fn new(count: usize) -> Self {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..count.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("castg-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("executor receiver poisoned");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender dropped: shutdown
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Executor { sender: Some(sender), workers }
    }

    fn submit(&self, job: Job) -> Result<(), Job> {
        match &self.sender {
            Some(sender) => sender.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }

    fn join(mut self) {
        self.sender = None; // closes the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Shared server state: the engine plus serving counters.
pub struct ServeState {
    /// The socket-free campaign engine (caches + ceilings + pipeline).
    pub engine: Engine,
    /// Requests served, any route or status.
    pub requests: AtomicU64,
    /// Connections currently open.
    pub in_flight: AtomicUsize,
    /// Set to stop accepting and drain.
    pub shutdown: AtomicBool,
    started: Instant,
}

impl ServeState {
    fn new(config: &ServerConfig) -> Self {
        ServeState {
            engine: Engine::new(
                config.result_capacity,
                config.plan_capacity,
                config.ceilings,
                config.threads_per_campaign,
            ),
            requests: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    fn stats_json(&self) -> String {
        let (rhits, rmisses, rlen) = self.engine.result_cache.stats();
        let (phits, pmisses, plen) = self.engine.plan_cache.stats();
        let o = &self.engine.outcomes;
        let rate = |hits: u64, misses: u64| -> f64 {
            let total = hits + misses;
            if total == 0 { 0.0 } else { hits as f64 / total as f64 }
        };
        format!(
            concat!(
                "{{\n",
                "  \"uptime_s\": {:.3},\n",
                "  \"requests\": {},\n",
                "  \"campaigns\": {},\n",
                "  \"errors\": {},\n",
                "  \"result_cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4}}},\n",
                "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4}}},\n",
                "  \"outcomes\": {{\"detected\": {}, \"undetected\": {}, \"unconverged\": {}, \
                 \"singular\": {}, \"timed_out\": {}, \"panicked\": {}, \"injection_failed\": {}}},\n",
                "  \"convergence_stats\": {{\"solves\": {}, \"iterations\": {}}}\n",
                "}}\n",
            ),
            self.started.elapsed().as_secs_f64(),
            self.requests.load(Ordering::Relaxed),
            self.engine.campaigns.load(Ordering::Relaxed),
            self.engine.errors.load(Ordering::Relaxed),
            rhits,
            rmisses,
            rlen,
            rate(rhits, rmisses),
            phits,
            pmisses,
            plen,
            rate(phits, pmisses),
            o.detected.load(Ordering::Relaxed),
            o.undetected.load(Ordering::Relaxed),
            o.unconverged.load(Ordering::Relaxed),
            o.singular.load(Ordering::Relaxed),
            o.timed_out.load(Ordering::Relaxed),
            o.panicked.load(Ordering::Relaxed),
            o.injection_failed.load(Ordering::Relaxed),
            o.solves.load(Ordering::Relaxed),
            o.iterations.load(Ordering::Relaxed),
        )
    }
}

/// A running daemon: address, shutdown control, and the accept-loop
/// join handle. In-process users (tests, `castg bench-serve`) spawn
/// one, talk HTTP to `addr`, then `shutdown()` + `join()`.
pub struct ServerHandle {
    /// The bound address (the ephemeral port, for `127.0.0.1:0`).
    pub addr: SocketAddr,
    state: Arc<ServeState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Requests a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Shared server state (stats inspection in tests/bench).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Waits for the accept loop to drain and the pool to join.
    /// Returns `true` when every in-flight connection drained cleanly
    /// before the internal timeout.
    pub fn join(mut self) -> bool {
        match self.accept_thread.take() {
            Some(t) => t.join().is_ok(),
            None => true,
        }
    }
}

/// Binds and spawns the daemon; returns once the listener is live.
///
/// # Errors
///
/// [`io::Error`] when the address cannot be bound.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.workers
    };
    let state = Arc::new(ServeState::new(&config));
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("castg-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_state, workers))?;
    Ok(ServerHandle { addr, state, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>, workers: usize) {
    let executor = Arc::new(Executor::new(workers));
    let mut connection_threads: Vec<JoinHandle<()>> = Vec::new();
    while !state.shutdown.load(Ordering::SeqCst) && !signal::requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_state = Arc::clone(&state);
                let executor = Arc::clone(&executor);
                state.in_flight.fetch_add(1, Ordering::SeqCst);
                let t = std::thread::Builder::new()
                    .name("castg-serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_state, &executor);
                        conn_state.in_flight.fetch_sub(1, Ordering::SeqCst);
                    });
                match t {
                    Ok(t) => connection_threads.push(t),
                    Err(_) => {
                        state.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                // Prune finished connection threads opportunistically.
                connection_threads.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    state.shutdown.store(true, Ordering::SeqCst);
    // Drain: wait for in-flight connections (bounded), then join the
    // pool so queued campaigns finish before the process exits.
    let deadline = Instant::now() + Duration::from_secs(30);
    while state.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    for t in connection_threads {
        let _ = t.join();
    }
    if let Ok(executor) = Arc::try_unwrap(executor) {
        executor.join();
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServeState>, executor: &Arc<Executor>) {
    // Short read timeout so the abort hook gets polled: an idle
    // keep-alive connection notices a drain within ~100 ms.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        let mut should_abort = || state.shutdown.load(Ordering::SeqCst) || signal::requested();
        let request = match read_request_abortable(&mut stream, &mut should_abort) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean EOF between requests
            Err(e) => {
                let body = error_body("bad_request", &e.to_string());
                let _ = write_response(&mut stream, 400, &[], body.as_bytes(), false);
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        // Finish this request but drop keep-alive once draining.
        let keep_alive = request.head.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        let ok = route(&mut stream, state, executor, &request, keep_alive);
        if !ok || !keep_alive {
            return;
        }
    }
}

fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\": {{\"kind\": \"{}\", \"message\": \"{}\"}}}}\n",
        json_escape(kind),
        json_escape(message),
    )
}

/// Runs one campaign on the worker pool, blocking this connection
/// thread until a worker picks it up and finishes.
fn run_pooled(
    state: &Arc<ServeState>,
    executor: &Executor,
    request: CampaignRequest,
) -> CampaignResponse {
    let (tx, rx): (Sender<CampaignResponse>, Receiver<CampaignResponse>) = channel();
    let job_state = Arc::clone(state);
    let job: Job = Box::new(move || {
        let response = job_state.engine.run_campaign(&request);
        let _ = tx.send(response);
    });
    match executor.submit(job) {
        Ok(()) => rx.recv().unwrap_or_else(|_| {
            // The worker died without replying (its engine call never
            // panics, so this is a shutdown race): report 503.
            CampaignResponse {
                status: 503,
                body: Arc::new(error_body("shutting_down", "worker pool unavailable").into_bytes()),
                digest_hex: None,
                cache: crate::campaign::CacheStatus::None,
            }
        }),
        Err(job) => {
            // Pool already gone (drain race): run inline.
            job();
            rx.recv().expect("inline job always replies")
        }
    }
}

/// Dispatches one request; returns `false` when the connection should
/// close because the response could not be written.
fn route(
    stream: &mut TcpStream,
    state: &Arc<ServeState>,
    executor: &Executor,
    request: &Request,
    keep_alive: bool,
) -> bool {
    let head = &request.head;
    let write = |stream: &mut TcpStream,
                 status: u16,
                 extra: &[(&str, &str)],
                 body: &[u8]|
     -> bool { write_response(stream, status, extra, body, keep_alive).is_ok() };

    match (head.method, head.target.as_str()) {
        (Method::Get, "/v1/health") => {
            let body = format!(
                "{{\"status\": \"ok\", \"uptime_s\": {:.3}}}\n",
                state.started.elapsed().as_secs_f64()
            );
            write(stream, 200, &[], body.as_bytes())
        }
        (Method::Get, "/v1/stats") => {
            let body = state.stats_json();
            write(stream, 200, &[], body.as_bytes())
        }
        (Method::Post, "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            write(stream, 200, &[], b"{\"ok\": true}\n")
        }
        (Method::Post, "/v1/campaign") => {
            let parsed = match parse_json(&request.body) {
                Ok(v) => v,
                Err(e) => {
                    let body = error_body("bad_json", &e.to_string());
                    return write(stream, 400, &[], body.as_bytes());
                }
            };
            let campaign_request = match CampaignRequest::from_json(&parsed) {
                Ok(r) => r,
                Err(e) => {
                    let body = error_body("bad_request", &e.to_string());
                    return write(stream, 400, &[], body.as_bytes());
                }
            };
            let response = run_pooled(state, executor, campaign_request);
            let mut extra: Vec<(&str, &str)> = vec![("X-Castg-Cache", response.cache.as_str())];
            if let Some(digest) = &response.digest_hex {
                extra.push(("X-Castg-Digest", digest.as_str()));
            }
            write(stream, response.status, &extra, &response.body)
        }
        (Method::Post, "/v1/batch") => {
            let parsed = match parse_json(&request.body) {
                Ok(v) => v,
                Err(e) => {
                    let body = error_body("bad_json", &e.to_string());
                    return write(stream, 400, &[], body.as_bytes());
                }
            };
            let jobs_v = match parsed.get("jobs").and_then(|j| j.as_array()) {
                Some(jobs) if !jobs.is_empty() => jobs,
                _ => {
                    let body =
                        error_body("bad_request", "body must be {\"jobs\": [<campaign>, ...]}");
                    return write(stream, 400, &[], body.as_bytes());
                }
            };
            if jobs_v.len() > state.engine.ceilings.max_batch_jobs {
                let body = error_body(
                    "too_many_jobs",
                    &format!(
                        "{} jobs exceeds the server ceiling of {}",
                        jobs_v.len(),
                        state.engine.ceilings.max_batch_jobs
                    ),
                );
                return write(stream, 400, &[], body.as_bytes());
            }
            let mut decoded = Vec::with_capacity(jobs_v.len());
            for (i, j) in jobs_v.iter().enumerate() {
                match CampaignRequest::from_json(j) {
                    Ok(r) => decoded.push(r),
                    Err(e) => {
                        let body = error_body("bad_request", &format!("jobs[{i}]: {e}"));
                        return write(stream, 400, &[], body.as_bytes());
                    }
                }
            }
            // Fan every job out over the shared pool, collect in order.
            type Indexed = (usize, CampaignResponse);
            let (tx, rx): (Sender<Indexed>, Receiver<Indexed>) = channel();
            let n = decoded.len();
            for (i, campaign_request) in decoded.into_iter().enumerate() {
                let tx = tx.clone();
                let job_state = Arc::clone(state);
                let job: Job = Box::new(move || {
                    let response = job_state.engine.run_campaign(&campaign_request);
                    let _ = tx.send((i, response));
                });
                if let Err(job) = executor.submit(job) {
                    job(); // drain race: run inline
                }
            }
            drop(tx);
            let mut responses: Vec<Option<CampaignResponse>> = (0..n).map(|_| None).collect();
            for (i, response) in rx {
                responses[i] = Some(response);
            }
            let mut body = String::from("{\"results\": [\n");
            for (i, response) in responses.iter().enumerate() {
                let r = response.as_ref().expect("every batch job replies");
                let report = String::from_utf8_lossy(&r.body);
                body.push_str(&format!(
                    "{{\"status\": {}, \"cache\": \"{}\", \"digest\": \"{}\", \"report\": {}}}",
                    r.status,
                    r.cache.as_str(),
                    r.digest_hex.as_deref().unwrap_or(""),
                    report.trim_end(),
                ));
                body.push_str(if i + 1 < n { ",\n" } else { "\n" });
            }
            body.push_str("]}\n");
            write(stream, 200, &[], body.as_bytes())
        }
        (_, target) => {
            let known = [
                "/v1/health",
                "/v1/stats",
                "/v1/campaign",
                "/v1/batch",
                "/v1/shutdown",
            ];
            let (status, kind) = if known.contains(&target) {
                (405, "method_not_allowed")
            } else {
                (404, "not_found")
            };
            let body = error_body(kind, &format!("{} {}", head.method, target));
            write(stream, status, &[], body.as_bytes())
        }
    }
}

/// POSIX signal hookup for the foreground `castg serve` daemon.
///
/// The build has no `libc` crate, so this binds `signal(2)` directly —
/// the only unsafe code in the workspace, confined here and compiled
/// only on Unix. The handler just stores a flag; the accept loop polls
/// it (async-signal-safe by construction).
pub(crate) mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    /// Whether SIGINT/SIGTERM arrived since [`install`] ran.
    pub fn requested() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }

    /// Installs SIGINT/SIGTERM handlers that set the flag (no-op off
    /// Unix; the daemon then stops via `POST /v1/shutdown` only).
    #[cfg(unix)]
    #[allow(unsafe_code)]
    pub fn install() {
        extern "C" fn on_signal(_signum: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// No signals to hook on non-Unix targets.
    #[cfg(not(unix))]
    pub fn install() {}
}

/// Runs the daemon in the foreground until a shutdown request or
/// signal, then drains. This is what `castg serve` calls.
///
/// # Errors
///
/// [`io::Error`] when the address cannot be bound.
pub fn serve_forever(config: ServerConfig) -> io::Result<()> {
    signal::install();
    let handle = spawn(config)?;
    eprintln!("castg-serve: listening on {}", handle.addr);
    handle.join();
    eprintln!("castg-serve: drained, bye");
    Ok(())
}

impl ServeState {
    /// Uptime of this server.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }
}
