//! A hand-rolled HTTP/1.1 subset: exactly what the campaign daemon
//! speaks, and nothing more.
//!
//! The wire format is deliberately narrow — `GET`/`POST`, absolute
//! paths, `Content-Length` bodies (no chunked transfer), keep-alive by
//! default. [`parse_head`] is a pure function over bytes so the
//! `fuzz_http_request` target can hammer it without sockets: it must
//! return a typed [`HttpError`] or "need more bytes", never panic.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum size of the request head (request line + headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum size of a request body. Campaign decks are kilobytes; 8 MiB
/// leaves room for large batches while bounding memory per connection.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Maximum number of headers in one request.
pub const MAX_HEADERS: usize = 64;

/// HTTP methods the daemon accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// A typed error from the request parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The head grew past [`MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge,
    /// The request line was not `METHOD target HTTP/1.x`.
    MalformedRequestLine,
    /// A method other than GET/POST.
    UnsupportedMethod(String),
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion(String),
    /// A header line without a `:` or with an invalid name.
    MalformedHeader,
    /// More than [`MAX_HEADERS`] headers.
    TooManyHeaders,
    /// `Content-Length` missing on POST, duplicated, or unparseable.
    BadContentLength,
    /// Declared body larger than [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// `Transfer-Encoding` present (the daemon only does lengths).
    UnsupportedTransferEncoding,
    /// The socket failed mid-request.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::MalformedRequestLine => write!(f, "malformed request line"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method `{m}`"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version `{v}`"),
            HttpError::MalformedHeader => write!(f, "malformed header line"),
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::BadContentLength => write!(f, "missing or invalid Content-Length"),
            HttpError::BodyTooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported; send Content-Length")
            }
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// The parsed request head: everything before the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method.
    pub method: Method,
    /// Request target (path + optional query), as sent.
    pub target: String,
    /// Header name/value pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Declared body length (0 when absent on GET).
    pub content_length: usize,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Head {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// A complete request: head plus body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The parsed head.
    pub head: Head,
    /// The body (empty for GET).
    pub body: Vec<u8>,
}

/// Parses a request head from a byte buffer.
///
/// Returns `Ok(None)` when the buffer does not yet contain the full
/// `\r\n\r\n`-terminated head (the caller should read more bytes),
/// `Ok(Some((head, consumed)))` on success where `consumed` is the
/// number of bytes of head (body starts at that offset), and a typed
/// [`HttpError`] for malformed input. Pure: no I/O, no panics.
pub fn parse_head(buf: &[u8]) -> Result<Option<(Head, usize)>, HttpError> {
    let end = match find_head_end(buf) {
        Some(end) => end,
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            return Ok(None);
        }
    };
    if end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    let head_bytes = &buf[..end];
    let text = std::str::from_utf8(head_bytes).map_err(|_| HttpError::MalformedRequestLine)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::MalformedRequestLine)?;

    let mut parts = request_line.split(' ');
    let method_s = parts.next().ok_or(HttpError::MalformedRequestLine)?;
    let target = parts.next().ok_or(HttpError::MalformedRequestLine)?;
    let version = parts.next().ok_or(HttpError::MalformedRequestLine)?;
    if parts.next().is_some() || method_s.is_empty() || target.is_empty() {
        return Err(HttpError::MalformedRequestLine);
    }
    let method = match method_s {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(HttpError::UnsupportedMethod(other.to_string())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    if !target.starts_with('/') {
        return Err(HttpError::MalformedRequestLine);
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            // The trailing empty element after the final CRLF.
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::MalformedHeader)?;
        if name.is_empty()
            || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(HttpError::MalformedHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }

    let mut content_length = 0usize;
    let lengths: Vec<&str> = headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .map(|(_, v)| v.as_str())
        .collect();
    match lengths.as_slice() {
        [] => {
            if method == Method::Post {
                return Err(HttpError::BadContentLength);
            }
        }
        [one] => {
            content_length = one.parse::<usize>().map_err(|_| HttpError::BadContentLength)?;
        }
        _ => return Err(HttpError::BadContentLength),
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    Ok(Some((Head { method, target: target.to_string(), headers, content_length, keep_alive }, end)))
}

/// Finds the end of the head (offset just past `\r\n\r\n`), if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads one full request from a stream.
///
/// Returns `Ok(None)` on clean EOF before any bytes (the peer closed a
/// keep-alive connection between requests).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, HttpError> {
    read_request_abortable(stream, &mut || false)
}

/// [`read_request`] with an abort hook: `should_abort` is polled on
/// every read timeout (set a short `read_timeout` on the stream), so a
/// draining server can close idle keep-alive connections promptly
/// instead of waiting out a long socket timeout.
///
/// Aborting between requests returns `Ok(None)` like a clean EOF;
/// aborting mid-request is an [`HttpError::Io`].
pub fn read_request_abortable(
    stream: &mut TcpStream,
    should_abort: &mut dyn FnMut() -> bool,
) -> Result<Option<Request>, HttpError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut read_more = |buf: &mut Vec<u8>, stream: &mut TcpStream| -> Result<bool, HttpError> {
        // Ok(true) = got bytes or should retry; Ok(false) = clean EOF.
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    return Ok(true);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if should_abort() {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::Io(e.to_string())),
            }
        }
    };
    let (head, consumed) = loop {
        match parse_head(&buf)? {
            Some(found) => break found,
            None => {
                if !read_more(&mut buf, stream)? {
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(HttpError::Io("connection closed mid-request".into()));
                }
            }
        }
    };
    let mut body = buf[consumed..].to_vec();
    while body.len() < head.content_length {
        if !read_more(&mut body, stream)? {
            return Err(HttpError::Io("connection closed mid-body".into()));
        }
    }
    body.truncate(head.content_length);
    Ok(Some(Request { head, body }))
}

/// Standard reason phrases for the status codes the daemon uses.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response with a JSON body and optional extra headers.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason_phrase(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_head() {
        let raw = b"POST /v1/campaign HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let (head, consumed) = parse_head(raw).unwrap().unwrap();
        assert_eq!(head.method, Method::Post);
        assert_eq!(head.target, "/v1/campaign");
        assert_eq!(head.content_length, 5);
        assert!(head.keep_alive);
        assert_eq!(&raw[consumed..], b"hello");
        assert_eq!(head.header("HOST"), Some("x"));
    }

    #[test]
    fn incomplete_head_asks_for_more() {
        assert_eq!(parse_head(b"POST /v1/camp").unwrap(), None);
        assert_eq!(parse_head(b"").unwrap(), None);
    }

    #[test]
    fn typed_errors() {
        let cases: Vec<(&[u8], HttpError)> = vec![
            (b"PUT / HTTP/1.1\r\n\r\n", HttpError::UnsupportedMethod("PUT".into())),
            (b"GET / HTTP/2\r\n\r\n", HttpError::UnsupportedVersion("HTTP/2".into())),
            (b"GET x HTTP/1.1\r\n\r\n", HttpError::MalformedRequestLine),
            (b"POST / HTTP/1.1\r\n\r\n", HttpError::BadContentLength),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
                HttpError::BadContentLength,
            ),
            (b"GET / HTTP/1.1\r\nBad Header\r\n\r\n", HttpError::MalformedHeader),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                HttpError::UnsupportedTransferEncoding,
            ),
            (b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n", HttpError::BodyTooLarge),
            (b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", HttpError::BadContentLength),
        ];
        for (raw, want) in cases {
            assert_eq!(parse_head(raw).unwrap_err(), want, "input: {raw:?}");
        }
    }

    #[test]
    fn head_size_is_bounded() {
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 8));
        assert_eq!(parse_head(&big).unwrap_err(), HttpError::HeadTooLarge);
    }

    #[test]
    fn http10_defaults_to_close() {
        let raw = b"GET /v1/health HTTP/1.0\r\n\r\n";
        let (head, _) = parse_head(raw).unwrap().unwrap();
        assert!(!head.keep_alive);
        let raw = b"GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (head, _) = parse_head(raw).unwrap().unwrap();
        assert!(!head.keep_alive);
    }
}
