//! End-to-end integration tests of the campaign daemon over real
//! sockets: spawn the server in-process, drive it with the keep-alive
//! [`castg_serve::client::Client`], and pin the cache-correctness
//! contract — a cache hit's response body is byte-identical to the miss
//! that populated it, whatever the thread count, and formatting-variant
//! requests land on the same cache entry.

use castg_serve::client::Client;
use castg_serve::{spawn, CacheStatus, ServerConfig};

const DECK: &str = "\
.title R-divider
V1 vin 0 DC 5
R1 vin mid 1k
R2 mid out 1k
R3 out 0 2k
";

/// The same divider, spelled differently: comments, blank lines,
/// spacing and number formats — but identical identifier case, so it
/// canonicalizes to the same deck bytes and must share the cache entry.
const DECK_REFORMATTED: &str = "\
.title R-divider
* resistive divider, reformatted
V1  vin 0  DC 5.0

R1 vin mid 1000
R2 mid out 1K
R3 out 0 2e3
";

const CFG_A: &str = "\
macro type: R-divider
test configuration: DC output
control vin: dc(lev)
observe out: dc()
return: dV(out)
parameter lev: 1 .. 8
variable box_rel: 0.05
variable box_gain: 0.5
variable box_floor: 1e-3
seed lev: 5
";

const CFG_B: &str = "\
macro type: R-divider
test configuration: DC mid tap
control vin: dc(lev)
observe mid: dc()
return: dV(mid)
parameter lev: 1 .. 8
variable box_rel: 0.05
variable box_gain: 0.5
variable box_floor: 1e-3
seed lev: 4
";

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn campaign_body(deck: &str, configs: &[&str]) -> Vec<u8> {
    let configs =
        configs.iter().map(|c| format!("\"{}\"", escape(c))).collect::<Vec<_>>().join(", ");
    format!("{{\"name\": \"divider\", \"deck\": \"{}\", \"configs\": [{configs}]}}", escape(deck))
        .into_bytes()
}

fn start(threads_per_campaign: usize) -> (castg_serve::ServerHandle, Client) {
    let handle = spawn(ServerConfig {
        workers: 2,
        threads_per_campaign,
        ..ServerConfig::default()
    })
    .expect("daemon starts on an ephemeral port");
    let client = Client::new(handle.addr);
    (handle, client)
}

#[test]
fn hit_is_byte_identical_to_miss_over_http() {
    let (handle, mut client) = start(1);

    let body = campaign_body(DECK, &[CFG_A, CFG_B]);
    let miss = client.request("POST", "/v1/campaign", &body).expect("campaign request");
    assert_eq!(miss.status, 200, "{}", String::from_utf8_lossy(&miss.body));
    assert_eq!(miss.header("x-castg-cache"), Some(CacheStatus::Miss.as_str()));
    let digest = miss.header("x-castg-digest").expect("digest header").to_string();
    assert_eq!(digest.len(), 64, "hex sha-256");

    // Replaying the identical request is a hit with identical bytes.
    let hit = client.request("POST", "/v1/campaign", &body).expect("replay");
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-castg-cache"), Some(CacheStatus::Hit.as_str()));
    assert_eq!(hit.header("x-castg-digest"), Some(digest.as_str()));
    assert_eq!(miss.body, hit.body, "hit must replay the miss's exact bytes");

    // A formatting variant of the deck with the configs reordered is
    // the same request: same digest, same cached bytes.
    let variant = campaign_body(DECK_REFORMATTED, &[CFG_B, CFG_A]);
    let v = client.request("POST", "/v1/campaign", &variant).expect("variant");
    assert_eq!(v.header("x-castg-cache"), Some(CacheStatus::Hit.as_str()));
    assert_eq!(v.header("x-castg-digest"), Some(digest.as_str()));
    assert_eq!(miss.body, v.body);

    // A semantic change (one resistor value) is a different entry.
    let other = campaign_body(&DECK.replace("2k", "3k"), &[CFG_A, CFG_B]);
    let o = client.request("POST", "/v1/campaign", &other).expect("semantic change");
    assert_eq!(o.status, 200, "{}", String::from_utf8_lossy(&o.body));
    assert_eq!(o.header("x-castg-cache"), Some(CacheStatus::Miss.as_str()));
    assert_ne!(o.header("x-castg-digest"), Some(digest.as_str()));
    assert_ne!(miss.body, o.body);

    // /v1/stats sees the hits and the misses.
    let stats = client.request("GET", "/v1/stats", b"").expect("stats");
    assert_eq!(stats.status, 200);
    let text = String::from_utf8_lossy(&stats.body).to_string();
    assert!(text.contains("\"result_cache\""), "{text}");

    handle.shutdown();
    assert!(handle.join(), "daemon drains cleanly");
}

/// Hit/miss byte identity holds at every campaign thread count, and
/// the campaign *results* (everything but the wall-clock timing fields
/// and the echoed thread count) agree across thread counts — the
/// fan-out is order-stable, which is why thread counts stay out of the
/// request digest.
#[test]
fn cache_identity_holds_at_any_thread_count() {
    let body = campaign_body(DECK, &[CFG_A]);
    let mut per_fault_sections = Vec::new();
    for threads in [1usize, 2, 4] {
        let (handle, mut client) = start(threads);
        let miss = client.request("POST", "/v1/campaign", &body).expect("campaign");
        assert_eq!(miss.status, 200, "{}", String::from_utf8_lossy(&miss.body));
        assert_eq!(miss.header("x-castg-cache"), Some(CacheStatus::Miss.as_str()));
        let hit = client.request("POST", "/v1/campaign", &body).expect("replay");
        assert_eq!(hit.header("x-castg-cache"), Some(CacheStatus::Hit.as_str()));
        assert_eq!(miss.body, hit.body, "hit != miss at {threads} threads");
        let text = String::from_utf8_lossy(&miss.body).to_string();
        let at = text.find("\"outcomes\"").expect("outcomes section");
        per_fault_sections.push(text[at..].to_string());
        handle.shutdown();
        assert!(handle.join());
    }
    assert_eq!(per_fault_sections[0], per_fault_sections[1], "results differ with threads");
    assert_eq!(per_fault_sections[0], per_fault_sections[2], "results differ with threads");
}

/// Batch answers per job, in request order, and rides the same result
/// cache as the single-campaign endpoint.
#[test]
fn batch_reuses_the_result_cache_in_order() {
    let (handle, mut client) = start(1);

    // Prime the cache with the first job.
    let single = campaign_body(DECK, &[CFG_A]);
    let miss = client.request("POST", "/v1/campaign", &single).expect("prime");
    assert_eq!(miss.status, 200, "{}", String::from_utf8_lossy(&miss.body));

    let jobs = [
        String::from_utf8(campaign_body(DECK, &[CFG_A])).unwrap(),
        String::from_utf8(campaign_body(&DECK.replace("2k", "4k"), &[CFG_A])).unwrap(),
    ];
    let batch = format!("{{\"jobs\": [{}, {}]}}", jobs[0], jobs[1]).into_bytes();
    let r = client.request("POST", "/v1/batch", &batch).expect("batch");
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    let text = String::from_utf8_lossy(&r.body).to_string();
    // Job 0 was primed → hit; job 1 is new → miss; order preserved.
    let hit_at = text.find("\"cache\": \"hit\"").expect("primed job reports a hit");
    let miss_at = text.find("\"cache\": \"miss\"").expect("new job reports a miss");
    assert!(hit_at < miss_at, "batch results out of request order: {text}");

    handle.shutdown();
    assert!(handle.join());
}

/// Wire-level error mapping: malformed JSON is a 400, unknown routes
/// are 404, wrong methods are 405 — and none of them poison the
/// connection or the daemon.
#[test]
fn error_statuses_do_not_poison_the_daemon() {
    let (handle, mut client) = start(1);

    let r = client.request("POST", "/v1/campaign", b"{not json").expect("bad json");
    assert_eq!(r.status, 400, "{}", String::from_utf8_lossy(&r.body));
    assert!(String::from_utf8_lossy(&r.body).contains("\"error\""));

    let r = client.request("GET", "/nope", b"").expect("unknown route");
    assert_eq!(r.status, 404);

    let r = client.request("GET", "/v1/campaign", b"").expect("wrong method");
    assert_eq!(r.status, 405);

    // The daemon still serves real work on the same connection.
    let ok = client
        .request("POST", "/v1/campaign", &campaign_body(DECK, &[CFG_A]))
        .expect("recovery");
    assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));

    let health = client.request("GET", "/v1/health", b"").expect("health");
    assert_eq!(health.status, 200);

    handle.shutdown();
    assert!(handle.join());
}
