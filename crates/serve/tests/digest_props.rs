//! Property-based tests of the request digest — the daemon's cache-key
//! function. Two families of properties:
//!
//! * **Formatting invariance**: edits that cannot change a single byte
//!   of the report (whitespace, comments, number spellings, config
//!   order, `--param` override order) leave the digest unchanged, so
//!   they hit the cache.
//! * **Semantic sensitivity**: edits that can change report bytes
//!   (component values, parameter values, identifier spellings, the
//!   request name, budget options) move the digest, so they can never
//!   alias a stale cached body.
//!
//! Digests are computed exactly as the engine computes them: parse the
//! deck, canonicalize through the round-trip writer, hash with
//! [`request_digest`].

use castg_netlist::{canonical_deck_bytes, parse_deck_with_params};
use castg_serve::{request_digest, sort_configs, Digest, DigestOptions};
use proptest::prelude::*;

/// The engine's key derivation for a raw deck + overrides + configs.
fn digest_of(deck: &str, overrides: &[(String, f64)], configs: &[String]) -> Digest {
    let parsed = parse_deck_with_params(deck, overrides).expect("test decks parse");
    let canonical = canonical_deck_bytes(&parsed).expect("test decks round-trip");
    let mut configs = configs.to_vec();
    sort_configs(&mut configs);
    request_digest("m", &canonical, &configs, &parsed.params, &DigestOptions::default())
}

/// Renders one divider deck with formatting choices driven by the
/// proptest inputs: spacing width, optional comments and blank lines,
/// and per-value spelling (plain vs scientific — both round-trip to the
/// identical `f64`). `style` is a bitmask: bit 0 = comment line, bit 1
/// = blank line, bits 2..5 = scientific spelling per value.
fn render_deck(vs: f64, r1: f64, r2: f64, pad: usize, style: usize) -> String {
    let sp = " ".repeat(1 + pad);
    let num = |v: f64, sci: bool| if sci { format!("{v:e}") } else { format!("{v}") };
    let mut s = String::from(".title ptest\n");
    if style & 1 != 0 {
        s.push_str("* generated variant\n");
    }
    s.push_str(&format!("V1{sp}vin 0 DC {}\n", num(vs, style & 4 != 0)));
    if style & 2 != 0 {
        s.push('\n');
    }
    s.push_str(&format!("R1 vin mid{sp}{}\n", num(r1, style & 8 != 0)));
    s.push_str(&format!("R2 mid 0 {}\n", num(r2, style & 16 != 0)));
    s
}

const CFG_A: &str = "macro type: p\ntest configuration: a\ncontrol vin: dc(lev)\n";
const CFG_B: &str = "macro type: p\ntest configuration: b\nobserve mid: dc()\n";

proptest! {
    /// Whitespace, comments, blank lines and number spellings never
    /// move the digest: every formatting rendering of the same circuit
    /// keys the same cache entry.
    #[test]
    fn formatting_only_edits_share_a_digest(
        vs in 0.5f64..20.0,
        r1 in 1.0f64..1e6,
        r2 in 1.0f64..1e6,
        pad_a in 0usize..4, pad_b in 0usize..4,
        style_a in 0usize..32, style_b in 0usize..32,
    ) {
        let a = render_deck(vs, r1, r2, pad_a, style_a);
        let b = render_deck(vs, r1, r2, pad_b, style_b);
        prop_assert_eq!(
            digest_of(&a, &[], &[]),
            digest_of(&b, &[], &[]),
            "formatting variants diverged:\n--- a ---\n{}\n--- b ---\n{}", a, b
        );
    }

    /// Changing any one component value moves the digest.
    #[test]
    fn component_value_changes_move_the_digest(
        vs in 0.5f64..20.0,
        r1 in 1.0f64..1e6,
        r2 in 1.0f64..1e6,
        scale in 1.5f64..10.0,
        which in 0usize..3,
    ) {
        let base = render_deck(vs, r1, r2, 0, 0);
        let (vs2, r12, r22) = match which {
            0 => (vs * scale, r1, r2),
            1 => (vs, r1 * scale, r2),
            _ => (vs, r1, r2 * scale),
        };
        let edited = render_deck(vs2, r12, r22, 0, 0);
        prop_assert!(
            digest_of(&base, &[], &[]) != digest_of(&edited, &[], &[]),
            "value edit did not move the digest:\n{}\nvs\n{}", base, edited
        );
    }

    /// Identifier case is semantic (net spellings surface in report
    /// fault names), so a case-changed net is a different cache entry.
    #[test]
    fn identifier_case_is_semantic(
        vs in 0.5f64..20.0,
        r1 in 1.0f64..1e6,
        r2 in 1.0f64..1e6,
    ) {
        let base = render_deck(vs, r1, r2, 0, 0);
        let upper = base.replace("mid", "MID");
        prop_assert!(
            digest_of(&base, &[], &[]) != digest_of(&upper, &[], &[]),
            "case change did not move the digest:\n{}", base
        );
    }

    /// Config order and `--param` override order are request-side
    /// noise: the engine sorts both before hashing.
    #[test]
    fn config_and_param_order_are_digest_neutral(
        rbase in 1.0f64..1e6,
        rload in 1.0f64..1e6,
    ) {
        let deck = ".title ptest\n.param rb=1k rl=2k\n\
                    V1 vin 0 DC 5\nR1 vin mid {rb}\nR2 mid 0 {rl}\n";
        let fwd = vec![("rb".to_string(), rbase), ("rl".to_string(), rload)];
        let rev = vec![("rl".to_string(), rload), ("rb".to_string(), rbase)];
        let cfgs_fwd = vec![CFG_A.to_string(), CFG_B.to_string()];
        let cfgs_rev = vec![CFG_B.to_string(), CFG_A.to_string()];
        prop_assert_eq!(
            digest_of(deck, &fwd, &cfgs_fwd),
            digest_of(deck, &rev, &cfgs_rev)
        );
    }

    /// Override values are load-bearing: the digest tracks the resolved
    /// parameter table, not the `.param` card text.
    #[test]
    fn param_override_values_move_the_digest(
        rbase in 1.0f64..1e6,
        scale in 1.5f64..10.0,
    ) {
        let deck = ".title ptest\n.param rb=1k\n\
                    V1 vin 0 DC 5\nR1 vin mid {rb}\nR2 mid 0 2k\n";
        let a = vec![("rb".to_string(), rbase)];
        let b = vec![("rb".to_string(), rbase * scale)];
        prop_assert!(
            digest_of(deck, &a, &[]) != digest_of(deck, &b, &[]),
            "override value did not move the digest (rb = {} vs {})", rbase, rbase * scale
        );
    }

    /// Config text and request name are part of the key (both surface
    /// in response bytes), and the solver/budget option fields are too.
    #[test]
    fn name_configs_and_options_move_the_digest(
        vs in 0.5f64..20.0,
        r1 in 1.0f64..1e6,
    ) {
        let deck = render_deck(vs, r1, 2e3, 0, 0);
        let parsed = parse_deck_with_params(&deck, &[]).unwrap();
        let canonical = canonical_deck_bytes(&parsed).unwrap();
        let base = request_digest("m", &canonical, &[], &[], &DigestOptions::default());

        prop_assert!(
            base != request_digest("m2", &canonical, &[], &[], &DigestOptions::default()),
            "request name must be hashed"
        );
        prop_assert!(
            base != request_digest(
                "m", &canonical, &[CFG_A.to_string()], &[], &DigestOptions::default()),
            "config texts must be hashed"
        );
        let opts = DigestOptions { max_newton_iters: Some(12_345), ..DigestOptions::default() };
        prop_assert!(base != request_digest("m", &canonical, &[], &[], &opts));
        let opts = DigestOptions { bridge_ohms: 20e3, ..DigestOptions::default() };
        prop_assert!(base != request_digest("m", &canonical, &[], &[], &opts));
    }
}
