use crate::bjt::{BjtParams, BjtPolarity};
use crate::diode::DiodeParams;
use crate::mos::{MosParams, MosPolarity};
use crate::node::NodeId;
use crate::stimulus::Waveform;

/// The concrete electrical element a [`Device`] represents.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceKind {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b` (open in DC).
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (> 0).
        farads: f64,
    },
    /// Linear inductor between `a` and `b` (a short in DC; adds one MNA
    /// branch-current unknown carrying the inductor current).
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries (> 0).
        henries: f64,
    },
    /// Independent voltage source from `pos` to `neg` (adds one MNA
    /// branch-current unknown).
    Vsource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        wave: Waveform,
    },
    /// Independent current source driving current *out of* `from` and
    /// *into* `to` (through the source).
    Isource {
        /// Terminal the current is pulled out of.
        from: NodeId,
        /// Terminal the current is pushed into.
        to: NodeId,
        /// Source value over time.
        wave: Waveform,
    },
    /// Level-1 MOSFET.
    Mosfet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Bulk/body terminal.
        b: NodeId,
        /// Channel polarity.
        polarity: MosPolarity,
        /// Model parameters.
        params: MosParams,
    },
    /// Voltage-controlled voltage source:
    /// `v(pos) − v(neg) = gain · (v(cp) − v(cn))`.
    Vcvs {
        /// Positive output terminal.
        pos: NodeId,
        /// Negative output terminal.
        neg: NodeId,
        /// Positive controlling terminal.
        cp: NodeId,
        /// Negative controlling terminal.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Junction diode from anode `a` to cathode `k` (Shockley with
    /// series resistance and pn-junction limiting; see
    /// [`crate::diode`]).
    Diode {
        /// Anode terminal.
        a: NodeId,
        /// Cathode terminal.
        k: NodeId,
        /// Model parameters.
        params: DiodeParams,
    },
    /// Bipolar junction transistor (Ebers-Moll; see [`crate::bjt`]).
    Bjt {
        /// Collector terminal.
        c: NodeId,
        /// Base terminal.
        b: NodeId,
        /// Emitter terminal.
        e: NodeId,
        /// NPN or PNP.
        polarity: BjtPolarity,
        /// Model parameters.
        params: BjtParams,
    },
    /// Voltage-controlled current source: current
    /// `gm · (v(cp) − v(cn))` flows from `pos` through the source into
    /// `neg` (out of the `pos` node, into the `neg` node).
    Vccs {
        /// Terminal the controlled current leaves the circuit from.
        pos: NodeId,
        /// Terminal the controlled current returns into.
        neg: NodeId,
        /// Positive controlling terminal.
        cp: NodeId,
        /// Negative controlling terminal.
        cn: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Current-controlled current source: current
    /// `gain · i(ctrl)` flows from `pos` through the source into `neg`,
    /// where `ctrl` names an already-added device that carries an MNA
    /// branch current (V/E/H/L).
    Cccs {
        /// Terminal the controlled current leaves the circuit from.
        pos: NodeId,
        /// Terminal the controlled current returns into.
        neg: NodeId,
        /// Name of the controlling branch-current device.
        ctrl: std::sync::Arc<str>,
        /// Current gain.
        gain: f64,
    },
    /// Current-controlled voltage source:
    /// `v(pos) − v(neg) = ohms · i(ctrl)` (adds one MNA branch-current
    /// unknown); `ctrl` names an already-added branch-current device.
    Ccvs {
        /// Positive output terminal.
        pos: NodeId,
        /// Negative output terminal.
        neg: NodeId,
        /// Name of the controlling branch-current device.
        ctrl: std::sync::Arc<str>,
        /// Transresistance in ohms.
        ohms: f64,
    },
}

/// A named circuit element.
///
/// Names identify devices for probing (source currents), fault injection
/// (replacing a MOSFET by its pinhole expansion) and reporting. Within a
/// [`Circuit`](crate::Circuit) names are unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// `Arc<str>`: fault campaigns clone whole netlists once per
    /// injected variant, and a shared name is a refcount bump instead
    /// of a heap copy. The same `Arc` keys the circuit's device index.
    name: std::sync::Arc<str>,
    kind: DeviceKind,
}

impl Device {
    /// Creates a device from a name and kind. Prefer the typed
    /// constructors on [`Circuit`](crate::Circuit), which validate values.
    pub fn new(name: impl AsRef<str>, kind: DeviceKind) -> Self {
        Device { name: std::sync::Arc::from(name.as_ref()), kind }
    }

    /// The shared name handle (cheap to clone into index keys).
    pub(crate) fn name_arc(&self) -> std::sync::Arc<str> {
        std::sync::Arc::clone(&self.name)
    }

    /// The device's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The electrical element.
    pub fn kind(&self) -> &DeviceKind {
        &self.kind
    }

    /// Mutable access to the element (used by fault injection to retune
    /// model resistances in place).
    pub fn kind_mut(&mut self) -> &mut DeviceKind {
        &mut self.kind
    }

    /// All nodes this device touches.
    pub fn nodes(&self) -> Vec<NodeId> {
        match &self.kind {
            DeviceKind::Resistor { a, b, .. }
            | DeviceKind::Capacitor { a, b, .. }
            | DeviceKind::Inductor { a, b, .. } => {
                vec![*a, *b]
            }
            DeviceKind::Vsource { pos, neg, .. } => vec![*pos, *neg],
            DeviceKind::Isource { from, to, .. } => vec![*from, *to],
            DeviceKind::Mosfet { d, g, s, b, .. } => vec![*d, *g, *s, *b],
            DeviceKind::Vcvs { pos, neg, cp, cn, .. } => vec![*pos, *neg, *cp, *cn],
            DeviceKind::Diode { a, k, .. } => vec![*a, *k],
            DeviceKind::Bjt { c, b, e, .. } => vec![*c, *b, *e],
            DeviceKind::Vccs { pos, neg, cp, cn, .. } => vec![*pos, *neg, *cp, *cn],
            DeviceKind::Cccs { pos, neg, .. } => vec![*pos, *neg],
            DeviceKind::Ccvs { pos, neg, .. } => vec![*pos, *neg],
        }
    }

    /// Whether this device contributes an MNA branch-current unknown.
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self.kind,
            DeviceKind::Vsource { .. }
                | DeviceKind::Vcvs { .. }
                | DeviceKind::Inductor { .. }
                | DeviceKind::Ccvs { .. }
        )
    }

    /// The name of the branch-current device controlling this source,
    /// if it is current-controlled (F/H).
    pub fn controlling_device(&self) -> Option<&str> {
        match &self.kind {
            DeviceKind::Cccs { ctrl, .. } | DeviceKind::Ccvs { ctrl, .. } => Some(ctrl),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_enumerates_all_terminals() {
        let d = Device::new(
            "M1",
            DeviceKind::Mosfet {
                d: NodeId(1),
                g: NodeId(2),
                s: NodeId(3),
                b: NodeId(4),
                polarity: MosPolarity::Nmos,
                params: MosParams::nmos_default(1e-6, 1e-6),
            },
        );
        assert_eq!(d.nodes(), vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(d.name(), "M1");
    }

    #[test]
    fn branch_current_only_for_voltage_like_devices() {
        let v = Device::new(
            "V1",
            DeviceKind::Vsource { pos: NodeId(1), neg: NodeId(0), wave: Waveform::dc(1.0) },
        );
        let r = Device::new("R1", DeviceKind::Resistor { a: NodeId(1), b: NodeId(0), ohms: 1.0 });
        assert!(v.has_branch_current());
        assert!(!r.has_branch_current());
    }
}
