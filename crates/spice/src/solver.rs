//! Dense/sparse linear-solver dispatch for the MNA analyses.
//!
//! Every analysis (DC Newton, transient timesteps, the AC
//! operating-point linearization) bottoms out in "assemble the MNA
//! system, factor it, substitute". For macro-sized circuits the dense
//! [`LuWorkspace`] is unbeatable — no indices, no indirection, hot in
//! cache. Past a hundred-odd unknowns the O(n³) factor and the O(n²)
//! per-iteration clear take over, and the sparse
//! [`SparseLu`]/[`SparseMatrix`] path (O(nnz) assembly, fill-bounded
//! factorization with symbolic reuse across iterations) wins by orders
//! of magnitude.
//!
//! [`SolverKind`] selects the path: the default `Auto` picks sparse
//! when the system is large **and** structurally sparse
//! ([`SPARSE_MIN_N`], [`SPARSE_MAX_DENSITY`]); `Dense`/`Sparse` force a
//! path, which the differential test harness uses to cross-check the
//! two implementations against each other.

use castg_numeric::{
    LuWorkspace, Matrix, NumericError, SparseLu, SparseMatrix, StampTarget,
};

use crate::stamp::StampPlan;

/// Below this unknown count `Auto` never considers the sparse path:
/// dense LU on a macro-sized system beats any index-chasing.
pub const SPARSE_MIN_N: usize = 64;

/// `Auto` uses sparse only when the structural fill `nnz / n²` is at
/// most this; denser systems gain nothing from sparse bookkeeping.
pub const SPARSE_MAX_DENSITY: f64 = 0.25;

/// `OrderingKind::Auto` switches to the AMD ordering only when the AMD
/// canonical factorization's `nnz(L+U)` is at most this fraction of
/// natural order's: a fill-reducing permutation must *earn* the
/// switch. Meshes and crossbars clear the margin by 2× and more;
/// small/dense circuits never get this far (see
/// [`AMD_AUTO_MIN_BLOWUP`]).
pub const AMD_AUTO_MARGIN: f64 = 0.8;

/// `Auto` considers AMD at all only when natural order's canonical
/// `nnz(L+U)` is at least this multiple of the pattern's own nonzero
/// count — i.e. when elimination genuinely *blows up* under natural
/// order. Chain/ladder structure fills ~1.3× its pattern, so fault
/// campaigns on it early-out here and pay exactly one factorization
/// per variant (the natural canonical symbolic their solvers seed from
/// anyway); a 2-D mesh fills 6× and up, clearing the gate decisively.
/// Both gates read only the pattern and the canonical values — both
/// reproduced bit-identically by delta-patched plans — so delta and
/// rebuilt variants always agree.
pub const AMD_AUTO_MIN_BLOWUP: f64 = 2.0;

/// Which column ordering the sparse LU eliminates under.
///
/// Orthogonal to [`SolverKind`]: the ordering only matters on the
/// sparse path (dense LU ignores it). The permutation is computed once
/// per circuit pattern, recorded in the plan's canonical symbolic
/// analysis, and inherited by every seeded solver instance — including
/// refactorizations and stability fallbacks — so a whole fault campaign
/// pays one AMD run per circuit variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingKind {
    /// Compare the actual `nnz(L+U)` of both orderings on the circuit's
    /// canonical matrix (one-time, per plan) and keep AMD only when it
    /// beats natural order by [`AMD_AUTO_MARGIN`]. The right choice
    /// everywhere except differential testing.
    #[default]
    Auto,
    /// Natural MNA order (node index, then branch rows) — optimal for
    /// chain/ladder structure, bit-identical to the pre-ordering code.
    Natural,
    /// Approximate minimum degree
    /// ([`castg_numeric::SparsePattern::amd_ordering`]), the
    /// fill-reducing choice for mesh/crossbar structure.
    Amd,
    /// Block-triangular form
    /// ([`castg_numeric::SparsePattern::btf_order`], KLU-style):
    /// maximum transversal + SCC condensation + per-block AMD. Only the
    /// diagonal blocks are factored; the choice for cascaded/one-way
    /// structure (OTA chains, flattened `.subckt` stages). Falls back
    /// to `Amd` when the condensation is trivial (a single diagonal
    /// block) or the pattern is structurally singular, so forcing `Btf`
    /// on an irreducible circuit is bit-identical to forcing `Amd`.
    Btf,
}

/// Structural fill statistics of a circuit's sparse factorization under
/// one ordering, as reported by [`sparse_fill_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillStats {
    /// MNA unknown count.
    pub unknowns: usize,
    /// Structural nonzeros of the assembled MNA pattern.
    pub pattern_nnz: usize,
    /// Structural nonzeros the factorization stores: `L + U` with the
    /// diagonal counted once, plus (under BTF) the raw off-diagonal
    /// coupling entries.
    pub lu_nnz: usize,
    /// The ordering the factorization actually used (`Auto` resolved to
    /// `Natural`, `Amd` or `Btf`; `Btf` resolved to `Amd` when the
    /// condensation is trivial).
    pub resolved: OrderingKind,
    /// Diagonal-block count of the factorization (1 for every non-BTF
    /// ordering).
    pub blocks: usize,
    /// Size of the largest diagonal block (`unknowns` for every non-BTF
    /// ordering).
    pub largest_block: usize,
}

/// Factors the circuit's canonical MNA matrix under `ordering` and
/// reports the fill of the resulting factors — the metric the
/// fill-reducing-ordering machinery is judged by (benches and the CI
/// smoke gate assert AMD-vs-natural reductions through this).
///
/// Returns `None` when the canonical matrix is singular (a grossly
/// broken netlist).
pub fn sparse_fill_stats(circuit: &crate::Circuit, ordering: OrderingKind) -> Option<FillStats> {
    let plan = circuit.plan();
    let scope = crate::stamp::PatternScope::Static;
    let symbolic = plan.canonical_symbolic(ordering, scope)?;
    Some(FillStats {
        unknowns: plan.dim(),
        pattern_nnz: plan.sparse_template(scope).pattern().nnz(),
        lu_nnz: symbolic.fill_nnz(),
        resolved: plan.resolve_ordering(ordering, scope),
        blocks: symbolic.block_count(),
        largest_block: symbolic
            .blocks()
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0),
    })
}

/// Which linear-solver path an analysis uses for its MNA systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Select per circuit: sparse iff `n ≥ 64` and structural density
    /// `≤ 0.25`, dense otherwise. The right choice everywhere except
    /// differential testing.
    #[default]
    Auto,
    /// Always dense LU ([`castg_numeric::LuWorkspace`]).
    Dense,
    /// Always sparse LU ([`castg_numeric::SparseLu`]), regardless of
    /// size.
    Sparse,
}

impl SolverKind {
    /// Resolves `self` against a circuit's compiled plan: `true` means
    /// the sparse path.
    pub(crate) fn use_sparse(self, plan: &StampPlan) -> bool {
        match self {
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
            SolverKind::Auto => {
                let n = plan.dim();
                n >= SPARSE_MIN_N
                    && plan
                        .sparse_template(crate::stamp::PatternScope::Full)
                        .pattern()
                        .density()
                        <= SPARSE_MAX_DENSITY
            }
        }
    }
}

/// The per-analysis solver state behind the dispatch: assembly matrix
/// plus factorization workspace for whichever path was selected.
///
/// Both arms follow the same lifecycle per Newton iteration: replay the
/// stamp plan into the matrix, apply any extra stamps (transient
/// companions), factor, substitute. The dense arm swaps the matrix into
/// the LU workspace exactly as before this dispatch existed, so small
/// circuits keep their bit-identical allocation-free hot path; the
/// sparse arm clears O(nnz) values and refactors against the cached
/// symbolic skeleton.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one solver per analysis, not per element
pub(crate) enum MnaSolver {
    /// Dense path: assembled matrix + in-place LU workspace.
    Dense { mat: Matrix, lu: LuWorkspace },
    /// Sparse path: pattern-fixed CSC matrix + sparse LU with symbolic
    /// reuse.
    Sparse { mat: SparseMatrix, lu: SparseLu },
}

impl MnaSolver {
    /// Creates the solver state `kind` resolves to for `plan`.
    ///
    /// The sparse arm seeds its LU workspace with the plan's canonical
    /// symbolic analysis under `ordering` (computed once per plan,
    /// shared by `Arc`), so every analysis of the same circuit — across
    /// tests, threads and fault-campaign work items — starts refactoring
    /// numerically instead of re-running the symbolic DFS, and factors
    /// under the same column permutation everywhere. When the canonical
    /// matrix is singular (no shareable skeleton), an explicitly
    /// requested AMD ordering is still installed so the instance's own
    /// analysis eliminates in fill-reducing order.
    pub(crate) fn for_plan(
        plan: &StampPlan,
        kind: SolverKind,
        ordering: OrderingKind,
        block_threads: usize,
        scope: crate::stamp::PatternScope,
    ) -> Self {
        let n = plan.dim();
        if kind.use_sparse(plan) {
            let mut lu = SparseLu::new();
            match plan.canonical_symbolic(ordering, scope) {
                Some(symbolic) => lu.seed_symbolic(symbolic),
                None => match plan.resolve_ordering(ordering, scope) {
                    OrderingKind::Amd => lu.set_ordering(plan.amd_permutation(scope).clone()),
                    OrderingKind::Btf => {
                        // Resolving to Btf guarantees a usable order.
                        let order = plan
                            .btf_ordering(scope)
                            .cloned()
                            .expect("Btf resolution implies a usable BTF order");
                        lu.set_btf_order(order);
                    }
                    _ => {}
                },
            }
            lu.set_threads(block_threads);
            MnaSolver::Sparse { mat: plan.sparse_template(scope).clone(), lu }
        } else {
            MnaSolver::Dense { mat: Matrix::zeros(n, n), lu: LuWorkspace::new(n) }
        }
    }

    /// Whether this solver runs the sparse path.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self, MnaSolver::Sparse { .. })
    }

    /// One assembly + factorization: replays `plan` into the matrix,
    /// lets `extra` add companion stamps, then factors. The plan replay
    /// is monomorphized per arm; `extra` goes through a trait object
    /// because companion stamping is a handful of adds per timestep.
    ///
    /// # Errors
    ///
    /// Factorization errors ([`NumericError::SingularMatrix`] for a
    /// structurally singular system) propagate.
    pub(crate) fn assemble_and_factor<F>(
        &mut self,
        plan: &StampPlan,
        x: &[f64],
        rhs: &mut [f64],
        gmin: f64,
        src_vals: &[f64],
        extra: F,
    ) -> Result<(), NumericError>
    where
        F: FnOnce(&mut dyn StampTarget),
    {
        match self {
            MnaSolver::Dense { mat, lu } => {
                plan.assemble_into(x, mat, rhs, gmin, src_vals);
                extra(mat);
                lu.factor_in_place(mat)
            }
            MnaSolver::Sparse { mat, lu } => {
                // Specialized replay: precomputed slot indices instead
                // of a binary search per add (bit-identical result).
                plan.assemble_into_sparse(x, mat, rhs, gmin, src_vals);
                extra(mat);
                lu.factor(mat)
            }
        }
    }

    /// Substitutes against the last successful factorization.
    ///
    /// # Errors
    ///
    /// [`NumericError::NotFactored`] before the first factorization;
    /// [`NumericError::DimensionMismatch`] for wrong-sized buffers.
    pub(crate) fn solve_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), NumericError> {
        match self {
            MnaSolver::Dense { lu, .. } => lu.solve_into(b, x),
            MnaSolver::Sparse { lu, .. } => lu.solve_into(b, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, Waveform};

    fn ladder(sections: usize) -> Circuit {
        let mut c = Circuit::new();
        let mut prev = c.node("in");
        c.add_vsource("V1", prev, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        for i in 0..sections {
            let next = c.node(&format!("n{i}"));
            c.add_resistor(&format!("Rs{i}"), prev, next, 100.0).unwrap();
            c.add_resistor(&format!("Rp{i}"), next, Circuit::GROUND, 1e6).unwrap();
            prev = next;
        }
        c
    }

    #[test]
    fn auto_is_dense_for_small_and_sparse_for_large() {
        let small = ladder(4);
        assert!(!SolverKind::Auto.use_sparse(&small.plan()));
        let large = ladder(200);
        assert!(SolverKind::Auto.use_sparse(&large.plan()));
        assert!(SolverKind::Sparse.use_sparse(&small.plan()));
        assert!(!SolverKind::Dense.use_sparse(&large.plan()));
    }

    #[test]
    fn both_arms_solve_the_same_system() {
        let c = ladder(24);
        let plan = c.plan();
        let n = plan.dim();
        let x0 = vec![0.0; n];
        let mut src = Vec::new();
        plan.source_values(&mut src, |w| w.dc_value());

        let mut solutions = Vec::new();
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            let mut solver = MnaSolver::for_plan(
                &plan,
                kind,
                OrderingKind::Auto,
                1,
                crate::stamp::PatternScope::Full,
            );
            assert_eq!(solver.is_sparse(), kind == SolverKind::Sparse);
            let mut rhs = vec![0.0; n];
            let mut x = vec![0.0; n];
            solver
                .assemble_and_factor(&plan, &x0, &mut rhs, 1e-12, &src, |_| {})
                .unwrap();
            solver.solve_into(&rhs, &mut x).unwrap();
            solutions.push(x);
        }
        for (d, s) in solutions[0].iter().zip(&solutions[1]) {
            assert!((d - s).abs() <= 1e-9 * d.abs().max(1.0), "{d} vs {s}");
        }
    }
}
