//! Dense/sparse linear-solver dispatch for the MNA analyses.
//!
//! Every analysis (DC Newton, transient timesteps, the AC
//! operating-point linearization) bottoms out in "assemble the MNA
//! system, factor it, substitute". For macro-sized circuits the dense
//! [`LuWorkspace`] is unbeatable — no indices, no indirection, hot in
//! cache. Past a hundred-odd unknowns the O(n³) factor and the O(n²)
//! per-iteration clear take over, and the sparse
//! [`SparseLu`]/[`SparseMatrix`] path (O(nnz) assembly, fill-bounded
//! factorization with symbolic reuse across iterations) wins by orders
//! of magnitude.
//!
//! [`SolverKind`] selects the path: the default `Auto` picks sparse
//! when the system is large **and** structurally sparse
//! ([`SPARSE_MIN_N`], [`SPARSE_MAX_DENSITY`]); `Dense`/`Sparse` force a
//! path, which the differential test harness uses to cross-check the
//! two implementations against each other.

use castg_numeric::{
    LuWorkspace, Matrix, NumericError, SparseLu, SparseMatrix, StampTarget,
};

use crate::stamp::StampPlan;

/// Below this unknown count `Auto` never considers the sparse path:
/// dense LU on a macro-sized system beats any index-chasing.
pub const SPARSE_MIN_N: usize = 64;

/// `Auto` uses sparse only when the structural fill `nnz / n²` is at
/// most this; denser systems gain nothing from sparse bookkeeping.
pub const SPARSE_MAX_DENSITY: f64 = 0.25;

/// Which linear-solver path an analysis uses for its MNA systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Select per circuit: sparse iff `n ≥ 64` and structural density
    /// `≤ 0.25`, dense otherwise. The right choice everywhere except
    /// differential testing.
    #[default]
    Auto,
    /// Always dense LU ([`castg_numeric::LuWorkspace`]).
    Dense,
    /// Always sparse LU ([`castg_numeric::SparseLu`]), regardless of
    /// size.
    Sparse,
}

impl SolverKind {
    /// Resolves `self` against a circuit's compiled plan: `true` means
    /// the sparse path.
    pub(crate) fn use_sparse(self, plan: &StampPlan) -> bool {
        match self {
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
            SolverKind::Auto => {
                let n = plan.dim();
                n >= SPARSE_MIN_N && plan.sparse_template().pattern().density() <= SPARSE_MAX_DENSITY
            }
        }
    }
}

/// The per-analysis solver state behind the dispatch: assembly matrix
/// plus factorization workspace for whichever path was selected.
///
/// Both arms follow the same lifecycle per Newton iteration: replay the
/// stamp plan into the matrix, apply any extra stamps (transient
/// companions), factor, substitute. The dense arm swaps the matrix into
/// the LU workspace exactly as before this dispatch existed, so small
/// circuits keep their bit-identical allocation-free hot path; the
/// sparse arm clears O(nnz) values and refactors against the cached
/// symbolic skeleton.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one solver per analysis, not per element
pub(crate) enum MnaSolver {
    /// Dense path: assembled matrix + in-place LU workspace.
    Dense { mat: Matrix, lu: LuWorkspace },
    /// Sparse path: pattern-fixed CSC matrix + sparse LU with symbolic
    /// reuse.
    Sparse { mat: SparseMatrix, lu: SparseLu },
}

impl MnaSolver {
    /// Creates the solver state `kind` resolves to for `plan`.
    ///
    /// The sparse arm seeds its LU workspace with the plan's canonical
    /// symbolic analysis (computed once per plan, shared by `Arc`), so
    /// every analysis of the same circuit — across tests, threads and
    /// fault-campaign work items — starts refactoring numerically
    /// instead of re-running the symbolic DFS.
    pub(crate) fn for_plan(plan: &StampPlan, kind: SolverKind) -> Self {
        let n = plan.dim();
        if kind.use_sparse(plan) {
            let mut lu = SparseLu::new();
            if let Some(symbolic) = plan.canonical_symbolic() {
                lu.seed_symbolic(symbolic);
            }
            MnaSolver::Sparse { mat: plan.sparse_template().clone(), lu }
        } else {
            MnaSolver::Dense { mat: Matrix::zeros(n, n), lu: LuWorkspace::new(n) }
        }
    }

    /// Whether this solver runs the sparse path.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self, MnaSolver::Sparse { .. })
    }

    /// One assembly + factorization: replays `plan` into the matrix,
    /// lets `extra` add companion stamps, then factors. The plan replay
    /// is monomorphized per arm; `extra` goes through a trait object
    /// because companion stamping is a handful of adds per timestep.
    ///
    /// # Errors
    ///
    /// Factorization errors ([`NumericError::SingularMatrix`] for a
    /// structurally singular system) propagate.
    pub(crate) fn assemble_and_factor<F>(
        &mut self,
        plan: &StampPlan,
        x: &[f64],
        rhs: &mut [f64],
        gmin: f64,
        src_vals: &[f64],
        extra: F,
    ) -> Result<(), NumericError>
    where
        F: FnOnce(&mut dyn StampTarget),
    {
        match self {
            MnaSolver::Dense { mat, lu } => {
                plan.assemble_into(x, mat, rhs, gmin, src_vals);
                extra(mat);
                lu.factor_in_place(mat)
            }
            MnaSolver::Sparse { mat, lu } => {
                // Specialized replay: precomputed slot indices instead
                // of a binary search per add (bit-identical result).
                plan.assemble_into_sparse(x, mat, rhs, gmin, src_vals);
                extra(mat);
                lu.factor(mat)
            }
        }
    }

    /// Substitutes against the last successful factorization.
    ///
    /// # Errors
    ///
    /// [`NumericError::NotFactored`] before the first factorization;
    /// [`NumericError::DimensionMismatch`] for wrong-sized buffers.
    pub(crate) fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericError> {
        match self {
            MnaSolver::Dense { lu, .. } => lu.solve_into(b, x),
            MnaSolver::Sparse { lu, .. } => lu.solve_into(b, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, Waveform};

    fn ladder(sections: usize) -> Circuit {
        let mut c = Circuit::new();
        let mut prev = c.node("in");
        c.add_vsource("V1", prev, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        for i in 0..sections {
            let next = c.node(&format!("n{i}"));
            c.add_resistor(&format!("Rs{i}"), prev, next, 100.0).unwrap();
            c.add_resistor(&format!("Rp{i}"), next, Circuit::GROUND, 1e6).unwrap();
            prev = next;
        }
        c
    }

    #[test]
    fn auto_is_dense_for_small_and_sparse_for_large() {
        let small = ladder(4);
        assert!(!SolverKind::Auto.use_sparse(&small.plan()));
        let large = ladder(200);
        assert!(SolverKind::Auto.use_sparse(&large.plan()));
        assert!(SolverKind::Sparse.use_sparse(&small.plan()));
        assert!(!SolverKind::Dense.use_sparse(&large.plan()));
    }

    #[test]
    fn both_arms_solve_the_same_system() {
        let c = ladder(24);
        let plan = c.plan();
        let n = plan.dim();
        let x0 = vec![0.0; n];
        let mut src = Vec::new();
        plan.source_values(&mut src, |w| w.dc_value());

        let mut solutions = Vec::new();
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            let mut solver = MnaSolver::for_plan(&plan, kind);
            assert_eq!(solver.is_sparse(), kind == SolverKind::Sparse);
            let mut rhs = vec![0.0; n];
            let mut x = vec![0.0; n];
            solver
                .assemble_and_factor(&plan, &x0, &mut rhs, 1e-12, &src, |_| {})
                .unwrap();
            solver.solve_into(&rhs, &mut x).unwrap();
            solutions.push(x);
        }
        for (d, s) in solutions[0].iter().zip(&solutions[1]) {
            assert!((d - s).abs() <= 1e-9 * d.abs().max(1.0), "{d} vs {s}");
        }
    }
}
