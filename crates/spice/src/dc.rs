//! DC operating-point analysis.
//!
//! A Newton–Raphson **strategy ladder** over the MNA system, attempted
//! in order until one rung converges:
//!
//! 1. **Plain Newton** — undamped, cheaply capped. Lands warm starts
//!    and linear/mildly nonlinear circuits in a handful of iterations;
//!    a stiff cold start falls through fast.
//! 2. **Damped Newton** — per-node update clamping
//!    ([`AnalysisOptions::max_step_v`]) with *adaptive clamp growth*:
//!    monotone progress doubles the effective clamp (powers of two, so
//!    the arithmetic stays bit-stable), a residual increase snaps it
//!    back to the base. Cuts the creep phase of deeply cold starts
//!    without the oscillation a statically larger clamp invites.
//! 3. **gmin stepping** — a strong shunt everywhere, relaxed decade by
//!    decade.
//! 4. **Source stepping** — all independent sources ramped from zero.
//! 5. **Pseudo-transient continuation** — a conductance `α` from every
//!    node to an *anchor* state (backward-Euler pseudo-time stepping),
//!    relaxed geometrically and polished at `α = 0`. The anchoring
//!    keeps high-gain feedback loops from rattling; branch rows are
//!    left un-augmented so structural singularities (voltage-source
//!    loops) still surface as [`SpiceError::Singular`].
//!
//! Each solve reports the landing strategy and per-rung iteration/
//! residual accounting in a typed [`ConvergenceReport`], and charges
//! every iteration against the per-analysis caps of
//! [`AnalysisOptions`] and any thread-local
//! [`crate::with_solve_budget`] overlay a fault campaign has installed.

use crate::analysis::AnalysisOptions;
use crate::budget::IterBudget;
use crate::circuit::Circuit;
use crate::node::NodeId;
use crate::solver::{MnaSolver, OrderingKind, SolverKind};
use crate::stamp::StampPlan;
use crate::stimulus::Waveform;
use crate::SpiceError;

/// Resolves by-name stimulus overrides against a circuit into
/// waveform-slot overrides for its compiled plan.
///
/// # Errors
///
/// [`SpiceError::UnknownDevice`] for a missing device,
/// [`SpiceError::InvalidValue`] when the device is not an independent
/// source — the same contract as [`Circuit::set_stimulus`].
pub(crate) fn resolve_overrides(
    circuit: &Circuit,
    overrides: &[(String, Waveform)],
) -> Result<Vec<(usize, Waveform)>, SpiceError> {
    overrides
        .iter()
        .map(|(name, wave)| match circuit.wave_slot(name) {
            Some(slot) => Ok((slot, wave.clone())),
            None if circuit.device(name).is_some() => Err(SpiceError::InvalidValue {
                device: name.clone(),
                reason: "stimulus override requires an independent source".to_string(),
            }),
            None => Err(SpiceError::UnknownDevice { name: name.clone() }),
        })
        .collect()
}

/// Exact identity of a linear plan's assembled Jacobian:
/// `(gmin bits, integration-method tag, step-size bits)`. DC solves use
/// a zero tag/step; the transient engine tags its integration method
/// and carries the step size verbatim, so two keys are equal iff the
/// matrices are bit-identical.
pub(crate) type JacobianKey = (u64, u64, u64);

/// Whether an applied Newton update landed bit-exactly on the solved
/// state `target` — the precondition for skipping a linear plan's
/// verification iteration. Requires bit equality (not `==`) and rules
/// out a `-0.0` target: the follow-up `x += +0.0` would rewrite `-0.0`
/// to `+0.0`, so only a non-negative-zero exact landing makes the next
/// iteration a provable state-preserving no-op.
#[inline]
pub(crate) fn landed_on(x: f64, target: f64) -> bool {
    x.to_bits() == target.to_bits() && target.to_bits() != (-0.0_f64).to_bits()
}

/// Reusable per-solve state: the compiled stamp plan plus the
/// dispatched linear solver (dense or sparse matrix + factorization
/// workspace), right-hand side and Newton update buffer. Created once
/// per analysis so the Newton iteration itself performs zero heap
/// allocations.
#[derive(Debug, Clone)]
pub(crate) struct NewtonScratch {
    pub(crate) plan: std::sync::Arc<StampPlan>,
    pub(crate) solver: MnaSolver,
    pub(crate) rhs: Vec<f64>,
    pub(crate) x_new: Vec<f64>,
    /// Stimulus values for the solve in progress (constant across the
    /// Newton iterations of one solve; refreshed per solve/timestep).
    pub(crate) src_vals: Vec<f64>,
    /// Waveform-slot stimulus overrides applied on top of the plan's
    /// waveform table at every source evaluation; lets analyses re-aim
    /// a shared circuit's stimulus without cloning or mutating it.
    pub(crate) overrides: Vec<(usize, Waveform)>,
    /// `Some(key)` when the stored factorization is *exactly* the
    /// Jacobian a linear plan would assemble under `key` =
    /// `(gmin bits, integration-method tag, step-size bits)` — every
    /// input the companion-augmented matrix of a linear plan depends
    /// on, carried verbatim (no hashing). Newton loops then skip the
    /// assembly + refactorization entirely (Shamanskii stepping with a
    /// zero threshold: reuse only when the matrix is provably
    /// bit-identical, so results never change). Nonlinear plans never
    /// set this.
    pub(crate) factored_for: Option<JacobianKey>,
}

impl NewtonScratch {
    pub(crate) fn new(
        circuit: &Circuit,
        kind: SolverKind,
        ordering: OrderingKind,
        block_threads: usize,
        scope: crate::stamp::PatternScope,
    ) -> Self {
        let plan = circuit.plan();
        let n = plan.dim();
        let solver = MnaSolver::for_plan(&plan, kind, ordering, block_threads, scope);
        NewtonScratch {
            plan,
            solver,
            rhs: vec![0.0; n],
            x_new: vec![0.0; n],
            src_vals: Vec::new(),
            overrides: Vec::new(),
            factored_for: None,
        }
    }

    /// Evaluates every stimulus waveform through `f` into the reused
    /// source-value buffer, then applies the stimulus overrides through
    /// the same transform.
    pub(crate) fn eval_sources<F: Fn(&Waveform) -> f64>(&mut self, f: F) {
        self.plan.source_values(&mut self.src_vals, &f);
        for (slot, wave) in &self.overrides {
            self.src_vals[*slot] = f(wave);
        }
    }
}

/// One rung of the DC Newton strategy ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NewtonStrategy {
    /// Undamped Newton, cheaply capped.
    Plain,
    /// Damped Newton with adaptive clamp growth.
    Damped,
    /// gmin stepping (shunt relaxation).
    GminStepping,
    /// Source stepping (stimulus ramp).
    SourceStepping,
    /// Pseudo-transient continuation (anchored relaxation).
    PseudoTransient,
}

impl std::fmt::Display for NewtonStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NewtonStrategy::Plain => "plain",
            NewtonStrategy::Damped => "damped",
            NewtonStrategy::GminStepping => "gmin-stepping",
            NewtonStrategy::SourceStepping => "source-stepping",
            NewtonStrategy::PseudoTransient => "pseudo-transient",
        })
    }
}

/// Per-rung accounting of one DC solve: what the rung spent and where
/// it left the iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct RungStat {
    /// The strategy this rung ran.
    pub strategy: NewtonStrategy,
    /// Newton iterations the rung spent (all its stages summed — gmin
    /// decades, ramp steps, pseudo-transient stages).
    pub iterations: usize,
    /// The update ∞-norm `max_i |Δx_i|` (before damping) of the rung's
    /// last iteration — the residual proxy the convergence test is
    /// built on. `0.0` if the rung never completed an iteration.
    pub residual_norm: f64,
    /// Whether the rung converged (the ladder stops at the first that
    /// does).
    pub converged: bool,
}

impl RungStat {
    fn new(strategy: NewtonStrategy) -> Self {
        RungStat { strategy, iterations: 0, residual_norm: 0.0, converged: false }
    }
}

/// Iteration cap of the plain (undamped) rung: long enough for warm
/// starts and mildly nonlinear circuits, short enough that a stiff cold
/// start falls through to the damped rung cheaply.
const PLAIN_RUNG_CAP: usize = 4;

/// Largest adaptive clamp multiplier on the damped rung: tight, tuned
/// for iteration count on well-behaved cold starts (the IV-converter
/// macro lands in ~20 damped iterations here; larger caps overshoot and
/// oscillate). Boost multipliers are powers of two only, so the
/// effective clamp stays exact in binary floating point and iterate
/// trajectories are bit-reproducible.
const DAMPED_MAX_BOOST: f64 = 2.0;

/// Largest adaptive clamp multiplier on the rescue rungs (gmin
/// stepping, source stepping, pseudo-transient): generous — by the time
/// the ladder is here, landing at all beats landing fast, and the
/// stiffest bridge-fault variants need clamp excursions this large.
const RESCUE_MAX_BOOST: f64 = 64.0;

/// Initial source-stepping advance: the classic 25-step ramp. The ramp
/// is adaptive — a step whose Newton fails is retried from the last
/// converged state at half the advance (down to [`SOURCE_STEP_MIN`]),
/// and the advance regrows ×2 after every success — so a stiff stretch
/// of the continuation path costs fine steps only where it is stiff.
/// Halving/doubling keeps every scale exactly representable, so the
/// trajectory is bit-reproducible.
const SOURCE_STEP_INIT: f64 = 0.04;
/// Smallest source-stepping advance before the rung gives up.
const SOURCE_STEP_MIN: f64 = 0.00125;
/// Cap on Newton calls (stages) in the source-stepping rung: bounds the
/// rung's worst case on hopeless variants at `SOURCE_MAX_STAGES ×
/// max_iter` iterations while leaving the adaptive ramp room for a few
/// stiff stretches (the minimum-step path needs 1/`SOURCE_STEP_MIN` =
/// 800 stages only if *every* step is minimal; real variants need a
/// handful).
const SOURCE_MAX_STAGES: usize = 96;

/// First pseudo-transient anchor conductance (siemens), relaxed
/// geometrically per stage down to [`PTC_ALPHA_FLOOR`], then polished
/// at zero. The relaxation is adaptive: it starts a decade per stage
/// ([`PTC_DECAY_START`]) and a failed stage retreats to the anchor and
/// square-roots the decay (gentler pseudo-timestep growth), down to
/// [`PTC_DECAY_MIN`]; a first-stage failure instead strengthens the
/// starting anchor ×10 up to [`PTC_ALPHA_MAX`]. `sqrt` is
/// correctly-rounded IEEE, so the α trajectory is bit-reproducible.
const PTC_ALPHA_START: f64 = 1.0;
const PTC_ALPHA_MAX: f64 = 1e6;
const PTC_ALPHA_FLOOR: f64 = 1e-9;
const PTC_DECAY_START: f64 = 10.0;
const PTC_DECAY_MIN: f64 = 1.05;
/// Cap on Newton calls (stages) in the pseudo-transient rung.
const PTC_MAX_STAGES: usize = 96;

/// Configuration of one ladder rung's Newton loop.
struct RungCfg<'a> {
    /// Shunt conductance from every node to ground.
    gmin: f64,
    /// Stimulus scale (source stepping ramps this 0 → 1).
    source_scale: f64,
    /// Iteration cap for this rung stage.
    max_iter: usize,
    /// Base per-iteration voltage clamp on nonlinear-device terminals.
    clamp: f64,
    /// Cap on the adaptive clamp multiplier (`1.0` disables growth).
    max_boost: f64,
    /// Pseudo-transient continuation: `(α, anchor state)` adds `α` to
    /// every node diagonal and `α·anchor[i]` to every node rhs row,
    /// pulling the iterate toward the anchor.
    ptc: Option<(f64, &'a [f64])>,
}

/// How a DC solve converged: the rung-by-rung trail and the strategy
/// that landed it. Attached to every [`DcSolution`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Every rung attempted, in ladder order; the last entry is the one
    /// that converged.
    pub rungs: Vec<RungStat>,
    /// The strategy that produced the solution.
    pub strategy: NewtonStrategy,
}

impl ConvergenceReport {
    /// Total Newton iterations spent across every rung.
    pub fn total_iterations(&self) -> usize {
        self.rungs.iter().map(|r| r.iterations).sum()
    }
}

/// A converged DC solution.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Node voltages indexed by [`NodeId::index`]; entry 0 (ground) is 0.
    voltages: Vec<f64>,
    /// `(device name, branch current)` for every voltage-defined device,
    /// in device order. Current flows from the positive terminal through
    /// the device (SPICE convention).
    branch_currents: Vec<(String, f64)>,
    /// Raw MNA unknown vector (used to warm-start transient analysis).
    state: Vec<f64>,
    /// How the strategy ladder landed this solve.
    convergence: ConvergenceReport,
}

impl DcSolution {
    /// Voltage of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range for the solved circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages (index 0 is ground).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Branch current through a named voltage-defined device (voltage
    /// source or VCVS), if present.
    pub fn source_current(&self, name: &str) -> Option<f64> {
        self.branch_currents.iter().find(|(n, _)| n == name).map(|(_, i)| *i)
    }

    /// The raw MNA state vector (node voltages then branch currents).
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Total Newton iterations the solve spent, summed over every
    /// ladder rung it tried. The cold-start cost regression tests pin
    /// this — the ROADMAP's cold-start item is judged against it.
    pub fn newton_iterations(&self) -> usize {
        self.convergence.total_iterations()
    }

    /// The rung-by-rung convergence trail of this solve.
    pub fn convergence(&self) -> &ConvergenceReport {
        &self.convergence
    }
}

/// DC operating-point solver for a [`Circuit`].
#[derive(Debug, Clone)]
pub struct DcAnalysis<'c> {
    circuit: &'c Circuit,
    options: AnalysisOptions,
    overrides: Vec<(String, Waveform)>,
}

impl<'c> DcAnalysis<'c> {
    /// Creates a solver with default [`AnalysisOptions`].
    pub fn new(circuit: &'c Circuit) -> Self {
        DcAnalysis { circuit, options: AnalysisOptions::default(), overrides: Vec::new() }
    }

    /// Creates a solver with explicit options.
    pub fn with_options(circuit: &'c Circuit, options: AnalysisOptions) -> Self {
        DcAnalysis { circuit, options, overrides: Vec::new() }
    }

    /// Overrides the waveform of a named independent source for this
    /// analysis only, without cloning or mutating the circuit.
    ///
    /// Equivalent to solving a copy with
    /// [`Circuit::set_stimulus`]`(name, wave)` — bit for bit — but the
    /// shared circuit (and its compiled plan, sparse template and
    /// symbolic analysis) stays untouched, which is what lets test
    /// configurations sweep stimulus parameters over one immutable
    /// circuit. Repeated overrides of the same source keep the last.
    pub fn override_stimulus(mut self, name: impl Into<String>, wave: Waveform) -> Self {
        self.overrides.push((name.into(), wave));
        self
    }

    /// Adds a batch of by-name overrides (used by the transient and AC
    /// front-ends to pass theirs through to the inner DC solve).
    pub(crate) fn with_overrides(mut self, overrides: Vec<(String, Waveform)>) -> Self {
        self.overrides.extend(overrides);
        self
    }

    /// Solves the operating point (sources at their `t = 0` values).
    ///
    /// # Errors
    ///
    /// [`SpiceError::NoConvergence`] if Newton, gmin stepping and source
    /// stepping all fail; [`SpiceError::Numeric`] if the MNA matrix is
    /// structurally singular (floating subcircuit, voltage-source loop).
    pub fn solve(&self) -> Result<DcSolution, SpiceError> {
        let x0 = vec![0.0; self.circuit.unknown_count()];
        self.solve_from(&x0)
    }

    /// Solves the operating point starting from a caller-supplied state
    /// (useful to warm-start a slightly perturbed circuit).
    ///
    /// # Errors
    ///
    /// As for [`DcAnalysis::solve`]; additionally
    /// [`SpiceError::InvalidAnalysis`] if `initial` has the wrong length.
    pub fn solve_from(&self, initial: &[f64]) -> Result<DcSolution, SpiceError> {
        let n = self.circuit.unknown_count();
        if initial.len() != n {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!("initial state length {} != unknown count {n}", initial.len()),
            });
        }
        let overrides = resolve_overrides(self.circuit, &self.overrides)?;
        if n == 0 {
            let convergence =
                ConvergenceReport { rungs: Vec::new(), strategy: NewtonStrategy::Plain };
            return Ok(self.package(Vec::new(), convergence));
        }

        // One compiled plan + one set of solver buffers for the whole
        // solve, shared across all ladder rungs; one state vector
        // mutated in place by the Newton iterations.
        // DC factors the static pattern: capacitors are open, and
        // carrying their slots would cost fill and block the BTF
        // condensation (see `PatternScope`).
        let mut scratch = NewtonScratch::new(
            self.circuit,
            self.options.solver,
            self.options.ordering,
            self.options.block_threads,
            crate::stamp::PatternScope::Static,
        );
        scratch.overrides = overrides;
        let mut x = initial.to_vec();
        let mut budget = IterBudget::start("dc operating point", &self.options);
        let mut rungs: Vec<RungStat> = Vec::new();
        let opts = self.options;

        // Closes over nothing mutable: finishes a successful solve.
        macro_rules! land {
            ($x:expr, $strategy:expr) => {{
                let convergence = ConvergenceReport { rungs, strategy: $strategy };
                crate::stats::record_landing($strategy);
                crate::stats::record_iterations(convergence.total_iterations() as u64);
                return Ok(self.package($x, convergence));
            }};
        }
        // A budget verdict (allowance exhausted / deadline passed) ends
        // the ladder; trying further rungs could only re-trip it.
        macro_rules! rung_failed {
            ($e:expr) => {{
                let e = $e;
                if budget.depleted() {
                    crate::stats::record_unconverged();
                    crate::stats::record_iterations(
                        rungs.iter().map(|r| r.iterations as u64).sum(),
                    );
                    return Err(e);
                }
                e
            }};
        }

        // 1. Plain Newton from the provided start, cheaply capped: it
        // exists for warm starts and mildly nonlinear circuits; a stiff
        // cold start must fall through fast.
        let cfg = RungCfg {
            gmin: opts.gmin,
            source_scale: 1.0,
            max_iter: opts.max_iter.min(PLAIN_RUNG_CAP),
            clamp: f64::INFINITY,
            max_boost: 1.0,
            ptc: None,
        };
        let mut stat = RungStat::new(NewtonStrategy::Plain);
        let plain = self.newton(&mut x, &mut scratch, &cfg, &mut budget, &mut stat);
        rungs.push(stat);
        match plain {
            Ok(()) => land!(x, NewtonStrategy::Plain),
            Err(e) => {
                rung_failed!(e);
            }
        }

        // 2. Damped Newton with adaptive clamp growth, restarted.
        x.copy_from_slice(initial);
        let cfg = RungCfg {
            gmin: opts.gmin,
            source_scale: 1.0,
            max_iter: opts.max_iter,
            clamp: opts.max_step_v,
            max_boost: DAMPED_MAX_BOOST,
            ptc: None,
        };
        let mut stat = RungStat::new(NewtonStrategy::Damped);
        let damped = self.newton(&mut x, &mut scratch, &cfg, &mut budget, &mut stat);
        rungs.push(stat);
        match damped {
            Ok(()) => land!(x, NewtonStrategy::Damped),
            Err(e) => {
                rung_failed!(e);
            }
        }

        // 3. gmin stepping: relax a strong shunt decade by decade.
        x.copy_from_slice(initial);
        let mut stat = RungStat::new(NewtonStrategy::GminStepping);
        let mut gmin = 1e-2;
        let outcome = loop {
            let stage_gmin = if gmin > opts.gmin { gmin } else { opts.gmin };
            let cfg = RungCfg {
                gmin: stage_gmin,
                source_scale: 1.0,
                max_iter: opts.max_iter,
                clamp: opts.max_step_v,
                max_boost: RESCUE_MAX_BOOST,
                ptc: None,
            };
            let r = self.newton(&mut x, &mut scratch, &cfg, &mut budget, &mut stat);
            if r.is_err() || stage_gmin <= opts.gmin {
                break r;
            }
            gmin /= 10.0;
        };
        rungs.push(stat);
        match outcome {
            Ok(()) => land!(x, NewtonStrategy::GminStepping),
            Err(e) => {
                rung_failed!(e);
            }
        }

        // 4. Source stepping: ramp all sources from 0 to 100 % with an
        // adaptive advance — halve it (retreating to the last converged
        // state) when a step's Newton fails, regrow it after successes.
        // At scale 0 every independent source is dead and x = 0 solves
        // the system exactly, so the continuation path starts on a
        // solution by construction.
        x.fill(0.0);
        let mut stat = RungStat::new(NewtonStrategy::SourceStepping);
        let mut last_good = x.clone();
        let mut reached = 0.0f64;
        let mut advance = SOURCE_STEP_INIT;
        let mut stages = 0usize;
        let outcome = loop {
            let scale = (reached + advance).min(1.0);
            let cfg = RungCfg {
                gmin: opts.gmin,
                source_scale: scale,
                max_iter: opts.max_iter,
                clamp: opts.max_step_v,
                max_boost: RESCUE_MAX_BOOST,
                ptc: None,
            };
            let r = self.newton(&mut x, &mut scratch, &cfg, &mut budget, &mut stat);
            stages += 1;
            match r {
                Ok(()) if scale >= 1.0 => break Ok(()),
                Ok(()) => {
                    reached = scale;
                    last_good.copy_from_slice(&x);
                    advance = (advance * 2.0).min(SOURCE_STEP_INIT);
                }
                Err(e) => {
                    if budget.depleted()
                        || advance <= SOURCE_STEP_MIN
                        || stages >= SOURCE_MAX_STAGES
                    {
                        break Err(e);
                    }
                    advance /= 2.0;
                    x.copy_from_slice(&last_good);
                }
            }
            if stages >= SOURCE_MAX_STAGES {
                break Err(SpiceError::NoConvergence {
                    analysis: "dc operating point (source stepping stage cap)".to_string(),
                    iterations: stat.iterations,
                });
            }
        };
        rungs.push(stat);
        match outcome {
            Ok(()) => land!(x, NewtonStrategy::SourceStepping),
            Err(e) => {
                rung_failed!(e);
            }
        }

        // 5. Pseudo-transient continuation: anchor every node to the
        // previous pseudo-timestep's state through a conductance α,
        // relaxed geometrically, then polish at α = 0. The anchoring
        // holds high-gain feedback loops still; branch rows stay
        // un-augmented so voltage-source-loop singularities still
        // surface as `Singular` rather than being masked.
        x.copy_from_slice(initial);
        let mut anchor = initial.to_vec();
        let mut stat = RungStat::new(NewtonStrategy::PseudoTransient);
        // `alpha` is the last *converged* anchor conductance; each stage
        // tries `alpha / decay`. A failed stage retreats the iterate to
        // the anchor and square-roots the decay — smaller pseudo-time
        // growth through the stretch where the solve loses the branch —
        // and a failure before any stage converged strengthens the
        // starting anchor instead.
        let mut alpha = PTC_ALPHA_START;
        let mut decay = PTC_DECAY_START;
        let mut landed_any = false;
        let mut stages = 0usize;
        let outcome = loop {
            let next_alpha = if !landed_any {
                alpha
            } else if alpha / decay >= PTC_ALPHA_FLOOR {
                alpha / decay
            } else {
                0.0
            };
            let cfg = RungCfg {
                gmin: opts.gmin,
                source_scale: 1.0,
                max_iter: opts.max_iter,
                clamp: opts.max_step_v,
                max_boost: RESCUE_MAX_BOOST,
                ptc: (next_alpha > 0.0).then_some((next_alpha, anchor.as_slice())),
            };
            let r = self.newton(&mut x, &mut scratch, &cfg, &mut budget, &mut stat);
            stages += 1;
            match r {
                Ok(()) if next_alpha == 0.0 => break Ok(()),
                Ok(()) => {
                    anchor.copy_from_slice(&x);
                    alpha = next_alpha;
                    landed_any = true;
                }
                Err(e) => {
                    if budget.depleted() || stages >= PTC_MAX_STAGES {
                        break Err(e);
                    }
                    if !landed_any {
                        // The starting anchor is too weak to hold the
                        // first stage: strengthen it.
                        if alpha >= PTC_ALPHA_MAX {
                            break Err(e);
                        }
                        alpha *= 10.0;
                        x.copy_from_slice(initial);
                    } else {
                        if decay <= PTC_DECAY_MIN {
                            break Err(e);
                        }
                        decay = decay.sqrt();
                        x.copy_from_slice(&anchor);
                    }
                }
            }
        };
        rungs.push(stat);
        match outcome {
            Ok(()) => land!(x, NewtonStrategy::PseudoTransient),
            Err(e) => {
                let e = rung_failed!(e);
                crate::stats::record_unconverged();
                crate::stats::record_iterations(rungs.iter().map(|r| r.iterations as u64).sum());
                Err(match e {
                    SpiceError::Numeric(n) => SpiceError::Numeric(n),
                    SpiceError::Singular { unknown } => SpiceError::Singular { unknown },
                    SpiceError::Timeout { analysis, budget_ms } => {
                        SpiceError::Timeout { analysis, budget_ms }
                    }
                    _ => SpiceError::NoConvergence {
                        analysis: "dc operating point (strategy ladder exhausted)".to_string(),
                        iterations: rungs.iter().map(|r| r.iterations).sum(),
                    },
                })
            }
        }
    }

    /// One ladder rung's Newton iteration at the configuration in
    /// `cfg`, advancing `x` in place and accounting into `stat`. On
    /// error `x` holds the last iterate and the caller decides whether
    /// to restart it. The loop allocates nothing: assembly replays the
    /// compiled plan, the factorization swaps buffers with the LU
    /// workspace and the solve substitutes into a reused update vector.
    ///
    /// For a linear plan the Jacobian depends only on `gmin`, never on
    /// the iterate or the stimulus — so once factored, every further
    /// iteration (and every further *stage* sharing this scratch at the
    /// same `gmin`, e.g. the source-stepping ramp) skips assembly and
    /// refactorization, re-deriving only the right-hand side. The reuse
    /// key is exact; results are bit-identical to the always-refactor
    /// path. Pseudo-transient stages (α > 0) perturb the matrix and
    /// never record a reuse key.
    fn newton(
        &self,
        x: &mut [f64],
        scratch: &mut NewtonScratch,
        cfg: &RungCfg<'_>,
        budget: &mut IterBudget,
        stat: &mut RungStat,
    ) -> Result<(), SpiceError> {
        scratch.eval_sources(|w| cfg.source_scale * w.dc_value());
        let NewtonScratch { plan, solver, rhs, x_new, src_vals, factored_for, .. } = scratch;
        let n = plan.dim();
        let n_nodes = self.circuit.node_count() - 1;
        let opts = &self.options;
        let damped = plan.damped();
        let gmin = cfg.gmin;
        let reuse_key: JacobianKey = (gmin.to_bits(), 0, 0);

        // Adaptive clamp state: `boost` multiplies the base clamp by a
        // power of two (exact arithmetic) while the pre-damping update
        // norm keeps shrinking; an increase snaps it back to 1.
        let mut boost = 1.0_f64;
        let mut prev_norm = f64::INFINITY;

        for _iter in 0..cfg.max_iter {
            budget.charge()?;
            stat.iterations += 1;
            if cfg.ptc.is_none() && plan.is_linear() && *factored_for == Some(reuse_key) {
                plan.assemble_rhs_only(rhs, src_vals);
            } else {
                *factored_for = None;
                solver
                    .assemble_and_factor(plan, x, rhs, gmin, src_vals, |mat| {
                        if let Some((alpha, _)) = cfg.ptc {
                            // α rides the node diagonals only — the same
                            // slots gmin occupies, so the sparse pattern
                            // already holds them.
                            for i in 0..n_nodes {
                                mat.add(i, i, alpha);
                            }
                        }
                    })
                    .map_err(|e| self.circuit.singular_error(e))?;
                if plan.is_linear() && cfg.ptc.is_none() {
                    *factored_for = Some(reuse_key);
                }
            }
            if let Some((alpha, anchor)) = cfg.ptc {
                for i in 0..n_nodes {
                    rhs[i] += alpha * anchor[i];
                }
            }
            solver.solve_into(rhs, x_new)?;

            // Damping: clamp the per-iteration update of
            // nonlinear-device terminals (linear nodes and branch
            // currents take the exact Newton step).
            let eff_clamp = cfg.clamp * boost;
            let mut converged = true;
            let mut landed_exactly = true;
            let mut norm = 0.0_f64;
            for i in 0..n {
                let mut delta = x_new[i] - x[i];
                if !delta.is_finite() {
                    return Err(SpiceError::NoConvergence {
                        analysis: "dc newton (non-finite update)".to_string(),
                        iterations: stat.iterations,
                    });
                }
                norm = norm.max(delta.abs());
                let (tol, clamp) = if i < n_nodes {
                    let clamp = if damped[i] { eff_clamp } else { f64::INFINITY };
                    (opts.vntol + opts.reltol * x_new[i].abs().max(x[i].abs()), clamp)
                } else {
                    (opts.abstol + opts.reltol * x_new[i].abs().max(x[i].abs()), f64::INFINITY)
                };
                if delta.abs() > tol {
                    converged = false;
                }
                if delta.abs() > clamp {
                    delta = clamp.copysign(delta);
                }
                x[i] += delta;
                landed_exactly &= landed_on(x[i], x_new[i]);
            }
            stat.residual_norm = norm;
            if converged {
                stat.converged = true;
                return Ok(());
            }
            // A linear plan whose update landed bit-exactly on the
            // solved state needs no verification iteration: the next
            // one would reuse identical factors, re-derive an identical
            // rhs, solve to the identical x_new, take a delta of
            // exactly +0.0 and converge without changing the state.
            // (`x += (x_new − x)` does NOT always round to `x_new` —
            // a warm start many orders of magnitude off misses — so
            // the landing really is checked, bit for bit, not assumed.)
            if cfg.ptc.is_none()
                && plan.is_linear()
                && *factored_for == Some(reuse_key)
                && landed_exactly
            {
                stat.converged = true;
                return Ok(());
            }
            if cfg.max_boost > 1.0 {
                boost = if norm <= prev_norm { (boost * 2.0).min(cfg.max_boost) } else { 1.0 };
            }
            prev_norm = norm;
        }
        Err(SpiceError::NoConvergence {
            analysis: "dc newton".to_string(),
            iterations: stat.iterations,
        })
    }

    fn package(&self, state: Vec<f64>, convergence: ConvergenceReport) -> DcSolution {
        let n_nodes = self.circuit.node_count() - 1;
        let mut voltages = vec![0.0; self.circuit.node_count()];
        voltages[1..=n_nodes].copy_from_slice(&state[..n_nodes]);
        let mut branch_currents = Vec::new();
        let mut br = n_nodes;
        for dev in self.circuit.devices() {
            if dev.has_branch_current() {
                branch_currents.push((dev.name().to_string(), state[br]));
                br += 1;
            }
        }
        DcSolution { voltages, branch_currents, state, convergence }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::{MosParams, MosPolarity};
    use crate::Waveform;

    #[test]
    fn parallel_vsources_name_the_singular_unknown() {
        // Two voltage sources disagreeing across the same node pair make
        // the MNA system structurally singular: the second source's
        // branch column is dependent. The diagnostic must name that
        // branch current, not a raw pivot index.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_vsource("V2", b, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        c.add_vsource("V3", b, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        let err = DcAnalysis::new(&c).solve().unwrap_err();
        match err {
            SpiceError::Singular { ref unknown } => assert_eq!(unknown, "i(V3)"),
            other => panic!("expected Singular, got {other:?}"),
        }
        assert!(err.to_string().contains("i(V3)"));
    }

    #[test]
    fn resistor_divider() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(10.0)).unwrap();
        c.add_resistor("R1", vin, out, 1e3).unwrap();
        c.add_resistor("R2", out, Circuit::GROUND, 1e3).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!((sol.voltage(out) - 5.0).abs() < 1e-6);
        assert!((sol.voltage(vin) - 10.0).abs() < 1e-9);
        // Source sees 5 mA flowing + -> - through the external circuit,
        // i.e. +5 mA through the source in SPICE convention.
        let i = sol.source_current("V1").unwrap();
        assert!((i + 5e-3).abs() < 1e-6, "i = {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        // 1 mA pulled out of ground into node a → V(a) = +1 V over 1 kΩ.
        c.add_isource("I1", Circuit::GROUND, a, Waveform::dc(1e-3)).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!((sol.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, Circuit::GROUND, Waveform::dc(0.25)).unwrap();
        c.add_vcvs("E1", out, Circuit::GROUND, inp, Circuit::GROUND, 4.0).unwrap();
        c.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!((sol.voltage(out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn floating_node_is_held_by_gmin() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("float");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!(sol.voltage(b).abs() < 1e-6);
    }

    #[test]
    fn nmos_diode_connected_operating_point() {
        // Diode-connected NMOS fed by a current source: vgs solves
        // I = β/2 (vgs − vt)² (1 + λ·vgs).
        let mut c = Circuit::new();
        let d = c.node("d");
        let params = MosParams::nmos_default(10e-6, 1e-6);
        c.add_isource("Ib", Circuit::GROUND, d, Waveform::dc(100e-6)).unwrap();
        c.add_mosfet("M1", d, d, Circuit::GROUND, Circuit::GROUND, MosPolarity::Nmos, params)
            .unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let v = sol.voltage(d);
        assert!(v > params.vt0, "v = {v}");
        let beta = params.beta();
        let i_model = 0.5 * beta * (v - params.vt0).powi(2) * (1.0 + params.lambda * v);
        assert!((i_model - 100e-6).abs() / 100e-6 < 1e-3, "v={v}, i={i_model}");
    }

    #[test]
    fn nmos_common_source_amplifier_pulls_down() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_vsource("VG", g, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let vd = sol.voltage(d);
        // With vgs = 2 V the device sinks on the order of 1 mA: the drain
        // is pulled into triode, well below VDD.
        assert!(vd < 1.0, "vd = {vd}");
        assert!(vd > 0.0);
    }

    #[test]
    fn pmos_mirror_copies_current() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let bias = c.node("bias");
        let out = c.node("out");
        let p = MosParams::pmos_default(20e-6, 2e-6);
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        // Diode-connected reference leg: 50 µA pulled down from bias node.
        c.add_mosfet("M1", bias, bias, vdd, vdd, MosPolarity::Pmos, p).unwrap();
        c.add_isource("Iref", bias, Circuit::GROUND, Waveform::dc(50e-6)).unwrap();
        // Mirror leg into a load resistor.
        c.add_mosfet("M2", out, bias, vdd, vdd, MosPolarity::Pmos, p).unwrap();
        c.add_resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let i_out = sol.voltage(out) / 10e3;
        assert!((i_out - 50e-6).abs() / 50e-6 < 0.15, "i_out = {i_out}");
    }

    /// Regression: the linear-plan verification-iteration skip must not
    /// declare convergence when the applied update failed to land
    /// exactly on the solved state. A warm start ~16 orders of
    /// magnitude off makes `x + (x_new − x)` round away from `x_new`
    /// (here to 0.0); an unguarded skip would return that as the
    /// "solution".
    #[test]
    fn linear_skip_guard_rejects_inexact_landing() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_resistor("R1", vin, out, 1e3).unwrap();
        c.add_resistor("R2", out, Circuit::GROUND, 1e3).unwrap();
        let n = c.unknown_count();
        let sol = DcAnalysis::new(&c).solve_from(&vec![1e16; n]).unwrap();
        assert!((sol.voltage(out) - 1.0).abs() < 1e-6, "v(out) = {}", sol.voltage(out));
        assert!((sol.voltage(vin) - 2.0).abs() < 1e-6, "v(vin) = {}", sol.voltage(vin));
    }

    #[test]
    fn landed_on_requires_bit_equality_and_rejects_negative_zero() {
        assert!(landed_on(1.5, 1.5));
        assert!(landed_on(0.0, 0.0));
        assert!(!landed_on(0.0, -0.0));
        assert!(!landed_on(-0.0, -0.0), "a -0.0 target would be rewritten to +0.0");
        assert!(!landed_on(1.5, 1.5 + f64::EPSILON));
    }

    /// A stimulus override must be bit-identical to mutating a copy
    /// with `set_stimulus`, and must leave the shared circuit's plan
    /// untouched.
    #[test]
    fn stimulus_override_matches_set_stimulus_bitwise() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(10.0)).unwrap();
        c.add_resistor("R1", vin, out, 1e3).unwrap();
        c.add_resistor("R2", out, Circuit::GROUND, 1e3).unwrap();
        c.compile_plan();
        let plan_before = c.plan();

        let via_override =
            DcAnalysis::new(&c).override_stimulus("V1", Waveform::dc(3.0)).solve().unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&plan_before, &c.plan()),
            "an override must not touch the shared plan"
        );

        let mut mutated = c.clone();
        mutated.set_stimulus("V1", Waveform::dc(3.0)).unwrap();
        let via_mutation = DcAnalysis::new(&mutated).solve().unwrap();
        for (a, b) in via_override.state().iter().zip(via_mutation.state()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The last override of the same source wins.
        let twice = DcAnalysis::new(&c)
            .override_stimulus("V1", Waveform::dc(8.0))
            .override_stimulus("V1", Waveform::dc(3.0))
            .solve()
            .unwrap();
        assert_eq!(twice.voltage(out).to_bits(), via_override.voltage(out).to_bits());
    }

    #[test]
    fn stimulus_override_validates_target() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        assert!(matches!(
            DcAnalysis::new(&c).override_stimulus("nope", Waveform::dc(0.0)).solve(),
            Err(SpiceError::UnknownDevice { .. })
        ));
        assert!(matches!(
            DcAnalysis::new(&c).override_stimulus("R1", Waveform::dc(0.0)).solve(),
            Err(SpiceError::InvalidValue { .. })
        ));
    }

    #[test]
    fn wrong_initial_length_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let err = DcAnalysis::new(&c).solve_from(&[0.0, 0.0]).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidAnalysis { .. }));
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert_eq!(sol.voltages().len(), 1);
    }
}
