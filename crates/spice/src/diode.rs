//! Junction diode model: Shockley exponential with series resistance
//! and built-in **pn-junction limiting**.
//!
//! The limiting scheme is stateless: beyond the critical voltage
//! `v_crit = n·Vt·ln(n·Vt / (Is·√2))` the exponential is continued
//! *linearly* (value- and slope-continuous), so the current and the
//! conductance a Newton iteration sees stay finite no matter how far a
//! cold-start iterate overshoots the junction. Below `v_crit` the model
//! is the exact Shockley equation, so converged operating points are
//! untouched — the continuation only reshapes the search landscape.
//! Combined with the damped ladder rung's per-terminal clamp (junction
//! terminals are registered in the plan's damped mask), this is what
//! lets a rectifier solve from zeros inside the plain/damped rungs.
//! Unlike the classic SPICE `pnjlim`, no per-device iteration state is
//! needed, which keeps [`evaluate`] a pure function of the terminal
//! voltages — the property every bit-identity contract in this repo
//! (delta vs rebuild, threads 1 vs N, dense vs sparse) is built on.

/// Thermal voltage `kT/q` at the simulator's fixed 300 K (volts).
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// Shockley diode parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeParams {
    /// Saturation current `Is` in amperes (> 0).
    pub is_sat: f64,
    /// Emission coefficient `n` (≥ 1 in practice, > 0 required).
    pub n: f64,
    /// Ohmic series resistance in ohms (≥ 0).
    pub rs: f64,
    /// Zero-bias junction capacitance in farads (≥ 0), stamped as a
    /// constant capacitance by the transient and AC engines.
    pub cj0: f64,
}

impl DiodeParams {
    /// Generic small-signal silicon diode (1N4148-class).
    pub fn signal_default() -> Self {
        DiodeParams { is_sat: 1e-14, n: 1.0, rs: 5.0, cj0: 2e-12 }
    }
}

/// Linearized operating point of a diode with respect to the terminal
/// voltage `v = v(anode) − v(cathode)` across the *whole* device
/// (junction plus series resistance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeOperatingPoint {
    /// Current into the anode (A).
    pub id: f64,
    /// Conductance ∂id/∂v (A/V).
    pub gd: f64,
}

/// The limited junction primitive: current and conductance of an ideal
/// exponential junction at voltage `v`, with the exponential continued
/// linearly above `v_crit` (see the module docs). Shared by the diode
/// and the BJT's two junctions.
pub(crate) fn limited_junction(is_sat: f64, nvt: f64, v: f64) -> (f64, f64) {
    let v_crit = nvt * (nvt / (is_sat * std::f64::consts::SQRT_2)).ln();
    if v <= v_crit {
        let e = (v / nvt).exp();
        (is_sat * (e - 1.0), is_sat * e / nvt)
    } else {
        let e = (v_crit / nvt).exp();
        let g = is_sat * e / nvt;
        (is_sat * (e - 1.0) + g * (v - v_crit), g)
    }
}

/// Evaluates the diode at terminal voltages `(va, vk)`.
///
/// With `rs > 0` the junction voltage solves the scalar implicit
/// equation `vj + rs·i(vj) = va − vk` by a bounded local Newton — the
/// composite is strictly monotone and (thanks to the limiting) at worst
/// piecewise-exponential/linear, so the iteration is a pure,
/// deterministic function of the inputs. The returned conductance is
/// the exact implicit-function derivative `gj / (1 + rs·gj)`, verified
/// against finite differences in the tests.
pub fn evaluate(params: &DiodeParams, va: f64, vk: f64) -> DiodeOperatingPoint {
    let nvt = params.n * THERMAL_VOLTAGE;
    let v = va - vk;
    if params.rs == 0.0 {
        let (id, gd) = limited_junction(params.is_sat, nvt, v);
        return DiodeOperatingPoint { id, gd };
    }
    // Solve f(vj) = vj + rs·i(vj) − v = 0 for the junction voltage.
    let mut vj = v;
    for _ in 0..100 {
        let (i, g) = limited_junction(params.is_sat, nvt, vj);
        let f = vj + params.rs * i - v;
        let delta = f / (1.0 + params.rs * g);
        vj -= delta;
        if delta.abs() <= 1e-15 * vj.abs().max(1e-9) {
            break;
        }
    }
    let (id, gj) = limited_junction(params.is_sat, nvt, vj);
    DiodeOperatingPoint { id, gd: gj / (1.0 + params.rs * gj) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diode() -> DiodeParams {
        DiodeParams::signal_default()
    }

    #[test]
    fn reverse_bias_leaks_saturation_current() {
        let p = diode();
        let op = evaluate(&p, -5.0, 0.0);
        assert!((op.id + p.is_sat).abs() < 1e-20, "id = {}", op.id);
        assert!(op.gd >= 0.0 && op.gd < 1e-12);
    }

    #[test]
    fn forward_knee_sits_near_600_millivolts() {
        let p = DiodeParams { rs: 0.0, ..diode() };
        // 1 mA forward: v = n·Vt·ln(1 + I/Is) ≈ 0.655 V for Is = 1e-14.
        let v = p.n * THERMAL_VOLTAGE * (1e-3 / p.is_sat).ln();
        let op = evaluate(&p, v, 0.0);
        assert!((op.id - 1e-3).abs() / 1e-3 < 1e-6, "id = {}", op.id);
        assert!(op.gd > 0.0);
    }

    #[test]
    fn series_resistance_softens_the_exponential() {
        let ideal = DiodeParams { rs: 0.0, ..diode() };
        let resistive = DiodeParams { rs: 100.0, ..diode() };
        let v = 0.8;
        let i_ideal = evaluate(&ideal, v, 0.0).id;
        let i_res = evaluate(&resistive, v, 0.0).id;
        assert!(i_res < i_ideal, "{i_res} !< {i_ideal}");
        // The resistive branch approaches (v − vf)/rs.
        assert!(i_res > 0.5e-3, "i_res = {i_res}");
    }

    #[test]
    fn limiting_keeps_overshoot_currents_finite() {
        let p = DiodeParams { rs: 0.0, ..diode() };
        // A cold-start Newton iterate can land tens of volts past the
        // junction; the raw exponential would overflow near 40 V·/Vt.
        let op = evaluate(&p, 100.0, 0.0);
        assert!(op.id.is_finite() && op.gd.is_finite());
        // Linear continuation: conductance is frozen at the critical
        // value, so doubling the overshoot roughly doubles the current.
        let op2 = evaluate(&p, 200.0, 0.0);
        assert_eq!(op.gd.to_bits(), op2.gd.to_bits());
        assert!((op2.id / op.id - 2.0).abs() < 0.05);
    }

    #[test]
    fn limiting_is_value_and_slope_continuous() {
        let p = DiodeParams { rs: 0.0, ..diode() };
        let nvt = p.n * THERMAL_VOLTAGE;
        let v_crit = nvt * (nvt / (p.is_sat * std::f64::consts::SQRT_2)).ln();
        let below = evaluate(&p, v_crit - 1e-9, 0.0);
        let above = evaluate(&p, v_crit + 1e-9, 0.0);
        assert!((below.id - above.id).abs() / above.id < 1e-6);
        assert!((below.gd - above.gd).abs() / above.gd < 1e-6);
    }

    /// Central-difference check of gd over bias points spanning deep
    /// reverse, the knee, the limited region, and both rs regimes.
    #[test]
    fn derivative_matches_finite_differences() {
        let h = 1e-7;
        for rs in [0.0, 5.0, 250.0] {
            let p = DiodeParams { rs, ..diode() };
            for &v in &[-3.0, -0.2, 0.3, 0.55, 0.65, 0.75, 1.5, 10.0] {
                let op = evaluate(&p, v, 0.0);
                let fd = (evaluate(&p, v + h, 0.0).id - evaluate(&p, v - h, 0.0).id) / (2.0 * h);
                let scale = op.gd.abs().max(1e-12);
                assert!(
                    (op.gd - fd).abs() < 1e-4 * scale + 1e-12,
                    "gd mismatch at rs={rs}, v={v}: {} vs fd {}",
                    op.gd,
                    fd
                );
            }
        }
    }

    #[test]
    fn evaluate_is_a_pure_function() {
        let p = diode();
        let a = evaluate(&p, 0.71234, 0.1);
        let b = evaluate(&p, 0.71234, 0.1);
        assert_eq!(a.id.to_bits(), b.id.to_bits());
        assert_eq!(a.gd.to_bits(), b.gd.to_bits());
    }
}
