use std::error::Error;
use std::fmt;

use castg_numeric::NumericError;

/// Errors produced by netlist construction and circuit analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A device referenced a node id that does not exist in the circuit.
    UnknownNode {
        /// The offending node id (index).
        node: usize,
        /// Name of the device that referenced it.
        device: String,
    },
    /// A device name was not found in the circuit.
    UnknownDevice {
        /// The name that was looked up.
        name: String,
    },
    /// Two devices were added with the same name.
    DuplicateDevice {
        /// The clashing name.
        name: String,
    },
    /// A device was constructed with a physically invalid value.
    InvalidValue {
        /// Name of the device.
        device: String,
        /// Description of what was wrong.
        reason: String,
    },
    /// The nonlinear solver failed to converge.
    NoConvergence {
        /// Which analysis failed (for example `"dc operating point"` or
        /// `"transient @ t=1.25e-6"`).
        analysis: String,
        /// Number of Newton iterations spent before giving up.
        iterations: usize,
    },
    /// An underlying linear-algebra failure (singular MNA matrix, usually a
    /// floating node or a voltage-source loop).
    Numeric(NumericError),
    /// The MNA system is singular at a *named* unknown — the
    /// circuit-level form of [`NumericError::SingularMatrix`], produced
    /// by the analyses (which know the unknown layout) so a CLI user
    /// sees the offending node or branch, not a bare pivot index.
    Singular {
        /// The unknown whose pivot column vanished: `v(<node>)` for a
        /// node voltage, `i(<device>)` for a branch current.
        unknown: String,
    },
    /// The analysis was asked to produce no timepoints (zero or negative
    /// duration, or a non-positive timestep).
    InvalidAnalysis {
        /// Description of the invalid request.
        reason: String,
    },
    /// The analysis overran its wall-clock budget
    /// ([`crate::AnalysisOptions::budget_ms`] or a surrounding
    /// [`crate::with_solve_budget`] scope) before converging.
    ///
    /// Unlike [`SpiceError::NoConvergence`] this verdict depends on the
    /// host's clock, so callers that need bit-identical behavior across
    /// machines or thread counts should budget by iterations instead.
    Timeout {
        /// Which analysis was cut off.
        analysis: String,
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode { node, device } => {
                write!(f, "device `{device}` references unknown node {node}")
            }
            SpiceError::UnknownDevice { name } => write!(f, "unknown device `{name}`"),
            SpiceError::DuplicateDevice { name } => write!(f, "duplicate device name `{name}`"),
            SpiceError::InvalidValue { device, reason } => {
                write!(f, "invalid value for device `{device}`: {reason}")
            }
            SpiceError::NoConvergence { analysis, iterations } => {
                write!(f, "{analysis} failed to converge after {iterations} iterations")
            }
            SpiceError::Numeric(e) => write!(f, "numeric failure: {e}"),
            SpiceError::Singular { unknown } => write!(
                f,
                "circuit is structurally singular at unknown {unknown} \
                 (check for a floating node or a voltage-source loop)"
            ),
            SpiceError::InvalidAnalysis { reason } => write!(f, "invalid analysis: {reason}"),
            SpiceError::Timeout { analysis, budget_ms } => {
                write!(f, "{analysis} exceeded its {budget_ms} ms wall-clock budget")
            }
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for SpiceError {
    fn from(e: NumericError) -> Self {
        SpiceError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpiceError::NoConvergence { analysis: "dc operating point".into(), iterations: 50 };
        assert!(e.to_string().contains("50 iterations"));
        let e = SpiceError::UnknownDevice { name: "M9".into() };
        assert!(e.to_string().contains("M9"));
    }

    #[test]
    fn numeric_errors_convert() {
        let n = NumericError::SingularMatrix { pivot: 2 };
        let s: SpiceError = n.clone().into();
        assert_eq!(s, SpiceError::Numeric(n));
        assert!(Error::source(&s).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
