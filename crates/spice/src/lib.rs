//! A from-scratch analog circuit simulator for `castg`.
//!
//! The paper drives its test-generation loop with HSPICE; this crate is the
//! substitute substrate: a modified-nodal-analysis (MNA) simulator with
//!
//! * [`Circuit`] — a named-node netlist of [`Device`]s (resistors,
//!   capacitors, inductors, independent voltage/current sources, Level-1
//!   MOSFETs, Shockley diodes with series resistance, Ebers–Moll BJTs,
//!   and all four linear controlled sources — VCVS `E`, VCCS `G`, CCCS
//!   `F`, CCVS `H`; inductors are DC shorts carrying a branch-current
//!   unknown, integrated by the same companion-model machinery as
//!   capacitors and stamped as `−jωL` on their branch row in AC, and the
//!   current-sensing `F`/`H` sources read any branch-current-carrying
//!   controller's row the same way),
//!
//!   Every pn junction — the diode's and both BJT junctions — evaluates
//!   through the same stateless critical-voltage limiting: exact
//!   Shockley below the junction's critical voltage, a linearized
//!   continuation above it, C¹ at the seam. Limiting is a pure
//!   function of the terminal voltages (no
//!   per-iteration memory), so solutions stay bit-reproducible across
//!   delta-patched plans, thread counts and solver paths, and cold
//!   starts stay on the plain/damped rungs of the ladder instead of
//!   overflowing the exponential,
//! * [`Waveform`] — stimulus descriptions (DC, sine, step, pulse, PWL)
//!   matching the test-configuration stimuli of the paper's Table 1,
//! * [`DcAnalysis`] — Newton–Raphson operating-point solve behind a
//!   five-rung convergence strategy ladder (see below),
//! * [`TranAnalysis`] — fixed-step transient analysis (trapezoidal with a
//!   backward-Euler start) recording [`Probe`]d quantities into a
//!   [`Trace`],
//! * [`AcAnalysis`] — small-signal frequency sweeps around the DC
//!   operating point (the substrate for gain/bandwidth-style extension
//!   test configurations).
//!
//! The simulator is deliberately small (fixed timestep, Level-1 MOS) but
//! numerically honest: every nonlinear solve either converges to the
//! requested tolerances or reports [`SpiceError::NoConvergence`].
//!
//! # Convergence resilience: the Newton strategy ladder and solve budgets
//!
//! A DC operating point is attempted through five rungs, each engaged
//! only when the previous one fails, each recorded in the solution's
//! typed [`ConvergenceReport`] (strategy that landed, per-rung
//! iteration counts and residual norms):
//!
//! 1. **Plain Newton** — undamped, capped at a handful of iterations;
//!    lands linear and benign nonlinear circuits immediately.
//! 2. **Damped Newton** — adaptive step clamping with bounded clamp
//!    growth; the workhorse for cold nonlinear starts (the
//!    IV-converter cold start lands here in under 25 iterations).
//! 3. **Gmin stepping** — a conductance homotopy from 1e-2 S/node down
//!    decade by decade to the target gmin.
//! 4. **Adaptive source stepping** — natural continuation in source
//!    scale with halve-on-failure/double-on-success advance control,
//!    retreating to the last converged state; power-of-two step sizes
//!    keep trajectories bit-reproducible.
//! 5. **Adaptive pseudo-transient continuation** — a conductance
//!    `α`-homotopy whose decay factor refines by IEEE square root on
//!    stage failure and whose starting `α` strengthens when even the
//!    first stage diverges; the rescue for fold points that natural
//!    continuation cannot cross (a source-stepping branch that
//!    vanishes mid-path).
//!
//! Every Newton iteration on every rung — including transient
//! timesteps — charges the analysis' iteration/wall-clock budget
//! ([`AnalysisOptions::max_total_iter`] / `budget_ms`) and the
//! thread-local campaign overlay ([`with_solve_budget`]), so a solve
//! can always be bounded; iteration allowances deplete deterministically
//! at any thread count, wall-clock deadlines are machine-dependent by
//! nature. Per-thread [`LadderStats`] counters ([`ladder_stats`])
//! aggregate which rung landed each solve — the fault-campaign engine
//! sums them into its coverage reports.
//!
//! # Hot-path architecture: stamp plans + LU workspaces
//!
//! Test generation hammers this crate with millions of Newton solves, so
//! the per-iteration path is engineered to perform **zero heap
//! allocations after setup**:
//!
//! * **Stamp plans.** Each analysis compiles its [`Circuit`] once into a
//!   `StampPlan` — node ids resolved to matrix slots, branch rows
//!   assigned, constant stamp values precomputed. Every Newton iteration
//!   then *replays* the flat op list into a reused matrix/RHS pair: no
//!   device dispatch, no node-index arithmetic, no allocation. One plan
//!   is shared across Newton iterations, gmin/source-stepping ladders,
//!   and all timesteps of a transient run.
//! * **LU workspaces.** The factor/solve cycle runs through
//!   `castg_numeric::LuWorkspace`: the assembled matrix is *swapped*
//!   into the workspace (O(1)), eliminated in place, and the solution
//!   substituted into a reused buffer. The caller gets the previous
//!   buffer back as scratch for the next assembly, so the matrix storage
//!   ping-pongs between assembly and factorization for the whole
//!   analysis.
//!
//! Both layers are bit-identical to their naive counterparts (direct
//! device walk, allocating `LuFactors`), which the test suites assert
//! exactly.
//!
//! # Structure sharing: patched plans, overrides, exact reuse
//!
//! Fault campaigns simulate thousands of single-fault variants that
//! share ≥95 % of their structure with one nominal circuit; three
//! mechanisms make that sharing explicit (all bit-neutral — pinned by
//! the campaign differential harness):
//!
//! * **Plan patching.** A compiled plan survives additive mutation:
//!   [`Circuit::set_stimulus`] swaps a waveform-table entry (keeping
//!   the sparse template and symbolic analysis — matrix structure and
//!   values are stimulus-independent) and [`Circuit::add`] appends the
//!   new device's ops exactly as a recompile would emit them, merging
//!   its few new sparsity slots into the existing pattern. Bridge-fault
//!   injection therefore costs a plan patch, not a recompilation.
//!   Structural mutations (node interning, removal, `device_mut`)
//!   still drop the plan.
//! * **Stimulus overrides.** Every analysis accepts
//!   `override_stimulus(name, wave)`: the override applies at
//!   source-evaluation time, so test configurations sweep stimulus
//!   parameters over one shared immutable circuit — no clone, no
//!   mutation, same bits as mutating a copy.
//! * **Exact (Shamanskii-style) factorization reuse.** For linear
//!   plans the Jacobian is a pure function of `(gmin, companions)`;
//!   Newton loops key their factorization on exactly that and skip
//!   assembly + refactorization — and the always-converging
//!   verification iteration — whenever the key matches. A fixed-step
//!   transient of a linear circuit factors once and then pays only
//!   rhs re-derivation + substitution per step. Each circuit's plan
//!   additionally caches one canonical symbolic analysis
//!   (`castg_numeric::SparseSymbolic`, `Arc`-shared) that seeds every
//!   sparse solver instance, so a whole campaign performs one symbolic
//!   DFS per variant. AC sweeps fan frequency points out over worker
//!   threads ([`AcAnalysis::threads`]) against that shared skeleton.
//!
//! # Solver dispatch: dense vs sparse
//!
//! Each analysis routes its linear solves through a per-circuit solver
//! selection ([`SolverKind`] in [`AnalysisOptions`]):
//!
//! * **Dense** (`castg_numeric::LuWorkspace`) — the default winner for
//!   macro-sized systems; identical to the pre-dispatch hot path, bit
//!   for bit.
//! * **Sparse** (`castg_numeric::SparseLu`) — for large, structurally
//!   sparse netlists. The compiled stamp plan records every matrix slot
//!   any analysis can touch (static stamps, MOS linearization sites,
//!   capacitor companion/AC slots) and caches a pattern-fixed CSC
//!   template per circuit; assembly then costs O(nnz) per iteration and
//!   the factorization reuses its symbolic skeleton across all Newton
//!   iterations, stepping ladders and timesteps of an analysis. AC
//!   sweeps solve the real `2n×2n` embedding `[[G, −ωC], [ωC, G]]`,
//!   reusing one symbolic analysis across every frequency point.
//! * **Auto** (default) picks sparse iff `n ≥` [`SPARSE_MIN_N`] and the
//!   structural density is at most [`SPARSE_MAX_DENSITY`].
//!
//! The two paths are pinned against each other by a differential test
//! harness (`tests/sparse_differential.rs`): identical circuits solved
//! through both must agree to 1e-9 relative, nominal and after fault
//! injection.
//!
//! # Ordering selection: natural, AMD, BTF — and symbolic sharing
//!
//! The sparse path has a second dispatch axis,
//! [`AnalysisOptions::ordering`] ([`OrderingKind`]): which column
//! permutation the LU eliminates under. Natural MNA order is
//! near-optimal for chain/ladder netlists, but mesh- and crossbar-like
//! netlists fill as O(n·√n) under it; the AMD ordering
//! (`castg_numeric::SparsePattern::amd_ordering`) keeps their factors
//! near-linear. `Auto` (the default) resolves per circuit, once per
//! plan, from the canonical factorization's fill: unless natural order
//! is genuinely fill-blown ([`AMD_AUTO_MIN_BLOWUP`] × the pattern's
//! nnz), the verdict is Natural straight off the natural canonical
//! symbolic that solvers seed from anyway — a ladder fault campaign
//! pays nothing for the ordering machinery — and only fill-blown
//! patterns run the AMD construction and trial factorization, keeping
//! AMD when it beats natural by [`AMD_AUTO_MARGIN`].
//! [`sparse_fill_stats`] exposes the comparison (benches and the CI
//! fill gate are built on it).
//!
//! The third ordering is **BTF** (`OrderingKind::Btf`): the KLU-style
//! block-triangular decomposition (`castg_numeric::btf`) — maximum
//! transversal, Tarjan SCC condensation, per-block AMD — which factors
//! only the diagonal blocks and retires off-diagonal coupling during
//! back-substitution. It pays off on *one-directional* topologies:
//! cascaded macro chains whose DC pattern has no feedback (a MOS gate
//! draws no DC current, so each stage only drives the next). The
//! **static/dynamic pattern split** is what exposes that structure: DC
//! solves factor the static (resistive + Jacobian) pattern only, where
//! capacitor slots — structural zeros in DC that would symmetrically
//! glue every cascade stage into one giant SCC — are absent; transient
//! and AC stamp companions into the full union pattern (and the AC
//! `2n×2n` embedding runs its own BTF condensation per sweep). Measured
//! crossovers on the synthetic families (committed
//! `BENCH_campaign.json`, `btf_stats`): a 512-unknown OTA chain
//! condenses to ~260 blocks (largest 2), block fill ≤ global-AMD fill,
//! DC solve ~1.1× faster; ladders (banded, AMD already fill-free) and
//! meshes (one irreducible SCC) see no benefit, so `Auto`'s third gate
//! picks Btf only when the condensation finds >1 nontrivial block *and*
//! summed block fill beats the AMD fill by the existing
//! [`AMD_AUTO_MARGIN`]; a forced `Btf` on an irreducible pattern falls
//! back to the AMD path (bit-identical to forced `Amd`). Independent
//! diagonal blocks refactor in parallel under
//! `AnalysisOptions::block_threads`, thread-count-invariant to the bit.
//!
//! Ordering composes with every structure-sharing mechanism above
//! because the permutation lives *inside* the shared symbolic analysis
//! (`castg_numeric::SparseSymbolic`): the plan's canonical symbolic is
//! computed per ordering and seeded into every solver instance, seeded
//! refactorizations and stability fallbacks keep factoring under the
//! recorded permutation, delta-stamp plan patches re-resolve `Auto` on
//! the merged pattern (a pure function of the pattern, so a patched
//! variant and a from-scratch rebuild always agree bit for bit), and
//! the AC sweep's `2n×2n` real embedding computes its own AMD
//! permutation once per sweep and shares it across every frequency
//! point. The four-way differential harness (Dense / Sparse-Natural /
//! Sparse-AMD / Sparse-BTF, `tests/sparse_differential.rs` +
//! `tests/campaign_differential.rs`) pins all of this, nominal and
//! after fault injection, at worker counts 1 and 4.
//!
//! # Example: resistor divider
//!
//! ```
//! use castg_spice::{Circuit, DcAnalysis, Waveform};
//!
//! let mut c = Circuit::new();
//! let vin = c.node("vin");
//! let out = c.node("out");
//! c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(10.0))?;
//! c.add_resistor("R1", vin, out, 1_000.0)?;
//! c.add_resistor("R2", out, Circuit::GROUND, 3_000.0)?;
//! let sol = DcAnalysis::new(&c).solve()?;
//! assert!((sol.voltage(out) - 7.5).abs() < 1e-6);
//! # Ok::<(), castg_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod analysis;
mod bjt;
mod budget;
mod circuit;
mod dc;
mod device;
mod diode;
mod error;
mod mos;
mod node;
mod probe;
mod solver;
mod stamp;
mod stats;
mod stimulus;
mod transient;

pub use ac::{AcAnalysis, AcSource, AcSweep};
pub use analysis::AnalysisOptions;
pub use bjt::{BjtOperatingPoint, BjtParams, BjtPolarity};
pub use budget::with_solve_budget;
pub use circuit::Circuit;
pub use dc::{ConvergenceReport, DcAnalysis, DcSolution, NewtonStrategy, RungStat};
pub use device::{Device, DeviceKind};
pub use diode::{DiodeOperatingPoint, DiodeParams, THERMAL_VOLTAGE};
pub use error::SpiceError;
pub use mos::{MosOperatingPoint, MosParams, MosPolarity, MosRegion};
pub use node::NodeId;
pub use probe::{Probe, Trace};
pub use solver::{
    sparse_fill_stats, FillStats, OrderingKind, SolverKind, AMD_AUTO_MARGIN, AMD_AUTO_MIN_BLOWUP,
    SPARSE_MAX_DENSITY, SPARSE_MIN_N,
};
pub use stats::{ladder_stats, LadderStats};
pub use stimulus::Waveform;
pub use transient::{IntegrationMethod, TranAnalysis};
