use crate::solver::{OrderingKind, SolverKind};

/// Tolerances and iteration limits shared by the DC and transient solvers.
///
/// The defaults mirror common SPICE practice and are adequate for the
/// IV-converter macro; tighten `reltol`/`vntol` for precision work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOptions {
    /// Relative convergence tolerance on solution updates.
    pub reltol: f64,
    /// Absolute voltage tolerance (volts).
    pub vntol: f64,
    /// Absolute current tolerance for branch currents (amperes).
    pub abstol: f64,
    /// Maximum Newton iterations per solve.
    pub max_iter: usize,
    /// Conductance added from every node to ground; keeps otherwise
    /// floating nodes (capacitor-only or gate-only nodes) well posed.
    pub gmin: f64,
    /// Newton damping: the largest voltage change accepted per iteration
    /// and per node (volts). Prevents the exponential-free but still
    /// stiff MOS model from overshooting.
    pub max_step_v: f64,
    /// Linear-solver path for the MNA systems. `Auto` (the default)
    /// picks dense LU for macro-sized circuits and the sparse path for
    /// large, structurally sparse ones; `Dense`/`Sparse` force a path
    /// (the differential tests cross-check the two).
    pub solver: SolverKind,
    /// Column ordering for the sparse LU's elimination. `Auto` (the
    /// default) keeps natural MNA order unless a fill comparison on the
    /// circuit's canonical matrix shows AMD (or, past a second margin,
    /// BTF) reducing the stored `nnz(L+U)` past the margin;
    /// `Natural`/`Amd`/`Btf` force an ordering (the four-way
    /// differential tests cross-check them). Ignored on the dense path.
    pub ordering: OrderingKind,
    /// Worker threads for block-parallel sparse refactorization (BTF
    /// orderings with more than one diagonal block; everything else is
    /// unaffected). Results are bit-identical at every thread count —
    /// same discipline as `AcAnalysis::threads`. Default 1 (serial).
    pub block_threads: usize,
    /// Cap on the **total** Newton iterations one analysis run may
    /// spend — summed across every rung of the DC strategy ladder, or
    /// across every timestep (ladder stages and sub-step retries
    /// included) of a transient run. `None` (the default) leaves only
    /// the per-rung `max_iter` limits. Exhaustion reports
    /// [`crate::SpiceError::NoConvergence`], so the verdict is
    /// deterministic at any thread count — the budget of choice for
    /// reproducible fault campaigns.
    pub max_total_iter: Option<usize>,
    /// Wall-clock budget for one analysis run, in milliseconds; the
    /// clock starts when the solve starts and is checked once per
    /// Newton iteration. Overrun reports
    /// [`crate::SpiceError::Timeout`]. `None` (the default) never times
    /// out. Wall-clock verdicts are inherently machine- and
    /// scheduling-dependent — use `max_total_iter` when bit-identical
    /// behavior matters.
    pub budget_ms: Option<u64>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            reltol: 1e-4,
            vntol: 1e-6,
            abstol: 1e-12,
            max_iter: 120,
            gmin: 1e-12,
            max_step_v: 0.5,
            solver: SolverKind::Auto,
            ordering: OrderingKind::Auto,
            block_threads: 1,
            max_total_iter: None,
            budget_ms: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = AnalysisOptions::default();
        assert!(o.reltol > 0.0 && o.reltol < 1e-2);
        assert!(o.vntol > 0.0);
        assert!(o.max_iter >= 50);
        assert!(o.gmin > 0.0 && o.gmin < 1e-9);
        assert!(o.max_step_v > 0.0);
    }
}
