//! Solve budgets: per-analysis iteration/time caps and the thread-local
//! campaign overlay.
//!
//! Two layers impose limits on a nonlinear solve:
//!
//! * [`AnalysisOptions::max_total_iter`] / [`AnalysisOptions::budget_ms`]
//!   bound **one analysis run** (a DC ladder, a whole transient).
//! * [`with_solve_budget`] installs a **thread-local overlay** spanning
//!   everything the closure runs — typically one `(fault, test)`
//!   campaign work item, which may perform several analyses. The fault
//!   campaign engine uses this to bound each faulted measurement
//!   without threading budget parameters through the
//!   `TestConfiguration` trait.
//!
//! Every Newton iteration anywhere (DC ladder rungs, transient
//! timesteps, gmin stages, sub-step retries) charges both layers
//! through [`IterBudget::charge`]. Iteration allowances are exact and
//! deterministic: the same work item exhausts its allowance at the same
//! iteration on any machine at any thread count. Wall-clock deadlines
//! are checked per iteration and are inherently *non*-deterministic —
//! campaigns that need bit-identical reports must budget by iterations
//! only.

use std::cell::Cell;
use std::time::{Duration, Instant};

use crate::analysis::AnalysisOptions;
use crate::SpiceError;

thread_local! {
    /// Remaining Newton iterations of the innermost overlay scope
    /// (`None` = unlimited).
    static ITER_ALLOWANCE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Deadline of the innermost overlay scope, with the budget that
    /// produced it (for the error message).
    static DEADLINE: Cell<Option<(Instant, u64)>> = const { Cell::new(None) };
}

/// Runs `f` under a solve budget: at most `max_iters` Newton iterations
/// and `budget_ms` milliseconds of wall clock, shared by **all**
/// analyses the closure performs on this thread. Exhaustion surfaces
/// from the offending solve as [`SpiceError::NoConvergence`] (iteration
/// allowance — deterministic) or [`SpiceError::Timeout`] (wall clock —
/// machine-dependent). Scopes nest; an inner scope cannot extend an
/// outer one's deadline but does replace the iteration allowance for
/// its extent (the campaign engine never nests them).
pub fn with_solve_budget<R>(
    max_iters: Option<usize>,
    budget_ms: Option<u64>,
    f: impl FnOnce() -> R,
) -> R {
    let prev_allow = ITER_ALLOWANCE.with(|c| c.replace(max_iters));
    let deadline = budget_ms.map(|ms| (Instant::now() + Duration::from_millis(ms), ms));
    let prev_deadline = DEADLINE.with(|c| {
        let prev = c.get();
        // Keep the earlier of the two deadlines when scopes nest.
        let effective = match (prev, deadline) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => b.or(a),
        };
        c.set(effective);
        prev
    });
    // No unwinding guard: a panic inside `f` is only ever observed by
    // `catch_unwind` at a campaign work-item boundary, which abandons
    // the scope wholesale and never resumes solves under it.
    let out = f();
    ITER_ALLOWANCE.with(|c| c.set(prev_allow));
    DEADLINE.with(|c| c.set(prev_deadline));
    out
}

/// The combined per-analysis budget: the analysis' own caps from
/// [`AnalysisOptions`] plus whatever [`with_solve_budget`] overlay is
/// active on this thread. Created once per analysis run; charged once
/// per Newton iteration.
#[derive(Debug)]
pub(crate) struct IterBudget {
    analysis: &'static str,
    /// Iterations remaining under `AnalysisOptions::max_total_iter`.
    own_remaining: Option<usize>,
    /// Iterations granted so far (for the exhaustion diagnostic).
    spent: usize,
    /// Deadline from `AnalysisOptions::budget_ms`.
    own_deadline: Option<(Instant, u64)>,
    /// Whether any deadline (own or overlay) exists — skips the clock
    /// read entirely on the common unbudgeted path.
    timed: bool,
    /// Set once a charge has been refused. A depleted budget ends the
    /// strategy ladder: further rungs could only re-trip it.
    depleted: bool,
}

impl IterBudget {
    pub(crate) fn start(analysis: &'static str, opts: &AnalysisOptions) -> Self {
        let own_deadline =
            opts.budget_ms.map(|ms| (Instant::now() + Duration::from_millis(ms), ms));
        let timed = own_deadline.is_some() || DEADLINE.with(|c| c.get().is_some());
        IterBudget {
            analysis,
            own_remaining: opts.max_total_iter,
            spent: 0,
            own_deadline,
            timed,
            depleted: false,
        }
    }

    /// Whether a charge has been refused (allowance exhausted or
    /// deadline passed). Distinguishes budget-caused rung failures —
    /// which must end the ladder — from ordinary non-convergence.
    pub(crate) fn depleted(&self) -> bool {
        self.depleted
    }

    /// Charges one Newton iteration against every active limit.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NoConvergence`] when an iteration allowance (the
    /// analysis' own or the thread overlay's) is exhausted;
    /// [`SpiceError::Timeout`] when a deadline has passed.
    pub(crate) fn charge(&mut self) -> Result<(), SpiceError> {
        if let Some(rem) = self.own_remaining {
            if rem == 0 {
                return Err(self.exhausted());
            }
            self.own_remaining = Some(rem - 1);
        }
        let overlay_ok = ITER_ALLOWANCE.with(|c| match c.get() {
            Some(0) => false,
            Some(rem) => {
                c.set(Some(rem - 1));
                true
            }
            None => true,
        });
        if !overlay_ok {
            return Err(self.exhausted());
        }
        if self.timed {
            let now = Instant::now();
            for (deadline, ms) in self.own_deadline.iter().chain(DEADLINE.with(|c| c.get()).iter())
            {
                if now >= *deadline {
                    self.depleted = true;
                    return Err(SpiceError::Timeout {
                        analysis: self.analysis.to_string(),
                        budget_ms: *ms,
                    });
                }
            }
        }
        self.spent += 1;
        Ok(())
    }

    fn exhausted(&mut self) -> SpiceError {
        self.depleted = true;
        SpiceError::NoConvergence {
            analysis: format!("{} (iteration budget exhausted)", self.analysis),
            iterations: self.spent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    #[test]
    fn unbudgeted_charges_freely() {
        let mut b = IterBudget::start("t", &opts());
        for _ in 0..10_000 {
            b.charge().unwrap();
        }
    }

    #[test]
    fn own_iteration_cap_is_exact() {
        let o = AnalysisOptions { max_total_iter: Some(3), ..opts() };
        let mut b = IterBudget::start("t", &o);
        b.charge().unwrap();
        b.charge().unwrap();
        b.charge().unwrap();
        let err = b.charge().unwrap_err();
        match err {
            SpiceError::NoConvergence { analysis, iterations } => {
                assert!(analysis.contains("budget exhausted"), "{analysis}");
                assert_eq!(iterations, 3);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn overlay_caps_across_budgets() {
        with_solve_budget(Some(5), None, || {
            let mut a = IterBudget::start("a", &opts());
            for _ in 0..3 {
                a.charge().unwrap();
            }
            // A second analysis in the same scope shares the allowance.
            let mut b = IterBudget::start("b", &opts());
            b.charge().unwrap();
            b.charge().unwrap();
            assert!(matches!(b.charge(), Err(SpiceError::NoConvergence { .. })));
        });
        // Outside the scope the allowance is gone.
        let mut c = IterBudget::start("c", &opts());
        for _ in 0..100 {
            c.charge().unwrap();
        }
    }

    #[test]
    fn overlay_scopes_nest_and_restore() {
        with_solve_budget(Some(10), None, || {
            with_solve_budget(Some(1), None, || {
                let mut b = IterBudget::start("inner", &opts());
                b.charge().unwrap();
                assert!(b.charge().is_err());
            });
            // Outer allowance restored (inner replaced it wholesale).
            let mut b = IterBudget::start("outer", &opts());
            for _ in 0..10 {
                b.charge().unwrap();
            }
            assert!(b.charge().is_err());
        });
    }

    #[test]
    fn elapsed_deadline_times_out() {
        let o = AnalysisOptions { budget_ms: Some(0), ..opts() };
        let mut b = IterBudget::start("t", &o);
        std::thread::sleep(Duration::from_millis(2));
        match b.charge().unwrap_err() {
            SpiceError::Timeout { analysis, budget_ms } => {
                assert_eq!(analysis, "t");
                assert_eq!(budget_ms, 0);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn overlay_deadline_times_out() {
        with_solve_budget(None, Some(0), || {
            std::thread::sleep(Duration::from_millis(2));
            let mut b = IterBudget::start("t", &opts());
            assert!(matches!(b.charge(), Err(SpiceError::Timeout { .. })));
        });
    }
}
