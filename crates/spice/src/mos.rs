//! Level-1 (Shichman–Hodges) MOSFET model with body effect and
//! channel-length modulation.
//!
//! The paper's IV-converter is a CMOS macro simulated in HSPICE; this
//! model reproduces the qualitative device behaviour that drives fault
//! detection — operating-point shifts, clipping, and slewing — with
//! analytically consistent small-signal derivatives for the Newton solver.

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Operating region of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosRegion {
    /// `|vgs| <= |vth|`: channel off.
    Cutoff,
    /// `|vds| < |vgs - vth|`: resistive/linear region.
    Triode,
    /// `|vds| >= |vgs - vth|`: current saturation.
    Saturation,
}

/// Level-1 model parameters.
///
/// Defaults model a generic 0.7 µm-era CMOS process, consistent with the
/// paper's 1997 context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Zero-bias threshold voltage (positive for NMOS, negative for PMOS).
    pub vt0: f64,
    /// Transconductance parameter `KP = µ·Cox` in A/V².
    pub kp: f64,
    /// Channel-length modulation in 1/V.
    pub lambda: f64,
    /// Body-effect coefficient in V^0.5.
    pub gamma: f64,
    /// Surface potential `2·φF` in V.
    pub phi: f64,
    /// Channel width in meters.
    pub w: f64,
    /// Channel length in meters.
    pub l: f64,
    /// Gate-oxide capacitance per area in F/m² (used for transient gate
    /// capacitances).
    pub cox: f64,
    /// Gate-source/drain overlap capacitance per width in F/m.
    pub cgso: f64,
}

impl MosParams {
    /// Generic NMOS parameters for a 0.7 µm-class process.
    pub fn nmos_default(w: f64, l: f64) -> Self {
        MosParams {
            vt0: 0.75,
            kp: 110e-6,
            lambda: 0.04,
            gamma: 0.50,
            phi: 0.70,
            w,
            l,
            cox: 2.3e-3,
            cgso: 3.0e-10,
        }
    }

    /// Generic PMOS parameters for a 0.7 µm-class process.
    pub fn pmos_default(w: f64, l: f64) -> Self {
        MosParams {
            vt0: -0.90,
            kp: 38e-6,
            lambda: 0.05,
            gamma: 0.45,
            phi: 0.70,
            w,
            l,
            cox: 2.3e-3,
            cgso: 3.0e-10,
        }
    }

    /// `β = KP·W/L`.
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }

    /// Intrinsic gate-source capacitance (2/3 of the channel in
    /// saturation, plus overlap), used as a constant transient cap.
    pub fn cgs(&self) -> f64 {
        2.0 / 3.0 * self.cox * self.w * self.l + self.cgso * self.w
    }

    /// Gate-drain overlap capacitance.
    pub fn cgd(&self) -> f64 {
        self.cgso * self.w
    }
}

/// Linearized operating point of a MOSFET, expressed with respect to the
/// *original* terminal voltages (no polarity or drain/source swap visible
/// to the caller).
///
/// `ids` is the current flowing into the drain terminal and out of the
/// source terminal; `gm = ∂ids/∂vgs`, `gds = ∂ids/∂vds`,
/// `gmb = ∂ids/∂vbs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOperatingPoint {
    /// Drain current (A), positive into the drain for a conducting NMOS.
    pub ids: f64,
    /// Transconductance ∂ids/∂vgs (A/V).
    pub gm: f64,
    /// Output conductance ∂ids/∂vds (A/V).
    pub gds: f64,
    /// Body transconductance ∂ids/∂vbs (A/V).
    pub gmb: f64,
    /// Operating region (of the effective, swap-corrected device).
    pub region: MosRegion,
}

/// Evaluates the Level-1 model at absolute terminal voltages
/// `(vd, vg, vs, vb)`.
///
/// Handles PMOS by sign reflection and drain/source interchange when
/// `vds < 0` (the Level-1 channel is symmetric), so the returned
/// derivatives are always consistent with the original terminals — this
/// is verified against finite differences in the tests.
pub fn evaluate(
    params: &MosParams,
    polarity: MosPolarity,
    vd: f64,
    vg: f64,
    vs: f64,
    vb: f64,
) -> MosOperatingPoint {
    // Reflect PMOS into the NMOS frame: all voltages negate, |vt0|.
    let sign = match polarity {
        MosPolarity::Nmos => 1.0,
        MosPolarity::Pmos => -1.0,
    };
    let (nd, ng, ns, nb) = (sign * vd, sign * vg, sign * vs, sign * vb);

    // Channel symmetry: if vds < 0 in the NMOS frame, swap drain/source.
    let swapped = nd < ns;
    let (ed, es) = if swapped { (ns, nd) } else { (nd, ns) };
    let vgs = ng - es;
    let vds = ed - es;
    let vbs = nb - es;

    let eff = evaluate_nmos_frame(params, vgs, vds, vbs);

    // Undo the swap: the current into the original drain negates, and the
    // chain rule maps the derivatives. With the swapped-frame variables
    // (vgs', vds', vbs') = (vgs − vds, −vds, vbs − vds) and
    // ids = −ids'(vgs', vds', vbs'):
    //   ∂ids/∂vgs = −gm'
    //   ∂ids/∂vds = gm' + gds' + gmb'
    //   ∂ids/∂vbs = −gmb'
    let (ids_n, gm_n, gds_n, gmb_n) = if swapped {
        (-eff.ids, -eff.gm, eff.gm + eff.gds + eff.gmb, -eff.gmb)
    } else {
        (eff.ids, eff.gm, eff.gds, eff.gmb)
    };

    // Undo PMOS reflection: ids(v) = −ids_n(−v) ⇒ derivatives are
    // preserved, current negates.
    MosOperatingPoint {
        ids: sign * ids_n,
        gm: gm_n,
        gds: gds_n,
        gmb: gmb_n,
        region: eff.region,
    }
}

struct NmosFrameEval {
    ids: f64,
    gm: f64,
    gds: f64,
    gmb: f64,
    region: MosRegion,
}

/// Core Shichman–Hodges equations for an NMOS with `vds >= 0`.
fn evaluate_nmos_frame(params: &MosParams, vgs: f64, vds: f64, vbs: f64) -> NmosFrameEval {
    debug_assert!(vds >= -1e-12);
    let beta = params.beta();
    let vt0 = params.vt0.abs();

    // Body effect. vsb = −vbs; clamp the sqrt argument to keep the model
    // defined under (mild, nonphysical mid-iteration) forward body bias.
    let sqrt_arg = (params.phi - vbs).max(1e-3);
    let sqrt_term = sqrt_arg.sqrt();
    let vth = vt0 + params.gamma * (sqrt_term - params.phi.sqrt());
    // ∂vth/∂vbs = −γ / (2·sqrt(φ − vbs))
    let dvth_dvbs = -params.gamma / (2.0 * sqrt_term);

    let vov = vgs - vth;
    if vov <= 0.0 {
        return NmosFrameEval { ids: 0.0, gm: 0.0, gds: 0.0, gmb: 0.0, region: MosRegion::Cutoff };
    }
    let clm = 1.0 + params.lambda * vds;
    if vds < vov {
        // Triode.
        let core = vov * vds - 0.5 * vds * vds;
        let ids = beta * core * clm;
        let gm = beta * vds * clm;
        let gds = beta * ((vov - vds) * clm + core * params.lambda);
        let gmb = -gm_dvth(beta, vds, clm) * dvth_dvbs;
        NmosFrameEval { ids, gm, gds, gmb, region: MosRegion::Triode }
    } else {
        // Saturation.
        let ids = 0.5 * beta * vov * vov * clm;
        let gm = beta * vov * clm;
        let gds = 0.5 * beta * vov * vov * params.lambda;
        let gmb = -gm * dvth_dvbs;
        NmosFrameEval { ids, gm, gds, gmb, region: MosRegion::Saturation }
    }
}

/// ∂ids/∂vth in triode is −β·vds·(1+λvds) = −gm; returns the magnitude
/// used for the gmb chain rule.
fn gm_dvth(beta: f64, vds: f64, clm: f64) -> f64 {
    beta * vds * clm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosParams {
        MosParams::nmos_default(10e-6, 1e-6)
    }

    fn pmos() -> MosParams {
        MosParams::pmos_default(10e-6, 1e-6)
    }

    #[test]
    fn cutoff_carries_no_current() {
        let op = evaluate(&nmos(), MosPolarity::Nmos, 2.0, 0.3, 0.0, 0.0);
        assert_eq!(op.region, MosRegion::Cutoff);
        assert_eq!(op.ids, 0.0);
        assert_eq!(op.gm, 0.0);
    }

    #[test]
    fn saturation_current_matches_square_law() {
        let p = nmos();
        // vgs = 2, vth = vt0 (vbs = 0), vds = 3 > vov
        let op = evaluate(&p, MosPolarity::Nmos, 3.0, 2.0, 0.0, 0.0);
        assert_eq!(op.region, MosRegion::Saturation);
        let vov: f64 = 2.0 - p.vt0;
        let expected = 0.5 * p.beta() * vov.powi(2) * (1.0 + p.lambda * 3.0);
        assert!((op.ids - expected).abs() < 1e-12);
        assert!(op.ids > 0.0);
    }

    #[test]
    fn triode_region_detected() {
        let op = evaluate(&nmos(), MosPolarity::Nmos, 0.1, 3.0, 0.0, 0.0);
        assert_eq!(op.region, MosRegion::Triode);
        assert!(op.ids > 0.0);
        assert!(op.gds > 0.0);
    }

    #[test]
    fn current_is_continuous_across_triode_saturation_boundary() {
        let p = nmos();
        let vov = 2.0 - p.vt0;
        let below = evaluate(&p, MosPolarity::Nmos, vov - 1e-9, 2.0, 0.0, 0.0);
        let above = evaluate(&p, MosPolarity::Nmos, vov + 1e-9, 2.0, 0.0, 0.0);
        assert!((below.ids - above.ids).abs() < 1e-9 * below.ids.abs().max(1e-12));
        assert!((below.gm - above.gm).abs() / above.gm < 1e-6);
    }

    #[test]
    fn reverse_vds_mirrors_current() {
        let p = nmos();
        // Same |vds| but reversed: with vgs measured from the *effective*
        // source, a symmetric device gives the negated current.
        let fwd = evaluate(&p, MosPolarity::Nmos, 0.2, 2.0, 0.0, 0.0);
        let rev = evaluate(&p, MosPolarity::Nmos, -0.2, 1.8, 0.0, -0.2);
        // rev has effective source = drain terminal at −0.2 V, so the
        // effective vgs/vds/vbs equal the forward case and ids negates.
        assert!((fwd.ids + rev.ids).abs() < 1e-12, "{} vs {}", fwd.ids, rev.ids);
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let op = evaluate(&pmos(), MosPolarity::Pmos, 0.0, 3.0, 5.0, 5.0);
        // Source at 5 V, gate at 3 V → vgs = −2 V < vt0 = −0.9: on.
        assert_ne!(op.region, MosRegion::Cutoff);
        // Current flows source→drain, i.e. *out* of the drain terminal:
        // ids (into drain) is negative.
        assert!(op.ids < 0.0);
        assert!(op.gm > 0.0);
    }

    #[test]
    fn pmos_cutoff_when_gate_high() {
        let op = evaluate(&pmos(), MosPolarity::Pmos, 0.0, 5.0, 5.0, 5.0);
        assert_eq!(op.region, MosRegion::Cutoff);
        assert_eq!(op.ids, 0.0);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let p = nmos();
        let no_body = evaluate(&p, MosPolarity::Nmos, 3.0, 1.5, 0.0, 0.0);
        // Same vgs but source lifted above body (vsb = 1): less current.
        let with_body = evaluate(&p, MosPolarity::Nmos, 4.0, 2.5, 1.0, 0.0);
        assert!(with_body.ids < no_body.ids);
        assert!(with_body.gmb > 0.0);
    }

    /// Central-difference check of all three derivatives over a grid of
    /// bias points, both polarities, including swapped (vds < 0) cases.
    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for (params, pol) in [(nmos(), MosPolarity::Nmos), (pmos(), MosPolarity::Pmos)] {
            for &vd in &[-0.3, 0.05, 0.8, 2.0, 4.5] {
                for &vg in &[0.0, 0.9, 1.8, 3.1, 5.0] {
                    for &vs in &[0.0, 0.4, 1.1] {
                        let vb = if pol == MosPolarity::Nmos { 0.0 } else { 5.0 };
                        let op = evaluate(&params, pol, vd, vg, vs, vb);
                        let f = |vd: f64, vg: f64, vs: f64, vb: f64| {
                            evaluate(&params, pol, vd, vg, vs, vb).ids
                        };
                        // gm: vary gate
                        let gm_fd = (f(vd, vg + h, vs, vb) - f(vd, vg - h, vs, vb)) / (2.0 * h);
                        // gds: vary drain
                        let gds_fd = (f(vd + h, vg, vs, vb) - f(vd - h, vg, vs, vb)) / (2.0 * h);
                        // gmb: vary body
                        let gmb_fd = (f(vd, vg, vs, vb + h) - f(vd, vg, vs, vb - h)) / (2.0 * h);
                        let scale = op.ids.abs().max(1e-6);
                        assert!(
                            (op.gm - gm_fd).abs() < 1e-3 * scale.max(op.gm.abs()) + 1e-9,
                            "gm mismatch at ({pol:?}, vd={vd}, vg={vg}, vs={vs}): {} vs fd {}",
                            op.gm,
                            gm_fd
                        );
                        assert!(
                            (op.gds - gds_fd).abs() < 1e-3 * scale.max(op.gds.abs()) + 1e-9,
                            "gds mismatch at ({pol:?}, vd={vd}, vg={vg}, vs={vs}): {} vs fd {}",
                            op.gds,
                            gds_fd
                        );
                        assert!(
                            (op.gmb - gmb_fd).abs() < 1e-3 * scale.max(op.gmb.abs()) + 1e-9,
                            "gmb mismatch at ({pol:?}, vd={vd}, vg={vg}, vs={vs}): {} vs fd {}",
                            op.gmb,
                            gmb_fd
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn capacitance_helpers_are_positive() {
        let p = nmos();
        assert!(p.cgs() > 0.0);
        assert!(p.cgd() > 0.0);
        assert!(p.cgs() > p.cgd());
    }
}
