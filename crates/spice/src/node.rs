use std::fmt;

/// An interned circuit node.
///
/// Node ids are created by [`Circuit::node`](crate::Circuit::node); id `0`
/// is always the ground node. The paper's methodology standardizes node
/// names per macro type ("Node names should however be standardized",
/// §2.1) — names are the stable identity, ids are per-circuit indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node, always present in every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of this node inside its circuit.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    pub fn is_ground(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_zero() {
        assert_eq!(NodeId::GROUND.index(), 0);
        assert!(NodeId::GROUND.is_ground());
        assert!(!NodeId(3).is_ground());
    }

    #[test]
    fn display_shows_index() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
