//! MNA matrix assembly (device "stamps").
//!
//! Unknown ordering: the `N − 1` non-ground node voltages first (node id
//! `n` lives at index `n − 1`), followed by one branch current per
//! voltage-defined device (voltage sources, VCVS, CCVS and inductors),
//! in device insertion order. KCL rows are written as "sum of currents
//! *leaving* the node equals zero" with constant terms moved to the
//! right-hand side.
//!
//! Assembly is two-phase: [`StampPlan::build`] walks the device list
//! *once* per circuit, resolving every node to its matrix slot and
//! precomputing all constant stamp values; [`StampPlan::assemble_into`]
//! then replays the flat op list per Newton iteration with no device
//! dispatch, no node-index arithmetic and no allocation. The plan is
//! shared across Newton iterations, gmin/source stepping ladders,
//! transient timesteps, and AC operating-point linearization. The
//! replay applies ops in device order, so the floating-point
//! accumulation order (and therefore the result, bit for bit) matches a
//! direct device-by-device assembly.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use castg_numeric::{Matrix, SparseLu, SparseMatrix, SparseSymbolic, StampTarget};

use crate::bjt::{self, BjtParams, BjtPolarity};
use crate::circuit::Circuit;
use crate::device::{Device, DeviceKind};
use crate::diode::{self, DiodeParams};
use crate::solver::OrderingKind;
use crate::mos::{self, MosParams, MosPolarity};
use crate::node::NodeId;
use crate::stimulus::Waveform;

/// Maps a node to its matrix index (`None` for ground).
#[inline]
pub(crate) fn idx(n: NodeId) -> Option<usize> {
    if n.is_ground() {
        None
    } else {
        Some(n.index() - 1)
    }
}

/// Voltage of a node under the candidate solution `x` (ground is 0).
#[inline]
pub(crate) fn voltage_of(x: &[f64], n: NodeId) -> f64 {
    match idx(n) {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Voltage of a resolved matrix slot under the candidate solution `x`.
#[inline]
fn slot_voltage(x: &[f64], slot: Option<usize>) -> f64 {
    match slot {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Adds `g` as a two-terminal conductance stamp between `a` and `b`.
/// Generic over the assembly target so the same stamp drives the dense
/// and the sparse solver path.
pub(crate) fn stamp_conductance<M: StampTarget + ?Sized>(mat: &mut M, a: NodeId, b: NodeId, g: f64) {
    if let Some(i) = idx(a) {
        mat.add(i, i, g);
        if let Some(j) = idx(b) {
            mat.add(i, j, -g);
        }
    }
    if let Some(j) = idx(b) {
        mat.add(j, j, g);
        if let Some(i) = idx(a) {
            mat.add(j, i, -g);
        }
    }
}

/// Adds a constant current `i` flowing out of node `from` into node `to`
/// (through the element being stamped).
pub(crate) fn stamp_current(rhs: &mut [f64], from: NodeId, to: NodeId, i: f64) {
    if let Some(a) = idx(from) {
        rhs[a] -= i;
    }
    if let Some(b) = idx(to) {
        rhs[b] += i;
    }
}

/// One replayable assembly operation with fully resolved slots.
///
/// Kept deliberately small (the MOSFET payload lives out-of-line in
/// [`MosSite`]): the op list is cloned per fault-injection patch and
/// walked once per Newton iteration, so its footprint is hot-loop
/// memory traffic.
#[derive(Debug, Clone)]
enum PlanOp {
    /// Add a precomputed constant to one matrix slot (resistors and the
    /// ±1/±gain patterns of voltage-defined devices).
    Mat { row: usize, col: usize, value: f64 },
    /// Independent current source: waveform value into the KCL rows.
    Current { from: Option<usize>, to: Option<usize>, wave: usize },
    /// Voltage-defined device: waveform value onto the branch row.
    SourceRow { row: usize, wave: usize },
    /// Level-1 MOSFET, linearized around the candidate solution at
    /// replay time; `site` indexes the plan's [`MosSite`] table.
    Mos { site: usize },
    /// Junction diode, linearized around the candidate solution at
    /// replay time; `site` indexes the plan's [`DiodeSite`] table.
    Diode { site: usize },
    /// Bipolar transistor, linearized around the candidate solution at
    /// replay time; `site` indexes the plan's [`BjtSite`] table.
    Bjt { site: usize },
}

/// Resolved terminals and model of one MOSFET linearization site.
#[derive(Debug, Clone)]
struct MosSite {
    d: Option<usize>,
    g: Option<usize>,
    s: Option<usize>,
    b: Option<usize>,
    polarity: MosPolarity,
    params: MosParams,
}

/// Resolved terminals and model of one diode linearization site.
#[derive(Debug, Clone)]
struct DiodeSite {
    a: Option<usize>,
    k: Option<usize>,
    params: DiodeParams,
}

/// Resolved terminals and model of one BJT linearization site.
#[derive(Debug, Clone)]
struct BjtSite {
    c: Option<usize>,
    b: Option<usize>,
    e: Option<usize>,
    polarity: BjtPolarity,
    params: BjtParams,
}

// Each nonlinear device kind *declares* its limited unknowns (all of
// its terminal slots — these get the ladder's damped-update clamp) and
// the KCL rows its linearization writes; `StampPlan::finalize` consumes
// the declarations device-agnostically. Before this existed, the
// damping mask was populated from MOSFET sites only, and any other
// nonlinear device would have run unclamped through every ladder rung.
impl MosSite {
    fn terminals(&self) -> [Option<usize>; 4] {
        [self.d, self.g, self.s, self.b]
    }
    fn written_rows(&self) -> [Option<usize>; 2] {
        // The channel linearization writes the drain and source KCL
        // rows only (the gate and bulk draw no DC current).
        [self.d, self.s]
    }
}

impl DiodeSite {
    fn terminals(&self) -> [Option<usize>; 2] {
        [self.a, self.k]
    }
    fn written_rows(&self) -> [Option<usize>; 2] {
        [self.a, self.k]
    }
}

impl BjtSite {
    fn terminals(&self) -> [Option<usize>; 3] {
        [self.c, self.b, self.e]
    }
    fn written_rows(&self) -> [Option<usize>; 3] {
        [self.c, self.b, self.e]
    }
}

/// Registers one nonlinear linearization site with the plan being
/// finalized: the plan stops being linear, every terminal unknown joins
/// the damped mask, and every (written row × terminal column) slot
/// joins the static sparsity pattern.
fn register_nonlinear_site(
    damped: &mut [bool],
    linear: &mut bool,
    static_slots: &mut Vec<(usize, usize)>,
    written_rows: &[Option<usize>],
    terminals: &[Option<usize>],
) {
    *linear = false;
    for slot in terminals.iter().flatten() {
        damped[*slot] = true;
    }
    for row in written_rows.iter().flatten() {
        for col in terminals.iter().flatten() {
            static_slots.push((*row, *col));
        }
    }
}

/// Accumulates the per-device assembly ops during plan construction.
/// Shared by the full compile ([`StampPlan::build`]) and the
/// incremental patch ([`StampPlan::patched_with_device`]), so a patched
/// plan is structurally indistinguishable from a recompiled one.
struct PlanBuilder {
    ops: Vec<PlanOp>,
    waves: Vec<Waveform>,
    mos_sites: Vec<MosSite>,
    diode_sites: Vec<DiodeSite>,
    bjt_sites: Vec<BjtSite>,
    dynamic_slots: Vec<(usize, usize)>,
    /// Next branch-current row/column.
    branch: usize,
    /// Branch row of every voltage-defined device emitted so far, by
    /// name: current-controlled sources (F/H) resolve their sensing
    /// column here. `Circuit::add` guarantees the controller precedes
    /// its F/H card in device order, so the row is always present by
    /// the time it is looked up.
    branch_rows: HashMap<Arc<str>, usize>,
}

impl PlanBuilder {
    /// Emits the assembly ops of one device, in exactly the add order
    /// the direct stamp functions use so replay accumulates
    /// identically.
    fn emit(&mut self, dev: &Device) {
        let ops = &mut self.ops;
        let mat = |ops: &mut Vec<PlanOp>, row: usize, col: usize, value: f64| {
            ops.push(PlanOp::Mat { row, col, value });
        };
        // Conductance stamps in exactly the add order of
        // `stamp_conductance`.
        let conductance = |ops: &mut Vec<PlanOp>, a: NodeId, b: NodeId, g: f64| {
            if let Some(i) = idx(a) {
                ops.push(PlanOp::Mat { row: i, col: i, value: g });
                if let Some(j) = idx(b) {
                    ops.push(PlanOp::Mat { row: i, col: j, value: -g });
                }
            }
            if let Some(j) = idx(b) {
                ops.push(PlanOp::Mat { row: j, col: j, value: g });
                if let Some(i) = idx(a) {
                    ops.push(PlanOp::Mat { row: j, col: i, value: -g });
                }
            }
        };
        // Slots a two-terminal conductance between resolved indices can
        // touch (the sparsity-pattern counterpart of `stamp_conductance`).
        let conductance_slots =
            |slots: &mut Vec<(usize, usize)>, a: Option<usize>, b: Option<usize>| {
                if let Some(i) = a {
                    slots.push((i, i));
                    if let Some(j) = b {
                        slots.push((i, j));
                        slots.push((j, i));
                    }
                }
                if let Some(j) = b {
                    slots.push((j, j));
                }
            };
        match dev.kind() {
            DeviceKind::Resistor { a, b, ohms } => {
                conductance(ops, *a, *b, 1.0 / ohms);
            }
            DeviceKind::Capacitor { a, b, .. } => {
                // Open in DC; transient stamps companions separately
                // (but their slots belong to the sparsity pattern).
                conductance_slots(&mut self.dynamic_slots, idx(*a), idx(*b));
            }
            DeviceKind::Inductor { a, b, .. } => {
                // DC: an ideal short via the branch equation
                // `v(a) − v(b) = 0` (±1 pattern, no source row). The
                // transient companion and the AC reactance stamp the
                // branch diagonal, which is therefore a dynamic slot.
                let br = self.branch;
                self.branch += 1;
                self.branch_rows.insert(dev.name_arc(), br);
                if let Some(i) = idx(*a) {
                    mat(ops, i, br, 1.0);
                    mat(ops, br, i, 1.0);
                }
                if let Some(j) = idx(*b) {
                    mat(ops, j, br, -1.0);
                    mat(ops, br, j, -1.0);
                }
                self.dynamic_slots.push((br, br));
            }
            DeviceKind::Isource { from, to, wave } => {
                self.waves.push(wave.clone());
                ops.push(PlanOp::Current {
                    from: idx(*from),
                    to: idx(*to),
                    wave: self.waves.len() - 1,
                });
            }
            DeviceKind::Vsource { pos, neg, wave } => {
                let br = self.branch;
                self.branch += 1;
                self.branch_rows.insert(dev.name_arc(), br);
                if let Some(p) = idx(*pos) {
                    mat(ops, p, br, 1.0);
                    mat(ops, br, p, 1.0);
                }
                if let Some(ng) = idx(*neg) {
                    mat(ops, ng, br, -1.0);
                    mat(ops, br, ng, -1.0);
                }
                self.waves.push(wave.clone());
                ops.push(PlanOp::SourceRow { row: br, wave: self.waves.len() - 1 });
            }
            DeviceKind::Vcvs { pos, neg, cp, cn, gain } => {
                let br = self.branch;
                self.branch += 1;
                self.branch_rows.insert(dev.name_arc(), br);
                if let Some(p) = idx(*pos) {
                    mat(ops, p, br, 1.0);
                    mat(ops, br, p, 1.0);
                }
                if let Some(ng) = idx(*neg) {
                    mat(ops, ng, br, -1.0);
                    mat(ops, br, ng, -1.0);
                }
                if let Some(c) = idx(*cp) {
                    mat(ops, br, c, -gain);
                }
                if let Some(c) = idx(*cn) {
                    mat(ops, br, c, *gain);
                }
            }
            DeviceKind::Mosfet { d, g, s, b, polarity, params } => {
                // Gate capacitances are stamped by the transient and
                // AC engines.
                conductance_slots(&mut self.dynamic_slots, idx(*g), idx(*s));
                conductance_slots(&mut self.dynamic_slots, idx(*g), idx(*d));
                self.mos_sites.push(MosSite {
                    d: idx(*d),
                    g: idx(*g),
                    s: idx(*s),
                    b: idx(*b),
                    polarity: *polarity,
                    params: *params,
                });
                ops.push(PlanOp::Mos { site: self.mos_sites.len() - 1 });
            }
            DeviceKind::Diode { a, k, params } => {
                // The junction capacitance is stamped by the transient
                // and AC engines over the anode/cathode slots.
                conductance_slots(&mut self.dynamic_slots, idx(*a), idx(*k));
                self.diode_sites.push(DiodeSite { a: idx(*a), k: idx(*k), params: *params });
                ops.push(PlanOp::Diode { site: self.diode_sites.len() - 1 });
            }
            DeviceKind::Bjt { c, b, e, polarity, params } => {
                // Base-emitter and base-collector junction capacitances
                // are stamped by the transient and AC engines.
                conductance_slots(&mut self.dynamic_slots, idx(*b), idx(*e));
                conductance_slots(&mut self.dynamic_slots, idx(*b), idx(*c));
                self.bjt_sites.push(BjtSite {
                    c: idx(*c),
                    b: idx(*b),
                    e: idx(*e),
                    polarity: *polarity,
                    params: *params,
                });
                ops.push(PlanOp::Bjt { site: self.bjt_sites.len() - 1 });
            }
            DeviceKind::Vccs { pos, neg, cp, cn, gm } => {
                // Current gm·(v(cp) − v(cn)) leaves `pos` and enters
                // `neg`: the four-entry transconductance pattern.
                if let Some(p) = idx(*pos) {
                    if let Some(c) = idx(*cp) {
                        mat(ops, p, c, *gm);
                    }
                    if let Some(c) = idx(*cn) {
                        mat(ops, p, c, -*gm);
                    }
                }
                if let Some(ng) = idx(*neg) {
                    if let Some(c) = idx(*cp) {
                        mat(ops, ng, c, -*gm);
                    }
                    if let Some(c) = idx(*cn) {
                        mat(ops, ng, c, *gm);
                    }
                }
            }
            DeviceKind::Cccs { pos, neg, ctrl, gain } => {
                // Current gain·i(ctrl) leaves `pos` and enters `neg`:
                // ±gain in the controller's branch column.
                let ctrl_col = *self
                    .branch_rows
                    .get(ctrl.as_ref())
                    .expect("Circuit::add validates the controlling device of a CCCS");
                if let Some(p) = idx(*pos) {
                    mat(ops, p, ctrl_col, *gain);
                }
                if let Some(ng) = idx(*neg) {
                    mat(ops, ng, ctrl_col, -*gain);
                }
            }
            DeviceKind::Ccvs { pos, neg, ctrl, ohms } => {
                // Branch equation v(pos) − v(neg) − ohms·i(ctrl) = 0.
                let ctrl_col = *self
                    .branch_rows
                    .get(ctrl.as_ref())
                    .expect("Circuit::add validates the controlling device of a CCVS");
                let br = self.branch;
                self.branch += 1;
                self.branch_rows.insert(dev.name_arc(), br);
                if let Some(p) = idx(*pos) {
                    mat(ops, p, br, 1.0);
                    mat(ops, br, p, 1.0);
                }
                if let Some(ng) = idx(*neg) {
                    mat(ops, ng, br, -1.0);
                    mat(ops, br, ng, -1.0);
                }
                mat(ops, br, ctrl_col, -*ohms);
            }
        }
    }
}

/// A precompiled assembly schedule for one [`Circuit`].
///
/// Building the plan resolves node ids to matrix slots, assigns branch
/// rows and splits every device into constant matrix contributions,
/// waveform-driven right-hand-side contributions and nonlinear (MOSFET)
/// linearization sites. Replaying it is a single flat pass — the hot
/// loop of every analysis.
///
/// Plans are *patchable*: replacing a stimulus waveform
/// ([`with_wave`](StampPlan::with_wave)) or appending a device whose
/// nodes already exist ([`patched_with_device`](StampPlan::patched_with_device),
/// the delta-stamp path bridge-fault injection rides) derives the
/// successor plan from the compiled one instead of recompiling from the
/// netlist. A wave patch even keeps the cached sparse template and
/// canonical symbolic analysis — the matrix structure and values are
/// stimulus-independent.
#[derive(Debug, Clone)]
pub(crate) struct StampPlan {
    n: usize,
    n_nodes: usize,
    ops: Vec<PlanOp>,
    mos_sites: Vec<MosSite>,
    diode_sites: Vec<DiodeSite>,
    bjt_sites: Vec<BjtSite>,
    /// Branch row by device name (see [`PlanBuilder::branch_rows`]);
    /// carried on the plan so a device patch can resolve the sensing
    /// column of a patched-in current-controlled source.
    branch_rows: HashMap<Arc<str>, usize>,
    /// The rhs-writing subset of `ops` (`Current`/`SourceRow`), in op
    /// order: [`assemble_rhs_only`](StampPlan::assemble_rhs_only) walks
    /// this instead of scanning every matrix op — a transient step of a
    /// linear circuit touches a handful of sources, not thousands of
    /// conductances.
    rhs_ops: Vec<PlanOp>,
    waves: Vec<Waveform>,
    /// `damped[i]` is true when unknown `i` is a terminal of a nonlinear
    /// device (MOSFET, diode, BJT — each site declares its terminals,
    /// see [`register_nonlinear_site`]): only those update components
    /// need Newton damping. Linear nodes (and branch currents) take the
    /// full, exact Newton step — clamping them would just make a supply
    /// node crawl to its source voltage half a volt per iteration.
    damped: Vec<bool>,
    /// Whether the plan has no nonlinear (MOSFET/diode/BJT)
    /// linearization sites: the assembled matrix is then independent of
    /// the candidate solution, which the Newton loops exploit to skip
    /// refactorizations (Shamanskii-style, exact for linear plans).
    linear: bool,
    /// Every matrix slot the static (DC/Jacobian) assembly can touch:
    /// gmin diagonal, constant stamps, nonlinear linearization sites.
    static_slots: Vec<(usize, usize)>,
    /// Slots touched only by capacitive stamps: transient companion
    /// conductances and the AC `C` matrix (explicit capacitors plus MOS
    /// gate capacitances).
    dynamic_slots: Vec<(usize, usize)>,
    /// Per-[`PatternScope`] lazy caches: the sparse template, canonical
    /// symbolic analyses, orderings and stamp indices all come in a
    /// `Static` (DC) and a `Full` (transient / AC) flavor, because the
    /// two scopes factor different sparsity patterns. When the static
    /// and full slot sets produce the same pattern (no off-diagonal
    /// capacitive coupling — ladders, meshes), the static template
    /// shares the full pattern's `Arc` and every `Static` lookup is
    /// transparently redirected to the `Full` caches, so such plans pay
    /// for one scope exactly as before the split.
    caches: [ScopeCaches; 2],
}

/// Which slot set an analysis's matrices (and therefore its symbolic
/// analyses and orderings) live on.
///
/// DC solves factor the **static** (resistive/Jacobian) pattern only:
/// capacitors are open in DC, so their slots would be structural zeros
/// that cost fill *and* glue otherwise independent diagonal blocks
/// together — a MOS cascade condenses into per-stage BTF blocks under
/// the static pattern but is one giant strongly connected component
/// under the full one (the gate-drain capacitance couples every stage
/// symmetrically). Transient solves stamp companion conductances into
/// the dynamic slots and need the **full** union; the AC engine stamps
/// `G` and `C` over the full template too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PatternScope {
    /// Static (DC/Jacobian) slots only.
    Static = 0,
    /// Static ∪ dynamic slots (transient companions, AC reactances).
    Full = 1,
}

/// The per-scope half of a [`StampPlan`]'s lazy state; see the `caches`
/// field for the redirection rule that keeps single-pattern plans on
/// one copy.
#[derive(Debug, Clone, Default)]
struct ScopeCaches {
    /// Lazily built all-zero sparse matrix over this scope's slot set;
    /// cloned (pattern shared, one value vector each) by every sparse
    /// solver instance for this circuit, so the pattern construction is
    /// paid once per plan.
    template: OnceLock<SparseMatrix>,
    /// Lazily computed shared symbolic analyses of the canonical MNA
    /// matrix (assembled at `x = 0` with the default gmin), one per
    /// column ordering; `None` inside when the canonical matrix is
    /// singular. Every sparse solver instance for this circuit seeds
    /// from the one its analysis ordering resolves to, so a whole fault
    /// campaign pays one symbolic analysis (and at most one AMD run)
    /// per circuit variant and scope.
    canonical_natural: OnceLock<Option<Arc<SparseSymbolic>>>,
    canonical_amd: OnceLock<Option<Arc<SparseSymbolic>>>,
    canonical_btf: OnceLock<Option<Arc<SparseSymbolic>>>,
    /// Lazily computed BTF preordering of this scope's pattern (`None`
    /// inside when the pattern is structurally singular): one
    /// transversal + condensation + per-block AMD per plan and scope,
    /// shared by the Btf/Auto resolution, the canonical BTF
    /// factorization, and solver instances that must order their own
    /// analysis. Like `amd_perm`, a pure function of the pattern —
    /// delta-patched and rebuilt variants of one faulted circuit
    /// compute identical orders.
    btf_order: OnceLock<Option<Arc<castg_numeric::BtfOrder>>>,
    /// Lazily computed AMD permutation of this scope's pattern: one
    /// ordering construction per plan and scope, shared by the Auto
    /// comparison, the canonical AMD factorization, and solver
    /// instances that must order their own analysis (singular
    /// canonical).
    amd_perm: OnceLock<Vec<usize>>,
    /// Lazily resolved `OrderingKind::Auto` verdict (`Natural`, `Amd`
    /// or `Btf`); see [`resolve_ordering`](StampPlan::resolve_ordering)
    /// for the three-gate rule. Every input is reproduced
    /// bit-identically by a delta-patched plan — and the verdict is
    /// never inherited across device patches — so delta-patched and
    /// rebuilt variants of one faulted circuit always resolve
    /// identically.
    auto_ordering: OnceLock<OrderingKind>,
    /// Lazily resolved value-array indices of every static stamp the
    /// replay performs against this scope's template, in replay order
    /// (gmin diagonal first, then per-op adds). The sparse assembly
    /// fast path walks this with a cursor instead of binary-searching
    /// each `(row, col)` — same adds, same order, same bits.
    sparse_index: OnceLock<Vec<u32>>,
}

impl StampPlan {
    /// Compiles the assembly schedule for `circuit`.
    pub(crate) fn build(circuit: &Circuit) -> Self {
        let n_nodes = circuit.node_count() - 1;
        let n = circuit.unknown_count();
        let mut builder = PlanBuilder {
            ops: Vec::new(),
            waves: Vec::new(),
            mos_sites: Vec::new(),
            diode_sites: Vec::new(),
            bjt_sites: Vec::new(),
            dynamic_slots: Vec::new(),
            branch: n_nodes,
            branch_rows: HashMap::new(),
        };
        for dev in circuit.devices() {
            builder.emit(dev);
        }
        StampPlan::finalize(builder, n, n_nodes)
    }

    /// Completes a plan from emitted ops: derives the damping mask and
    /// the static slot list (both functions of the op list alone).
    fn finalize(builder: PlanBuilder, n: usize, n_nodes: usize) -> Self {
        let PlanBuilder { ops, waves, mos_sites, diode_sites, bjt_sites, dynamic_slots, branch_rows, .. } =
            builder;
        let mut damped = vec![false; n];
        let mut linear = true;
        let mut static_slots: Vec<(usize, usize)> = (0..n_nodes).map(|i| (i, i)).collect();
        for op in &ops {
            match op {
                PlanOp::Mos { site } => {
                    let s = &mos_sites[*site];
                    register_nonlinear_site(
                        &mut damped,
                        &mut linear,
                        &mut static_slots,
                        &s.written_rows(),
                        &s.terminals(),
                    );
                }
                PlanOp::Diode { site } => {
                    let s = &diode_sites[*site];
                    register_nonlinear_site(
                        &mut damped,
                        &mut linear,
                        &mut static_slots,
                        &s.written_rows(),
                        &s.terminals(),
                    );
                }
                PlanOp::Bjt { site } => {
                    let s = &bjt_sites[*site];
                    register_nonlinear_site(
                        &mut damped,
                        &mut linear,
                        &mut static_slots,
                        &s.written_rows(),
                        &s.terminals(),
                    );
                }
                PlanOp::Mat { row, col, .. } => static_slots.push((*row, *col)),
                PlanOp::Current { .. } | PlanOp::SourceRow { .. } => {}
            }
        }
        let rhs_ops = ops
            .iter()
            .filter(|op| matches!(op, PlanOp::Current { .. } | PlanOp::SourceRow { .. }))
            .cloned()
            .collect();
        StampPlan {
            n,
            n_nodes,
            ops,
            mos_sites,
            diode_sites,
            bjt_sites,
            branch_rows,
            rhs_ops,
            waves,
            damped,
            linear,
            static_slots,
            dynamic_slots,
            caches: [ScopeCaches::default(), ScopeCaches::default()],
        }
    }

    /// The cache set `scope` resolves to, applying the redirection rule:
    /// when the static slot set produces the same pattern as the full
    /// one, `Static` lookups land on the `Full` caches so the plan pays
    /// for one scope only.
    fn scope_caches(&self, scope: PatternScope) -> &ScopeCaches {
        let scope = match scope {
            PatternScope::Full => PatternScope::Full,
            PatternScope::Static => {
                if Arc::ptr_eq(
                    self.sparse_template(PatternScope::Static).pattern(),
                    self.sparse_template(PatternScope::Full).pattern(),
                ) {
                    PatternScope::Full
                } else {
                    PatternScope::Static
                }
            }
        };
        &self.caches[scope as usize]
    }

    /// Derives the plan with stimulus waveform slot `wave` replaced.
    ///
    /// Waveforms only enter through
    /// [`source_values`](StampPlan::source_values) — the matrix
    /// structure and values are untouched — so the cached sparse
    /// template *and* the canonical symbolic analysis carry over. This
    /// is what makes `Circuit::set_stimulus` free of recompilation.
    pub(crate) fn with_wave(&self, wave_slot: usize, wave: Waveform) -> Self {
        let mut patched = self.clone();
        patched.waves[wave_slot] = wave;
        patched
    }

    /// Derives the plan for the circuit extended by `dev`, whose nodes
    /// must all exist already (callers guarantee this: creating a node
    /// drops the plan). The device's ops are appended exactly as a full
    /// recompile would emit them — the patched plan is bit-for-bit
    /// equivalent to `StampPlan::build` of the extended circuit — but
    /// no netlist walk, node interning or waveform re-clone happens.
    ///
    /// The sparse template and canonical symbolic analysis are reset:
    /// the sparsity pattern may have changed.
    pub(crate) fn patched_with_device(&self, dev: &Device) -> Self {
        let base_dynamic = self.dynamic_slots.len();
        let mut builder = PlanBuilder {
            ops: self.ops.clone(),
            waves: self.waves.clone(),
            mos_sites: self.mos_sites.clone(),
            diode_sites: self.diode_sites.clone(),
            bjt_sites: self.bjt_sites.clone(),
            dynamic_slots: self.dynamic_slots.clone(),
            // Branch rows already assigned occupy n_nodes..n; the next
            // one goes at n.
            branch: self.n,
            branch_rows: self.branch_rows.clone(),
        };
        builder.emit(dev);
        let n = if dev.has_branch_current() { self.n + 1 } else { self.n };
        let plan = StampPlan::finalize(builder, n, self.n_nodes);
        // Template fast path: when the base template is built and the
        // dimension is unchanged (no new branch row), the successor's
        // pattern is the base pattern merged with the new device's few
        // slots — identical content to a from-scratch rebuild, without
        // re-sorting thousands of slots. `finalize` derives slot lists
        // deterministically (diagonal, then ops in order), so the new
        // device's static slots are exactly the tail beyond the base
        // plan's list.
        if n == self.n {
            let new_static: Vec<(usize, usize)> =
                plan.static_slots[self.static_slots.len()..].to_vec();
            let full_idx = PatternScope::Full as usize;
            let static_idx = PatternScope::Static as usize;
            if let Some(base) = self.caches[full_idx].template.get() {
                let mut new_slots = new_static.clone();
                new_slots.extend_from_slice(&plan.dynamic_slots[base_dynamic..]);
                let pattern = base.pattern().merged_with(&new_slots);
                let _ = plan.caches[full_idx].template.set(SparseMatrix::with_pattern(pattern));
            }
            if let Some(base) = self.caches[static_idx].template.get() {
                // Same merge for the static scope; re-establish the
                // Arc-sharing redirection when the merged static
                // pattern still matches the (pre-seeded) full one, so a
                // patched variant collapses its scopes exactly like a
                // rebuild would.
                let pattern = base.pattern().merged_with(&new_static);
                let shared = plan.caches[full_idx]
                    .template
                    .get()
                    .filter(|full| full.pattern().as_ref() == pattern.as_ref())
                    .map(|full| Arc::clone(full.pattern()));
                let _ = plan.caches[static_idx]
                    .template
                    .set(SparseMatrix::with_pattern(shared.unwrap_or(pattern)));
            }
            // `auto_ordering` is deliberately *not* carried over: the
            // Auto verdict must stay a pure function of the (possibly
            // extended) pattern, so a delta-patched variant and a
            // from-scratch rebuild of the same faulted circuit resolve
            // identically — the bit-identity contract of the campaign
            // differential harness. Near the fill margin an inherited
            // verdict would diverge from the rebuild's.
        }
        plan
    }

    /// Slots only capacitive stamps (companions, AC `C`) can touch.
    pub(crate) fn dynamic_slots(&self) -> &[(usize, usize)] {
        &self.dynamic_slots
    }

    /// The all-zero sparse assembly matrix over `scope`'s slot set —
    /// `Full` is every slot any analysis of this circuit can stamp
    /// (static + dynamic), `Static` the DC/Jacobian subset. Built on
    /// first use and cached; callers clone it (the pattern is shared by
    /// `Arc`, so a clone allocates only the value vector) and stamp
    /// into the clone. A static pattern identical to the full one
    /// shares the full pattern's `Arc` (see [`PatternScope`]).
    pub(crate) fn sparse_template(&self, scope: PatternScope) -> &SparseMatrix {
        match scope {
            PatternScope::Full => {
                self.caches[PatternScope::Full as usize].template.get_or_init(|| {
                    let mut slots = self.static_slots.clone();
                    slots.extend_from_slice(&self.dynamic_slots);
                    SparseMatrix::from_entries(self.n, &slots)
                })
            }
            PatternScope::Static => {
                self.caches[PatternScope::Static as usize].template.get_or_init(|| {
                    let full = self.sparse_template(PatternScope::Full);
                    let mat = SparseMatrix::from_entries(self.n, &self.static_slots);
                    if mat.pattern().as_ref() == full.pattern().as_ref() {
                        SparseMatrix::with_pattern(Arc::clone(full.pattern()))
                    } else {
                        mat
                    }
                })
            }
        }
    }

    /// Shared symbolic analysis of the canonical MNA matrix — the
    /// system assembled at `x = 0` with the default gmin and DC source
    /// values — under the column ordering `ordering` resolves to.
    /// Computed once per plan *per ordering* (deterministically —
    /// independent of which analysis or thread asks first) and seeded
    /// into every sparse solver instance, which then refactors
    /// numerically under the recorded permutation; a solve whose values
    /// make the canonical pivot order unacceptable falls back to its
    /// own pivoting factorization (keeping the ordering). `None` when
    /// the canonical matrix is singular (a grossly broken faulted
    /// variant) — instances then analyze on their own.
    pub(crate) fn canonical_symbolic(
        &self,
        ordering: OrderingKind,
        scope: PatternScope,
    ) -> Option<Arc<SparseSymbolic>> {
        match self.resolve_ordering(ordering, scope) {
            OrderingKind::Amd => self.amd_symbolic(scope),
            OrderingKind::Btf => self.btf_symbolic(scope),
            _ => self.natural_symbolic(scope),
        }
    }

    /// The AMD permutation of `scope`'s sparse pattern, constructed
    /// once and shared by every consumer (Auto fill prediction,
    /// canonical AMD factorization, instances analyzing on their own).
    pub(crate) fn amd_permutation(&self, scope: PatternScope) -> &Vec<usize> {
        self.scope_caches(scope)
            .amd_perm
            .get_or_init(|| self.sparse_template(scope).pattern().amd_ordering())
    }

    /// The BTF preordering of `scope`'s sparse pattern (`None` when
    /// structurally singular), constructed once and shared by every
    /// consumer — the Btf/Auto resolution, the canonical BTF
    /// factorization, and instances analyzing on their own.
    pub(crate) fn btf_ordering(&self, scope: PatternScope) -> Option<&Arc<castg_numeric::BtfOrder>> {
        self.scope_caches(scope)
            .btf_order
            .get_or_init(|| self.sparse_template(scope).pattern().btf_order().map(Arc::new))
            .as_ref()
    }

    /// Whether the plan's BTF preordering is worth dispatching to: the
    /// pattern has a zero-free diagonal *and* the condensation found
    /// more than one diagonal block. A single-block (irreducible)
    /// circuit gains nothing from the block machinery, so `Btf`
    /// resolves to `Amd` there — keeping the forced-Btf path
    /// bit-identical to forced-Amd where blocks don't exist.
    fn btf_usable(&self, scope: PatternScope) -> bool {
        self.btf_ordering(scope).is_some_and(|b| b.block_count() > 1)
    }

    /// Resolves an [`OrderingKind`] against this plan: `Natural` and
    /// `Amd` pass through; `Auto`'s verdict is computed once from the
    /// canonical factorizations' fill. The natural-order canonical
    /// symbolic — which the common Natural outcome seeds solvers from
    /// anyway, so the gate is free for it — must show genuine fill
    /// blow-up
    /// ([`AMD_AUTO_MIN_BLOWUP`](crate::solver::AMD_AUTO_MIN_BLOWUP) ×
    /// the pattern's nnz; chain/ladder structure fills ~1.3× and
    /// early-outs here, paying exactly one factorization per campaign
    /// variant) before the AMD construction and trial factorization
    /// run at all; AMD then wins only by
    /// [`AMD_AUTO_MARGIN`](crate::solver::AMD_AUTO_MARGIN). A plan
    /// whose verdict lands on `Amd` therefore pays one discarded
    /// natural-order factorization — a deliberate trade: gating on a
    /// value-free fill *prediction* instead was measured slower on the
    /// (far more common) chain-shaped campaign variants, whose
    /// early-out here is free, and the discarded factor is a few
    /// percent of a fill-blown variant's evaluation cost. Every input
    /// is a pure function of the plan's pattern and canonical values,
    /// both of which a delta-patched plan reproduces bit-identically
    /// to a rebuild — so the two always resolve the same way. Never
    /// returns `Auto`.
    pub(crate) fn resolve_ordering(
        &self,
        ordering: OrderingKind,
        scope: PatternScope,
    ) -> OrderingKind {
        match ordering {
            OrderingKind::Auto => *self.scope_caches(scope).auto_ordering.get_or_init(|| {
                let nnz = self.sparse_template(scope).pattern().nnz();
                let natural_fill = match self.natural_symbolic(scope) {
                    Some(s) => s.fill_nnz(),
                    // Singular canonical matrix: no fill to compare;
                    // instances analyze on their own in natural order.
                    None => return OrderingKind::Natural,
                };
                if (natural_fill as f64) < crate::solver::AMD_AUTO_MIN_BLOWUP * nnz as f64 {
                    return OrderingKind::Natural;
                }
                let amd_fill = match self.amd_symbolic(scope).map(|s| s.fill_nnz()) {
                    Some(a)
                        if (a as f64)
                            <= crate::solver::AMD_AUTO_MARGIN * natural_fill as f64 =>
                    {
                        a
                    }
                    _ => return OrderingKind::Natural,
                };
                // Third gate: BTF supersedes AMD only when the
                // condensation found real block structure (>1
                // nontrivial block) *and* the total BTF storage beats
                // global AMD by the same margin AMD had to clear.
                if self.btf_usable(scope)
                    && self.btf_ordering(scope).is_some_and(|b| b.nontrivial_blocks() > 1)
                {
                    if let Some(b) = self.btf_symbolic(scope) {
                        if (b.fill_nnz() as f64)
                            <= crate::solver::AMD_AUTO_MARGIN * amd_fill as f64
                        {
                            return OrderingKind::Btf;
                        }
                    }
                }
                OrderingKind::Amd
            }),
            OrderingKind::Btf if !self.btf_usable(scope) => OrderingKind::Amd,
            other => other,
        }
    }

    /// The natural-order canonical symbolic analysis (cached).
    fn natural_symbolic(&self, scope: PatternScope) -> Option<Arc<SparseSymbolic>> {
        self.scope_caches(scope)
            .canonical_natural
            .get_or_init(|| self.factor_canonical(scope, |_| {}))
            .clone()
    }

    /// The AMD-ordered canonical symbolic analysis (cached).
    fn amd_symbolic(&self, scope: PatternScope) -> Option<Arc<SparseSymbolic>> {
        self.scope_caches(scope)
            .canonical_amd
            .get_or_init(|| {
                let perm = self.amd_permutation(scope).clone();
                self.factor_canonical(scope, |lu| lu.set_ordering(perm))
            })
            .clone()
    }

    /// The BTF-ordered canonical symbolic analysis (cached). Falls back
    /// to the AMD canonical when no usable BTF order exists, mirroring
    /// [`resolve_ordering`](StampPlan::resolve_ordering).
    fn btf_symbolic(&self, scope: PatternScope) -> Option<Arc<SparseSymbolic>> {
        if !self.btf_usable(scope) {
            return self.amd_symbolic(scope);
        }
        self.scope_caches(scope)
            .canonical_btf
            .get_or_init(|| {
                let order =
                    Arc::clone(self.btf_ordering(scope).expect("btf_usable implies order"));
                self.factor_canonical(scope, |lu| lu.set_btf_order(order))
            })
            .clone()
    }

    /// Assembles the canonical matrix and factors it with a workspace
    /// prepared by `setup` (ordering / BTF-order installation; the
    /// empty closure = natural order), returning the symbolic skeleton
    /// or `None` on singularity.
    fn factor_canonical(
        &self,
        scope: PatternScope,
        setup: impl FnOnce(&mut SparseLu),
    ) -> Option<Arc<SparseSymbolic>> {
        let mut mat = self.sparse_template(scope).clone();
        let mut rhs = vec![0.0; self.n];
        let x0 = vec![0.0; self.n];
        let mut src_vals = Vec::new();
        self.source_values(&mut src_vals, |w| w.dc_value());
        // The default-options gmin: what virtually every solve of this
        // plan will stamp, so the canonical pivot order matches the
        // real matrices (a custom-gmin solve still works — the
        // refactorization stability fallback covers it, just without
        // the amortization).
        let gmin = crate::analysis::AnalysisOptions::default().gmin;
        self.assemble_into(&x0, &mut mat, &mut rhs, gmin, &src_vals);
        let mut lu = SparseLu::new();
        setup(&mut lu);
        match lu.factor(&mat) {
            Ok(()) => lu.symbolic(),
            Err(_) => None,
        }
    }

    /// Whether the plan contains no nonlinear linearization sites, i.e.
    /// the assembled matrix depends only on gmin and any extra
    /// (companion) stamps — never on the candidate solution or the
    /// stimulus values.
    pub(crate) fn is_linear(&self) -> bool {
        self.linear
    }

    /// Value-array indices of every static matrix add the replay
    /// performs against `scope`'s sparse template, in replay order.
    /// Built on first use; every slot is guaranteed present in either
    /// scope (static stamps touch static slots only, which both
    /// patterns contain).
    fn sparse_index(&self, scope: PatternScope) -> &[u32] {
        self.scope_caches(scope).sparse_index.get_or_init(|| {
            let pattern = Arc::clone(self.sparse_template(scope).pattern());
            let slot = |r: usize, c: usize| {
                pattern.slot(r, c).expect("static stamp slot missing from template") as u32
            };
            let mut index = Vec::new();
            for i in 0..self.n_nodes {
                index.push(slot(i, i));
            }
            for op in &self.ops {
                match op {
                    PlanOp::Mat { row, col, .. } => index.push(slot(*row, *col)),
                    PlanOp::Mos { site } => {
                        let MosSite { d, g, s, b, .. } = &self.mos_sites[*site];
                        // Exactly the conditional add order of the
                        // `Mos` arm of `assemble_into`.
                        if let Some(di) = *d {
                            if let Some(gi) = *g {
                                index.push(slot(di, gi));
                            }
                            index.push(slot(di, di));
                            if let Some(bi) = *b {
                                index.push(slot(di, bi));
                            }
                            if let Some(si) = *s {
                                index.push(slot(di, si));
                            }
                        }
                        if let Some(si) = *s {
                            if let Some(gi) = *g {
                                index.push(slot(si, gi));
                            }
                            if let Some(di) = *d {
                                index.push(slot(si, di));
                            }
                            if let Some(bi) = *b {
                                index.push(slot(si, bi));
                            }
                            index.push(slot(si, si));
                        }
                    }
                    PlanOp::Diode { site } => {
                        let DiodeSite { a, k, .. } = &self.diode_sites[*site];
                        // Exactly the conditional add order of the
                        // `Diode` arm of `assemble_into`.
                        if let Some(ai) = *a {
                            index.push(slot(ai, ai));
                            if let Some(ki) = *k {
                                index.push(slot(ai, ki));
                            }
                        }
                        if let Some(ki) = *k {
                            index.push(slot(ki, ki));
                            if let Some(ai) = *a {
                                index.push(slot(ki, ai));
                            }
                        }
                    }
                    PlanOp::Bjt { site } => {
                        let BjtSite { c, b, e, .. } = &self.bjt_sites[*site];
                        // Exactly the conditional add order of the
                        // `Bjt` arm of `assemble_into` (row-major over
                        // collector, base, emitter).
                        if let Some(ci) = *c {
                            index.push(slot(ci, ci));
                            if let Some(bi) = *b {
                                index.push(slot(ci, bi));
                            }
                            if let Some(ei) = *e {
                                index.push(slot(ci, ei));
                            }
                        }
                        if let Some(bi) = *b {
                            if let Some(ci) = *c {
                                index.push(slot(bi, ci));
                            }
                            index.push(slot(bi, bi));
                            if let Some(ei) = *e {
                                index.push(slot(bi, ei));
                            }
                        }
                        if let Some(ei) = *e {
                            if let Some(ci) = *c {
                                index.push(slot(ei, ci));
                            }
                            if let Some(bi) = *b {
                                index.push(slot(ei, bi));
                            }
                            index.push(slot(ei, ei));
                        }
                    }
                    PlanOp::Current { .. } | PlanOp::SourceRow { .. } => {}
                }
            }
            index
        })
    }

    /// [`assemble_into`](StampPlan::assemble_into), specialized for a
    /// sparse matrix cloned from this plan's template: every matrix add
    /// lands through the precomputed slot-index list instead of a
    /// binary search per add. Performs the identical adds in the
    /// identical order — the result is bit-for-bit the generic path's.
    /// Falls back to the generic path for any other pattern.
    pub(crate) fn assemble_into_sparse(
        &self,
        x: &[f64],
        mat: &mut SparseMatrix,
        rhs: &mut [f64],
        gmin: f64,
        source_vals: &[f64],
    ) {
        let scope = if Arc::ptr_eq(mat.pattern(), self.sparse_template(PatternScope::Full).pattern())
        {
            PatternScope::Full
        } else if Arc::ptr_eq(mat.pattern(), self.sparse_template(PatternScope::Static).pattern()) {
            PatternScope::Static
        } else {
            self.assemble_into(x, mat, rhs, gmin, source_vals);
            return;
        };
        let index = self.sparse_index(scope);
        mat.clear();
        rhs.fill(0.0);
        let values = mat.values_mut();
        let mut cursor = 0usize;
        let mut add = |values: &mut [f64], v: f64| {
            values[index[cursor] as usize] += v;
            cursor += 1;
        };
        for _ in 0..self.n_nodes {
            add(values, gmin);
        }
        for op in &self.ops {
            match op {
                PlanOp::Mat { value, .. } => add(values, *value),
                PlanOp::Current { from, to, wave } => {
                    let i = source_vals[*wave];
                    if let Some(a) = from {
                        rhs[*a] -= i;
                    }
                    if let Some(b) = to {
                        rhs[*b] += i;
                    }
                }
                PlanOp::SourceRow { row, wave } => {
                    rhs[*row] = source_vals[*wave];
                }
                PlanOp::Mos { site } => {
                    let MosSite { d, g, s, b, polarity, params } = &self.mos_sites[*site];
                    let vd = slot_voltage(x, *d);
                    let vg = slot_voltage(x, *g);
                    let vs = slot_voltage(x, *s);
                    let vb = slot_voltage(x, *b);
                    let op = mos::evaluate(params, *polarity, vd, vg, vs, vb);
                    let gsum = op.gm + op.gds + op.gmb;
                    let i_rhs =
                        op.ids - op.gm * (vg - vs) - op.gds * (vd - vs) - op.gmb * (vb - vs);
                    if let Some(di) = *d {
                        if g.is_some() {
                            add(values, op.gm);
                        }
                        add(values, op.gds);
                        if b.is_some() {
                            add(values, op.gmb);
                        }
                        if s.is_some() {
                            add(values, -gsum);
                        }
                        rhs[di] -= i_rhs;
                    }
                    if let Some(si) = *s {
                        if g.is_some() {
                            add(values, -op.gm);
                        }
                        if d.is_some() {
                            add(values, -op.gds);
                        }
                        if b.is_some() {
                            add(values, -op.gmb);
                        }
                        add(values, gsum);
                        rhs[si] += i_rhs;
                    }
                }
                PlanOp::Diode { site } => {
                    let DiodeSite { a, k, params } = &self.diode_sites[*site];
                    let va = slot_voltage(x, *a);
                    let vk = slot_voltage(x, *k);
                    let op = diode::evaluate(params, va, vk);
                    let i_rhs = op.id - op.gd * (va - vk);
                    if let Some(ai) = *a {
                        add(values, op.gd);
                        if k.is_some() {
                            add(values, -op.gd);
                        }
                        rhs[ai] -= i_rhs;
                    }
                    if let Some(ki) = *k {
                        add(values, op.gd);
                        if a.is_some() {
                            add(values, -op.gd);
                        }
                        rhs[ki] += i_rhs;
                    }
                }
                PlanOp::Bjt { site } => {
                    let BjtSite { c, b, e, polarity, params } = &self.bjt_sites[*site];
                    let vc = slot_voltage(x, *c);
                    let vb = slot_voltage(x, *b);
                    let ve = slot_voltage(x, *e);
                    let op = bjt::evaluate(params, *polarity, vc, vb, ve);
                    let gcc = -op.dic_dvbc;
                    let gcb = op.dic_dvbe + op.dic_dvbc;
                    let gce = -op.dic_dvbe;
                    let gbc = -op.dib_dvbc;
                    let gbb = op.dib_dvbe + op.dib_dvbc;
                    let gbe = -op.dib_dvbe;
                    let ic_rhs = op.ic - (gcc * vc + gcb * vb + gce * ve);
                    let ib_rhs = op.ib - (gbc * vc + gbb * vb + gbe * ve);
                    if let Some(ci) = *c {
                        add(values, gcc);
                        if b.is_some() {
                            add(values, gcb);
                        }
                        if e.is_some() {
                            add(values, gce);
                        }
                        rhs[ci] -= ic_rhs;
                    }
                    if let Some(bi) = *b {
                        if c.is_some() {
                            add(values, gbc);
                        }
                        add(values, gbb);
                        if e.is_some() {
                            add(values, gbe);
                        }
                        rhs[bi] -= ib_rhs;
                    }
                    if let Some(ei) = *e {
                        if c.is_some() {
                            add(values, -(gcc + gbc));
                        }
                        if b.is_some() {
                            add(values, -(gcb + gbb));
                        }
                        add(values, -(gce + gbe));
                        rhs[ei] += ic_rhs + ib_rhs;
                    }
                }
            }
        }
        debug_assert_eq!(cursor, index.len(), "slot-index cursor out of sync with replay");
    }

    /// Which unknowns are nonlinear-device terminals and therefore
    /// subject to per-iteration update damping.
    pub(crate) fn damped(&self) -> &[bool] {
        &self.damped
    }

    /// Number of MNA unknowns the plan assembles.
    pub(crate) fn dim(&self) -> usize {
        self.n
    }

    /// Evaluates every stimulus waveform through `f` into `vals` (a
    /// reused buffer). Source values are constant across the Newton
    /// iterations of one solve, so callers evaluate once per
    /// solve/timestep and replay the cached values every iteration.
    pub(crate) fn source_values<F: Fn(&Waveform) -> f64>(&self, vals: &mut Vec<f64>, f: F) {
        vals.clear();
        vals.extend(self.waves.iter().map(f));
    }

    /// Re-derives only the right-hand side of the static assembly:
    /// exactly the `rhs` writes [`assemble_into`](StampPlan::assemble_into)
    /// would perform, without touching any matrix. Valid only for
    /// linear plans (MOSFET linearization couples `rhs` to the
    /// candidate solution); the Newton loops use it to refresh stimulus
    /// terms while skipping a refactorization of a provably unchanged
    /// Jacobian.
    pub(crate) fn assemble_rhs_only(&self, rhs: &mut [f64], source_vals: &[f64]) {
        debug_assert!(self.linear, "rhs-only assembly requires a linear plan");
        rhs.fill(0.0);
        for op in &self.rhs_ops {
            match op {
                PlanOp::Current { from, to, wave } => {
                    let i = source_vals[*wave];
                    if let Some(a) = from {
                        rhs[*a] -= i;
                    }
                    if let Some(b) = to {
                        rhs[*b] += i;
                    }
                }
                PlanOp::SourceRow { row, wave } => {
                    rhs[*row] = source_vals[*wave];
                }
                PlanOp::Mat { .. }
                | PlanOp::Mos { .. }
                | PlanOp::Diode { .. }
                | PlanOp::Bjt { .. } => {}
            }
        }
    }

    /// Replays the schedule: assembles the static (non-capacitive) MNA
    /// system into `mat`/`rhs`, linearizing MOSFETs around the candidate
    /// solution `x`.
    ///
    /// * `source_vals` holds the present value of every stimulus
    ///   waveform, as produced by
    ///   [`source_values`](StampPlan::source_values) — DC analysis uses
    ///   `|w| scale * w.dc_value()`, transient `|w| w.eval(t)`.
    /// * `gmin` is stamped from every non-ground node to ground.
    ///
    /// Capacitors are *not* stamped here: DC treats them as open, and
    /// the transient engine stamps their companion models itself (it
    /// also owns the MOS intrinsic capacitances).
    pub(crate) fn assemble_into<M: StampTarget + ?Sized>(
        &self,
        x: &[f64],
        mat: &mut M,
        rhs: &mut [f64],
        gmin: f64,
        source_vals: &[f64],
    ) {
        mat.clear();
        rhs.fill(0.0);
        for i in 0..self.n_nodes {
            mat.add(i, i, gmin);
        }
        for op in &self.ops {
            match op {
                PlanOp::Mat { row, col, value } => mat.add(*row, *col, *value),
                PlanOp::Current { from, to, wave } => {
                    let i = source_vals[*wave];
                    if let Some(a) = from {
                        rhs[*a] -= i;
                    }
                    if let Some(b) = to {
                        rhs[*b] += i;
                    }
                }
                PlanOp::SourceRow { row, wave } => {
                    rhs[*row] = source_vals[*wave];
                }
                PlanOp::Mos { site } => {
                    let MosSite { d, g, s, b, polarity, params } = &self.mos_sites[*site];
                    let vd = slot_voltage(x, *d);
                    let vg = slot_voltage(x, *g);
                    let vs = slot_voltage(x, *s);
                    let vb = slot_voltage(x, *b);
                    let op = mos::evaluate(params, *polarity, vd, vg, vs, vb);
                    // Linearization: id ≈ gm·vg + gds·vd + gmb·vb
                    //                    − (gm+gds+gmb)·vs + i_rhs
                    let gsum = op.gm + op.gds + op.gmb;
                    let i_rhs =
                        op.ids - op.gm * (vg - vs) - op.gds * (vd - vs) - op.gmb * (vb - vs);
                    if let Some(di) = *d {
                        if let Some(gi) = *g {
                            mat.add(di, gi, op.gm);
                        }
                        mat.add(di, di, op.gds);
                        if let Some(bi) = *b {
                            mat.add(di, bi, op.gmb);
                        }
                        if let Some(si) = *s {
                            mat.add(di, si, -gsum);
                        }
                    }
                    if let Some(si) = *s {
                        if let Some(gi) = *g {
                            mat.add(si, gi, -op.gm);
                        }
                        if let Some(di) = *d {
                            mat.add(si, di, -op.gds);
                        }
                        if let Some(bi) = *b {
                            mat.add(si, bi, -op.gmb);
                        }
                        mat.add(si, si, gsum);
                    }
                    // Drain-to-source RHS current (stamp_current inlined
                    // on resolved slots).
                    if let Some(di) = *d {
                        rhs[di] -= i_rhs;
                    }
                    if let Some(si) = *s {
                        rhs[si] += i_rhs;
                    }
                }
                PlanOp::Diode { site } => {
                    let DiodeSite { a, k, params } = &self.diode_sites[*site];
                    let va = slot_voltage(x, *a);
                    let vk = slot_voltage(x, *k);
                    let op = diode::evaluate(params, va, vk);
                    // Linearization: id ≈ gd·(va − vk) + i_rhs.
                    let i_rhs = op.id - op.gd * (va - vk);
                    if let Some(ai) = *a {
                        mat.add(ai, ai, op.gd);
                        if let Some(ki) = *k {
                            mat.add(ai, ki, -op.gd);
                        }
                        rhs[ai] -= i_rhs;
                    }
                    if let Some(ki) = *k {
                        mat.add(ki, ki, op.gd);
                        if let Some(ai) = *a {
                            mat.add(ki, ai, -op.gd);
                        }
                        rhs[ki] += i_rhs;
                    }
                }
                PlanOp::Bjt { site } => {
                    let BjtSite { c, b, e, polarity, params } = &self.bjt_sites[*site];
                    let vc = slot_voltage(x, *c);
                    let vb = slot_voltage(x, *b);
                    let ve = slot_voltage(x, *e);
                    let op = bjt::evaluate(params, *polarity, vc, vb, ve);
                    // Terminal conductances from the junction partials
                    // (vbe = vb − ve, vbc = vb − vc); the emitter row is
                    // the negated sum of the collector and base rows so
                    // KCL holds exactly.
                    let gcc = -op.dic_dvbc;
                    let gcb = op.dic_dvbe + op.dic_dvbc;
                    let gce = -op.dic_dvbe;
                    let gbc = -op.dib_dvbc;
                    let gbb = op.dib_dvbe + op.dib_dvbc;
                    let gbe = -op.dib_dvbe;
                    let ic_rhs = op.ic - (gcc * vc + gcb * vb + gce * ve);
                    let ib_rhs = op.ib - (gbc * vc + gbb * vb + gbe * ve);
                    if let Some(ci) = *c {
                        mat.add(ci, ci, gcc);
                        if let Some(bi) = *b {
                            mat.add(ci, bi, gcb);
                        }
                        if let Some(ei) = *e {
                            mat.add(ci, ei, gce);
                        }
                        rhs[ci] -= ic_rhs;
                    }
                    if let Some(bi) = *b {
                        if let Some(ci) = *c {
                            mat.add(bi, ci, gbc);
                        }
                        mat.add(bi, bi, gbb);
                        if let Some(ei) = *e {
                            mat.add(bi, ei, gbe);
                        }
                        rhs[bi] -= ib_rhs;
                    }
                    if let Some(ei) = *e {
                        if let Some(ci) = *c {
                            mat.add(ei, ci, -(gcc + gbc));
                        }
                        if let Some(bi) = *b {
                            mat.add(ei, bi, -(gcb + gbb));
                        }
                        mat.add(ei, ei, -(gce + gbe));
                        rhs[ei] += ic_rhs + ib_rhs;
                    }
                }
            }
        }
    }
}

/// Assembles the static (non-capacitive) part of the MNA system,
/// linearizing nonlinear devices around the candidate solution `x`.
///
/// One-shot convenience over [`StampPlan`]: builds the plan and replays
/// it once. Repeated assemblies of the same circuit (every Newton loop)
/// should build the plan once and call
/// [`StampPlan::assemble_into`] directly.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn assemble_static<F: Fn(&Waveform) -> f64>(
    circuit: &Circuit,
    x: &[f64],
    mat: &mut Matrix,
    rhs: &mut [f64],
    gmin: f64,
    source_value: F,
) {
    let plan = StampPlan::build(circuit);
    let mut vals = Vec::new();
    plan.source_values(&mut vals, source_value);
    plan.assemble_into(x, mat, rhs, gmin, &vals);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::{MosParams, MosPolarity};
    use crate::Circuit;

    #[test]
    fn idx_maps_ground_to_none() {
        assert_eq!(idx(NodeId::GROUND), None);
        assert_eq!(idx(NodeId(3)), Some(2));
    }

    #[test]
    fn conductance_stamp_is_symmetric() {
        let mut m = Matrix::zeros(2, 2);
        stamp_conductance(&mut m, NodeId(1), NodeId(2), 0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], -0.5);
        assert_eq!(m[(1, 0)], -0.5);
    }

    #[test]
    fn conductance_to_ground_only_touches_diagonal() {
        let mut m = Matrix::zeros(1, 1);
        stamp_conductance(&mut m, NodeId(1), NodeId::GROUND, 2.0);
        assert_eq!(m[(0, 0)], 2.0);
    }

    #[test]
    fn current_stamp_signs() {
        let mut rhs = vec![0.0, 0.0];
        stamp_current(&mut rhs, NodeId(1), NodeId(2), 1e-3);
        assert_eq!(rhs, vec![-1e-3, 1e-3]);
        stamp_current(&mut rhs, NodeId::GROUND, NodeId(1), 1e-3);
        assert_eq!(rhs, vec![0.0, 1e-3]);
    }

    #[test]
    fn resistor_divider_assembly_matches_hand_stamp() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(10.0)).unwrap();
        c.add_resistor("R1", a, b, 1000.0).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1000.0).unwrap();
        let n = c.unknown_count();
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        assemble_static(&c, &vec![0.0; n], &mut mat, &mut rhs, 0.0, |w| w.dc_value());
        // Node a row: g(R1) + vsource branch column.
        assert!((mat[(0, 0)] - 1e-3).abs() < 1e-15);
        assert!((mat[(0, 1)] + 1e-3).abs() < 1e-15);
        assert_eq!(mat[(0, 2)], 1.0);
        // Node b row: both resistors.
        assert!((mat[(1, 1)] - 2e-3).abs() < 1e-15);
        // Branch row: v(a) = 10.
        assert_eq!(mat[(2, 0)], 1.0);
        assert_eq!(rhs[2], 10.0);
    }

    /// Replays `plan` against `x` and returns the dense system.
    fn replay(plan: &StampPlan, x: &[f64], gmin: f64) -> (Matrix, Vec<f64>) {
        let n = plan.dim();
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        let mut vals = Vec::new();
        plan.source_values(&mut vals, |w| w.dc_value());
        plan.assemble_into(x, &mut mat, &mut rhs, gmin, &vals);
        (mat, rhs)
    }

    fn assert_plans_replay_identically(a: &StampPlan, b: &StampPlan) {
        assert_eq!(a.dim(), b.dim());
        let n = a.dim();
        let x: Vec<f64> = (0..n).map(|i| 0.17 * i as f64 - 0.6).collect();
        let (ma, ra) = replay(a, &x, 1e-12);
        let (mb, rb) = replay(b, &x, 1e-12);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(ma[(r, c)].to_bits(), mb[(r, c)].to_bits(), "slot ({r},{c})");
            }
            assert_eq!(ra[r].to_bits(), rb[r].to_bits(), "rhs {r}");
        }
        assert_eq!(a.damped(), b.damped());
        assert_eq!(a.is_linear(), b.is_linear());
        // Same sparsity pattern, independently constructed.
        assert_eq!(
            a.sparse_template(PatternScope::Full).pattern(),
            b.sparse_template(PatternScope::Full).pattern(),
            "patterns diverged"
        );
        assert_eq!(
            a.sparse_template(PatternScope::Static).pattern(),
            b.sparse_template(PatternScope::Static).pattern(),
            "static patterns diverged"
        );
    }

    fn patch_fixture() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_isource("IB", Circuit::GROUND, g, Waveform::dc(1e-5)).unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_resistor("RG", g, Circuit::GROUND, 200e3).unwrap();
        c.add_capacitor("CL", d, Circuit::GROUND, 1e-12).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        c
    }

    /// A wave patch must replay exactly like a recompile of the
    /// stimulus-substituted circuit, and keep the cached sparse
    /// template (pointer-equal pattern).
    #[test]
    fn wave_patch_matches_recompile_and_keeps_template() {
        let c = patch_fixture();
        let base = StampPlan::build(&c);
        let base_pattern =
            std::sync::Arc::clone(base.sparse_template(PatternScope::Full).pattern());
        let patched = base.with_wave(0, Waveform::dc(3.3));

        let mut direct = c.clone();
        direct.set_stimulus("VDD", Waveform::dc(3.3)).unwrap();
        let rebuilt = StampPlan::build(&direct);

        assert_plans_replay_identically(&patched, &rebuilt);
        assert!(
            std::sync::Arc::ptr_eq(
                patched.sparse_template(PatternScope::Full).pattern(),
                &base_pattern
            ),
            "a wave patch must not reset the sparse template"
        );
    }

    /// A device-add patch (the bridge-fault delta-stamp path) must
    /// replay exactly like a recompile of the extended circuit — for a
    /// plain two-node resistor and for a branch-adding voltage source.
    #[test]
    fn device_patch_matches_recompile() {
        let c = patch_fixture();
        let base = StampPlan::build(&c);

        // Bridge resistor between two existing nodes.
        let mut bridged = c.clone();
        let (g, d) = (c.find_node("g").unwrap(), c.find_node("d").unwrap());
        bridged.add_resistor("F_bridge", g, d, 10e3).unwrap();
        let patched = base.patched_with_device(bridged.device("F_bridge").unwrap());
        assert_plans_replay_identically(&patched, &StampPlan::build(&bridged));

        // A branch-current device grows the system by one unknown.
        let mut extended = bridged.clone();
        extended.add_vsource("VX", d, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        let patched2 = patched.patched_with_device(extended.device("VX").unwrap());
        assert_eq!(patched2.dim(), patched.dim() + 1);
        assert_plans_replay_identically(&patched2, &StampPlan::build(&extended));

        // A nonlinear device patch (junction-pinhole shorts ride this
        // for diode/BJT circuits) must register its damped slots too.
        let mut dioded = extended.clone();
        dioded.add_diode("DX", d, g, crate::diode::DiodeParams::signal_default()).unwrap();
        let patched3 = patched2.patched_with_device(dioded.device("DX").unwrap());
        assert_plans_replay_identically(&patched3, &StampPlan::build(&dioded));

        // A patched-in current-controlled source resolves its sensing
        // column from the carried-over branch-row table.
        let mut sensed = dioded.clone();
        sensed.add_cccs("FX", g, Circuit::GROUND, "VX", 0.5).unwrap();
        let patched4 = patched3.patched_with_device(sensed.device("FX").unwrap());
        assert_plans_replay_identically(&patched4, &StampPlan::build(&sensed));
    }

    /// Regression (device-zoo PR): the damped mask used to be populated
    /// from MOSFET terminal slots only, so a diode- or BJT-only circuit
    /// ran every ladder rung unclamped. Each nonlinear site now
    /// declares its limited unknowns.
    #[test]
    fn diode_and_bjt_circuits_register_damped_junction_slots() {
        let mut c = Circuit::new();
        let inn = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inn, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_resistor("RS", inn, out, 1e3).unwrap();
        c.add_diode("D1", out, Circuit::GROUND, crate::diode::DiodeParams::signal_default())
            .unwrap();
        let plan = StampPlan::build(&c);
        assert!(!plan.is_linear());
        // v(in) is purely linear, v(out) is a junction terminal, and the
        // source branch current is never damped.
        assert_eq!(plan.damped(), &[false, true, false]);

        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let e = c.node("e");
        c.add_vsource("VCC", vcc, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_resistor("RB", vcc, b, 100e3).unwrap();
        c.add_resistor("RE", e, Circuit::GROUND, 1e3).unwrap();
        c.add_bjt("Q1", vcc, b, e, BjtPolarity::Npn, crate::bjt::BjtParams::signal_default())
            .unwrap();
        let plan = StampPlan::build(&c);
        assert!(!plan.is_linear());
        // All three BJT terminals (vcc, b, e) are limited unknowns.
        assert_eq!(plan.damped(), &[true, true, true, false]);
    }

    /// The slot-indexed sparse assembly must reproduce the generic
    /// (binary-searched) sparse assembly bit for bit, on a circuit with
    /// every device kind.
    #[test]
    fn indexed_sparse_assembly_matches_generic_bitwise() {
        let c = patch_fixture();
        let plan = StampPlan::build(&c);
        let n = plan.dim();
        let x: Vec<f64> = (0..n).map(|i| 0.23 * i as f64 - 0.7).collect();
        let mut vals = Vec::new();
        plan.source_values(&mut vals, |w| w.dc_value());

        let mut generic = plan.sparse_template(PatternScope::Full).clone();
        let mut rhs_g = vec![0.0; n];
        plan.assemble_into(&x, &mut generic, &mut rhs_g, 1e-12, &vals);

        let mut fast = plan.sparse_template(PatternScope::Full).clone();
        let mut rhs_f = vec![f64::NAN; n];
        plan.assemble_into_sparse(&x, &mut fast, &mut rhs_f, 1e-12, &vals);

        for ((r, cc, vg), (_, _, vf)) in generic.entries().zip(fast.entries()) {
            assert_eq!(vg.to_bits(), vf.to_bits(), "slot ({r},{cc})");
        }
        for (a, b) in rhs_g.iter().zip(&rhs_f) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `assemble_rhs_only` must reproduce the rhs of a full assembly
    /// bit for bit on a linear plan.
    #[test]
    fn rhs_only_assembly_matches_full() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(2.5)).unwrap();
        c.add_isource("I1", Circuit::GROUND, b, Waveform::dc(1e-3)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 2e3).unwrap();
        let plan = StampPlan::build(&c);
        assert!(plan.is_linear());
        let (_, rhs_full) = replay(&plan, &vec![0.0; plan.dim()], 1e-12);
        let mut vals = Vec::new();
        plan.source_values(&mut vals, |w| w.dc_value());
        let mut rhs = vec![f64::NAN; plan.dim()];
        plan.assemble_rhs_only(&mut rhs, &vals);
        for (x, y) in rhs.iter().zip(&rhs_full) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The compiled plan must replay to the bit-identical system a
    /// direct device walk produces, for a circuit exercising every
    /// device kind (including a MOSFET linearized off a nonzero
    /// candidate solution).
    #[test]
    fn plan_replay_matches_direct_assembly_bitwise() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        let o = c.node("o");
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_isource("IB", Circuit::GROUND, g, Waveform::dc(1e-5)).unwrap();
        c.add_resistor("RG", g, Circuit::GROUND, 200e3).unwrap();
        c.add_capacitor("CL", d, Circuit::GROUND, 1e-12).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        c.add_vcvs("E1", o, Circuit::GROUND, d, Circuit::GROUND, -3.0).unwrap();
        c.add_inductor("L1", o, g, 1e-6).unwrap();
        let ak = c.node("ak");
        c.add_diode("D1", d, ak, crate::diode::DiodeParams::signal_default()).unwrap();
        c.add_resistor("RK", ak, Circuit::GROUND, 1e3).unwrap();
        c.add_bjt("Q1", vdd, g, o, BjtPolarity::Npn, crate::bjt::BjtParams::signal_default())
            .unwrap();
        c.add_vccs("G1", d, Circuit::GROUND, g, Circuit::GROUND, 1e-3).unwrap();
        c.add_cccs("F1", o, Circuit::GROUND, "VDD", 2.0).unwrap();
        c.add_ccvs("H1", ak, g, "L1", 50.0).unwrap();

        let n = c.unknown_count();
        let x: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 0.4).collect();
        let gmin = 1e-12;

        // Direct device-by-device walk (the pre-plan reference).
        let mut mat_ref = Matrix::zeros(n, n);
        let mut rhs_ref = vec![0.0; n];
        mat_ref.clear();
        rhs_ref.fill(0.0);
        for i in 0..c.node_count() - 1 {
            mat_ref.add(i, i, gmin);
        }
        let mut branch = c.node_count() - 1;
        let mut branch_rows: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for dev in c.devices() {
            if dev.has_branch_current() {
                branch_rows.insert(dev.name().to_string(), branch);
            }
            match dev.kind() {
                DeviceKind::Resistor { a, b, ohms } => {
                    stamp_conductance(&mut mat_ref, *a, *b, 1.0 / ohms);
                }
                DeviceKind::Capacitor { .. } => {}
                DeviceKind::Inductor { a, b, .. } => {
                    let br = branch;
                    branch += 1;
                    if let Some(i) = idx(*a) {
                        mat_ref.add(i, br, 1.0);
                        mat_ref.add(br, i, 1.0);
                    }
                    if let Some(j) = idx(*b) {
                        mat_ref.add(j, br, -1.0);
                        mat_ref.add(br, j, -1.0);
                    }
                }
                DeviceKind::Isource { from, to, wave } => {
                    stamp_current(&mut rhs_ref, *from, *to, wave.dc_value());
                }
                DeviceKind::Vsource { pos, neg, wave } => {
                    let br = branch;
                    branch += 1;
                    if let Some(p) = idx(*pos) {
                        mat_ref.add(p, br, 1.0);
                        mat_ref.add(br, p, 1.0);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat_ref.add(ng, br, -1.0);
                        mat_ref.add(br, ng, -1.0);
                    }
                    rhs_ref[br] = wave.dc_value();
                }
                DeviceKind::Vcvs { pos, neg, cp, cn, gain } => {
                    let br = branch;
                    branch += 1;
                    if let Some(p) = idx(*pos) {
                        mat_ref.add(p, br, 1.0);
                        mat_ref.add(br, p, 1.0);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat_ref.add(ng, br, -1.0);
                        mat_ref.add(br, ng, -1.0);
                    }
                    if let Some(cc) = idx(*cp) {
                        mat_ref.add(br, cc, -gain);
                    }
                    if let Some(cc) = idx(*cn) {
                        mat_ref.add(br, cc, *gain);
                    }
                }
                DeviceKind::Mosfet { d, g, s, b, polarity, params } => {
                    let vd = voltage_of(&x, *d);
                    let vg = voltage_of(&x, *g);
                    let vs = voltage_of(&x, *s);
                    let vb = voltage_of(&x, *b);
                    let op = mos::evaluate(params, *polarity, vd, vg, vs, vb);
                    let gsum = op.gm + op.gds + op.gmb;
                    let i_rhs =
                        op.ids - op.gm * (vg - vs) - op.gds * (vd - vs) - op.gmb * (vb - vs);
                    if let Some(di) = idx(*d) {
                        if let Some(gi) = idx(*g) {
                            mat_ref.add(di, gi, op.gm);
                        }
                        mat_ref.add(di, di, op.gds);
                        if let Some(bi) = idx(*b) {
                            mat_ref.add(di, bi, op.gmb);
                        }
                        if let Some(si) = idx(*s) {
                            mat_ref.add(di, si, -gsum);
                        }
                    }
                    if let Some(si) = idx(*s) {
                        if let Some(gi) = idx(*g) {
                            mat_ref.add(si, gi, -op.gm);
                        }
                        if let Some(di) = idx(*d) {
                            mat_ref.add(si, di, -op.gds);
                        }
                        if let Some(bi) = idx(*b) {
                            mat_ref.add(si, bi, -op.gmb);
                        }
                        mat_ref.add(si, si, gsum);
                    }
                    stamp_current(&mut rhs_ref, *d, *s, i_rhs);
                }
                DeviceKind::Diode { a, k, params } => {
                    let va = voltage_of(&x, *a);
                    let vk = voltage_of(&x, *k);
                    let op = diode::evaluate(params, va, vk);
                    let i_rhs = op.id - op.gd * (va - vk);
                    stamp_conductance(&mut mat_ref, *a, *k, op.gd);
                    stamp_current(&mut rhs_ref, *a, *k, i_rhs);
                }
                DeviceKind::Bjt { c: tc, b, e, polarity, params } => {
                    let vc = voltage_of(&x, *tc);
                    let vb = voltage_of(&x, *b);
                    let ve = voltage_of(&x, *e);
                    let op = bjt::evaluate(params, *polarity, vc, vb, ve);
                    let gcc = -op.dic_dvbc;
                    let gcb = op.dic_dvbe + op.dic_dvbc;
                    let gce = -op.dic_dvbe;
                    let gbc = -op.dib_dvbc;
                    let gbb = op.dib_dvbe + op.dib_dvbc;
                    let gbe = -op.dib_dvbe;
                    let ic_rhs = op.ic - (gcc * vc + gcb * vb + gce * ve);
                    let ib_rhs = op.ib - (gbc * vc + gbb * vb + gbe * ve);
                    if let Some(ci) = idx(*tc) {
                        mat_ref.add(ci, ci, gcc);
                        if let Some(bi) = idx(*b) {
                            mat_ref.add(ci, bi, gcb);
                        }
                        if let Some(ei) = idx(*e) {
                            mat_ref.add(ci, ei, gce);
                        }
                        rhs_ref[ci] -= ic_rhs;
                    }
                    if let Some(bi) = idx(*b) {
                        if let Some(ci) = idx(*tc) {
                            mat_ref.add(bi, ci, gbc);
                        }
                        mat_ref.add(bi, bi, gbb);
                        if let Some(ei) = idx(*e) {
                            mat_ref.add(bi, ei, gbe);
                        }
                        rhs_ref[bi] -= ib_rhs;
                    }
                    if let Some(ei) = idx(*e) {
                        if let Some(ci) = idx(*tc) {
                            mat_ref.add(ei, ci, -(gcc + gbc));
                        }
                        if let Some(bi) = idx(*b) {
                            mat_ref.add(ei, bi, -(gcb + gbb));
                        }
                        mat_ref.add(ei, ei, -(gce + gbe));
                        rhs_ref[ei] += ic_rhs + ib_rhs;
                    }
                }
                DeviceKind::Vccs { pos, neg, cp, cn, gm } => {
                    if let Some(p) = idx(*pos) {
                        if let Some(cc) = idx(*cp) {
                            mat_ref.add(p, cc, *gm);
                        }
                        if let Some(cc) = idx(*cn) {
                            mat_ref.add(p, cc, -*gm);
                        }
                    }
                    if let Some(ng) = idx(*neg) {
                        if let Some(cc) = idx(*cp) {
                            mat_ref.add(ng, cc, -*gm);
                        }
                        if let Some(cc) = idx(*cn) {
                            mat_ref.add(ng, cc, *gm);
                        }
                    }
                }
                DeviceKind::Cccs { pos, neg, ctrl, gain } => {
                    let col = branch_rows[ctrl.as_ref()];
                    if let Some(p) = idx(*pos) {
                        mat_ref.add(p, col, *gain);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat_ref.add(ng, col, -*gain);
                    }
                }
                DeviceKind::Ccvs { pos, neg, ctrl, ohms } => {
                    let col = branch_rows[ctrl.as_ref()];
                    let br = branch;
                    branch += 1;
                    if let Some(p) = idx(*pos) {
                        mat_ref.add(p, br, 1.0);
                        mat_ref.add(br, p, 1.0);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat_ref.add(ng, br, -1.0);
                        mat_ref.add(br, ng, -1.0);
                    }
                    mat_ref.add(br, col, -*ohms);
                }
            }
        }

        let plan = StampPlan::build(&c);
        assert_eq!(plan.dim(), n);
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        let mut vals = Vec::new();
        plan.source_values(&mut vals, |w| w.dc_value());
        // Replay twice into dirty buffers: the plan must clear them.
        for _ in 0..2 {
            plan.assemble_into(&x, &mut mat, &mut rhs, gmin, &vals);
        }

        for r in 0..n {
            for cidx in 0..n {
                assert_eq!(
                    mat[(r, cidx)].to_bits(),
                    mat_ref[(r, cidx)].to_bits(),
                    "matrix mismatch at ({r},{cidx})"
                );
            }
            assert_eq!(rhs[r].to_bits(), rhs_ref[r].to_bits(), "rhs mismatch at {r}");
        }
    }
}
