//! MNA matrix assembly (device "stamps").
//!
//! Unknown ordering: the `N − 1` non-ground node voltages first (node id
//! `n` lives at index `n − 1`), followed by one branch current per
//! voltage-defined device (voltage sources and VCVS), in device insertion
//! order. KCL rows are written as "sum of currents *leaving* the node
//! equals zero" with constant terms moved to the right-hand side.

use castg_numeric::Matrix;

use crate::circuit::Circuit;
use crate::device::DeviceKind;
use crate::mos;
use crate::node::NodeId;
use crate::stimulus::Waveform;

/// Maps a node to its matrix index (`None` for ground).
#[inline]
pub(crate) fn idx(n: NodeId) -> Option<usize> {
    if n.is_ground() {
        None
    } else {
        Some(n.index() - 1)
    }
}

/// Voltage of a node under the candidate solution `x` (ground is 0).
#[inline]
pub(crate) fn voltage_of(x: &[f64], n: NodeId) -> f64 {
    match idx(n) {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Adds `g` as a two-terminal conductance stamp between `a` and `b`.
pub(crate) fn stamp_conductance(mat: &mut Matrix, a: NodeId, b: NodeId, g: f64) {
    if let Some(i) = idx(a) {
        mat.add(i, i, g);
        if let Some(j) = idx(b) {
            mat.add(i, j, -g);
        }
    }
    if let Some(j) = idx(b) {
        mat.add(j, j, g);
        if let Some(i) = idx(a) {
            mat.add(j, i, -g);
        }
    }
}

/// Adds a constant current `i` flowing out of node `from` into node `to`
/// (through the element being stamped).
pub(crate) fn stamp_current(rhs: &mut [f64], from: NodeId, to: NodeId, i: f64) {
    if let Some(a) = idx(from) {
        rhs[a] -= i;
    }
    if let Some(b) = idx(to) {
        rhs[b] += i;
    }
}

/// Assembles the static (non-capacitive) part of the MNA system,
/// linearizing nonlinear devices around the candidate solution `x`.
///
/// * `source_value` maps a stimulus waveform to its present value — DC
///   analysis passes `|w| scale * w.dc_value()`, transient passes
///   `|w| w.eval(t)`.
/// * `gmin` is stamped from every non-ground node to ground.
///
/// Capacitors are *not* stamped here: DC treats them as open, and the
/// transient engine stamps their companion models itself (it also owns
/// the MOS intrinsic capacitances).
pub(crate) fn assemble_static<F: Fn(&Waveform) -> f64>(
    circuit: &Circuit,
    x: &[f64],
    mat: &mut Matrix,
    rhs: &mut [f64],
    gmin: f64,
    source_value: F,
) {
    let n_nodes = circuit.node_count() - 1;
    mat.clear();
    rhs.fill(0.0);

    for i in 0..n_nodes {
        mat.add(i, i, gmin);
    }

    let mut branch = n_nodes; // next branch-current row/column
    for dev in circuit.devices() {
        match dev.kind() {
            DeviceKind::Resistor { a, b, ohms } => {
                stamp_conductance(mat, *a, *b, 1.0 / ohms);
            }
            DeviceKind::Capacitor { .. } => {
                // Open in DC; transient stamps companions separately.
            }
            DeviceKind::Isource { from, to, wave } => {
                stamp_current(rhs, *from, *to, source_value(wave));
            }
            DeviceKind::Vsource { pos, neg, wave } => {
                let br = branch;
                branch += 1;
                if let Some(p) = idx(*pos) {
                    mat.add(p, br, 1.0);
                    mat.add(br, p, 1.0);
                }
                if let Some(n) = idx(*neg) {
                    mat.add(n, br, -1.0);
                    mat.add(br, n, -1.0);
                }
                rhs[br] = source_value(wave);
            }
            DeviceKind::Vcvs { pos, neg, cp, cn, gain } => {
                let br = branch;
                branch += 1;
                if let Some(p) = idx(*pos) {
                    mat.add(p, br, 1.0);
                    mat.add(br, p, 1.0);
                }
                if let Some(n) = idx(*neg) {
                    mat.add(n, br, -1.0);
                    mat.add(br, n, -1.0);
                }
                if let Some(c) = idx(*cp) {
                    mat.add(br, c, -gain);
                }
                if let Some(c) = idx(*cn) {
                    mat.add(br, c, *gain);
                }
            }
            DeviceKind::Mosfet { d, g, s, b, polarity, params } => {
                let vd = voltage_of(x, *d);
                let vg = voltage_of(x, *g);
                let vs = voltage_of(x, *s);
                let vb = voltage_of(x, *b);
                let op = mos::evaluate(params, *polarity, vd, vg, vs, vb);
                // Linearization: id ≈ gm·vg + gds·vd + gmb·vb
                //                    − (gm+gds+gmb)·vs + i_rhs
                let gsum = op.gm + op.gds + op.gmb;
                let i_rhs =
                    op.ids - op.gm * (vg - vs) - op.gds * (vd - vs) - op.gmb * (vb - vs);
                if let Some(di) = idx(*d) {
                    if let Some(gi) = idx(*g) {
                        mat.add(di, gi, op.gm);
                    }
                    mat.add(di, di, op.gds);
                    if let Some(bi) = idx(*b) {
                        mat.add(di, bi, op.gmb);
                    }
                    if let Some(si) = idx(*s) {
                        mat.add(di, si, -gsum);
                    }
                }
                if let Some(si) = idx(*s) {
                    if let Some(gi) = idx(*g) {
                        mat.add(si, gi, -op.gm);
                    }
                    if let Some(di) = idx(*d) {
                        mat.add(si, di, -op.gds);
                    }
                    if let Some(bi) = idx(*b) {
                        mat.add(si, bi, -op.gmb);
                    }
                    mat.add(si, si, gsum);
                }
                stamp_current(rhs, *d, *s, i_rhs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    #[test]
    fn idx_maps_ground_to_none() {
        assert_eq!(idx(NodeId::GROUND), None);
        assert_eq!(idx(NodeId(3)), Some(2));
    }

    #[test]
    fn conductance_stamp_is_symmetric() {
        let mut m = Matrix::zeros(2, 2);
        stamp_conductance(&mut m, NodeId(1), NodeId(2), 0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], -0.5);
        assert_eq!(m[(1, 0)], -0.5);
    }

    #[test]
    fn conductance_to_ground_only_touches_diagonal() {
        let mut m = Matrix::zeros(1, 1);
        stamp_conductance(&mut m, NodeId(1), NodeId::GROUND, 2.0);
        assert_eq!(m[(0, 0)], 2.0);
    }

    #[test]
    fn current_stamp_signs() {
        let mut rhs = vec![0.0, 0.0];
        stamp_current(&mut rhs, NodeId(1), NodeId(2), 1e-3);
        assert_eq!(rhs, vec![-1e-3, 1e-3]);
        stamp_current(&mut rhs, NodeId::GROUND, NodeId(1), 1e-3);
        assert_eq!(rhs, vec![0.0, 1e-3]);
    }

    #[test]
    fn resistor_divider_assembly_matches_hand_stamp() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(10.0)).unwrap();
        c.add_resistor("R1", a, b, 1000.0).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1000.0).unwrap();
        let n = c.unknown_count();
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        assemble_static(&c, &vec![0.0; n], &mut mat, &mut rhs, 0.0, |w| w.dc_value());
        // Node a row: g(R1) + vsource branch column.
        assert!((mat[(0, 0)] - 1e-3).abs() < 1e-15);
        assert!((mat[(0, 1)] + 1e-3).abs() < 1e-15);
        assert_eq!(mat[(0, 2)], 1.0);
        // Node b row: both resistors.
        assert!((mat[(1, 1)] - 2e-3).abs() < 1e-15);
        // Branch row: v(a) = 10.
        assert_eq!(mat[(2, 0)], 1.0);
        assert_eq!(rhs[2], 10.0);
    }
}
