//! MNA matrix assembly (device "stamps").
//!
//! Unknown ordering: the `N − 1` non-ground node voltages first (node id
//! `n` lives at index `n − 1`), followed by one branch current per
//! voltage-defined device (voltage sources and VCVS), in device insertion
//! order. KCL rows are written as "sum of currents *leaving* the node
//! equals zero" with constant terms moved to the right-hand side.
//!
//! Assembly is two-phase: [`StampPlan::build`] walks the device list
//! *once* per circuit, resolving every node to its matrix slot and
//! precomputing all constant stamp values; [`StampPlan::assemble_into`]
//! then replays the flat op list per Newton iteration with no device
//! dispatch, no node-index arithmetic and no allocation. The plan is
//! shared across Newton iterations, gmin/source stepping ladders,
//! transient timesteps, and AC operating-point linearization. The
//! replay applies ops in device order, so the floating-point
//! accumulation order (and therefore the result, bit for bit) matches a
//! direct device-by-device assembly.

use std::sync::OnceLock;

use castg_numeric::{Matrix, SparseMatrix, StampTarget};

use crate::circuit::Circuit;
use crate::device::DeviceKind;
use crate::mos::{self, MosParams, MosPolarity};
use crate::node::NodeId;
use crate::stimulus::Waveform;

/// Maps a node to its matrix index (`None` for ground).
#[inline]
pub(crate) fn idx(n: NodeId) -> Option<usize> {
    if n.is_ground() {
        None
    } else {
        Some(n.index() - 1)
    }
}

/// Voltage of a node under the candidate solution `x` (ground is 0).
#[inline]
pub(crate) fn voltage_of(x: &[f64], n: NodeId) -> f64 {
    match idx(n) {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Voltage of a resolved matrix slot under the candidate solution `x`.
#[inline]
fn slot_voltage(x: &[f64], slot: Option<usize>) -> f64 {
    match slot {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Adds `g` as a two-terminal conductance stamp between `a` and `b`.
/// Generic over the assembly target so the same stamp drives the dense
/// and the sparse solver path.
pub(crate) fn stamp_conductance<M: StampTarget + ?Sized>(mat: &mut M, a: NodeId, b: NodeId, g: f64) {
    if let Some(i) = idx(a) {
        mat.add(i, i, g);
        if let Some(j) = idx(b) {
            mat.add(i, j, -g);
        }
    }
    if let Some(j) = idx(b) {
        mat.add(j, j, g);
        if let Some(i) = idx(a) {
            mat.add(j, i, -g);
        }
    }
}

/// Adds a constant current `i` flowing out of node `from` into node `to`
/// (through the element being stamped).
pub(crate) fn stamp_current(rhs: &mut [f64], from: NodeId, to: NodeId, i: f64) {
    if let Some(a) = idx(from) {
        rhs[a] -= i;
    }
    if let Some(b) = idx(to) {
        rhs[b] += i;
    }
}

/// One replayable assembly operation with fully resolved slots.
#[derive(Debug, Clone)]
enum PlanOp {
    /// Add a precomputed constant to one matrix slot (resistors and the
    /// ±1/±gain patterns of voltage-defined devices).
    Mat { row: usize, col: usize, value: f64 },
    /// Independent current source: waveform value into the KCL rows.
    Current { from: Option<usize>, to: Option<usize>, wave: usize },
    /// Voltage-defined device: waveform value onto the branch row.
    SourceRow { row: usize, wave: usize },
    /// Level-1 MOSFET, linearized around the candidate solution at
    /// replay time.
    Mos {
        d: Option<usize>,
        g: Option<usize>,
        s: Option<usize>,
        b: Option<usize>,
        polarity: MosPolarity,
        params: MosParams,
    },
}

/// A precompiled assembly schedule for one [`Circuit`].
///
/// Building the plan resolves node ids to matrix slots, assigns branch
/// rows and splits every device into constant matrix contributions,
/// waveform-driven right-hand-side contributions and nonlinear (MOSFET)
/// linearization sites. Replaying it is a single flat pass — the hot
/// loop of every analysis.
#[derive(Debug, Clone)]
pub(crate) struct StampPlan {
    n: usize,
    n_nodes: usize,
    ops: Vec<PlanOp>,
    waves: Vec<Waveform>,
    /// `damped[i]` is true when unknown `i` is a terminal of a nonlinear
    /// device: only those update components need Newton damping. Linear
    /// nodes (and branch currents) take the full, exact Newton step —
    /// clamping them would just make a supply node crawl to its source
    /// voltage half a volt per iteration.
    damped: Vec<bool>,
    /// Every matrix slot the static (DC/Jacobian) assembly can touch:
    /// gmin diagonal, constant stamps, MOS linearization sites.
    static_slots: Vec<(usize, usize)>,
    /// Slots touched only by capacitive stamps: transient companion
    /// conductances and the AC `C` matrix (explicit capacitors plus MOS
    /// gate capacitances).
    dynamic_slots: Vec<(usize, usize)>,
    /// Lazily built all-zero sparse matrix over the union of
    /// `static_slots` and `dynamic_slots`; cloned (pattern shared, one
    /// value vector each) by every sparse solver instance for this
    /// circuit, so the pattern construction is paid once per plan.
    sparse_template: OnceLock<SparseMatrix>,
}

impl StampPlan {
    /// Compiles the assembly schedule for `circuit`.
    pub(crate) fn build(circuit: &Circuit) -> Self {
        let n_nodes = circuit.node_count() - 1;
        let n = circuit.unknown_count();
        let mut ops = Vec::new();
        let mut waves = Vec::new();
        let mat = |ops: &mut Vec<PlanOp>, row: usize, col: usize, value: f64| {
            ops.push(PlanOp::Mat { row, col, value });
        };
        // Emit conductance stamps in exactly the add order of
        // `stamp_conductance` so replay accumulates identically.
        let conductance = |ops: &mut Vec<PlanOp>, a: NodeId, b: NodeId, g: f64| {
            if let Some(i) = idx(a) {
                ops.push(PlanOp::Mat { row: i, col: i, value: g });
                if let Some(j) = idx(b) {
                    ops.push(PlanOp::Mat { row: i, col: j, value: -g });
                }
            }
            if let Some(j) = idx(b) {
                ops.push(PlanOp::Mat { row: j, col: j, value: g });
                if let Some(i) = idx(a) {
                    ops.push(PlanOp::Mat { row: j, col: i, value: -g });
                }
            }
        };

        // Slots a two-terminal conductance between resolved indices can
        // touch (the sparsity-pattern counterpart of `stamp_conductance`).
        let conductance_slots =
            |slots: &mut Vec<(usize, usize)>, a: Option<usize>, b: Option<usize>| {
                if let Some(i) = a {
                    slots.push((i, i));
                    if let Some(j) = b {
                        slots.push((i, j));
                        slots.push((j, i));
                    }
                }
                if let Some(j) = b {
                    slots.push((j, j));
                }
            };
        let mut dynamic_slots = Vec::new();

        let mut branch = n_nodes; // next branch-current row/column
        for dev in circuit.devices() {
            match dev.kind() {
                DeviceKind::Resistor { a, b, ohms } => {
                    conductance(&mut ops, *a, *b, 1.0 / ohms);
                }
                DeviceKind::Capacitor { a, b, .. } => {
                    // Open in DC; transient stamps companions separately
                    // (but their slots belong to the sparsity pattern).
                    conductance_slots(&mut dynamic_slots, idx(*a), idx(*b));
                }
                DeviceKind::Isource { from, to, wave } => {
                    waves.push(wave.clone());
                    ops.push(PlanOp::Current {
                        from: idx(*from),
                        to: idx(*to),
                        wave: waves.len() - 1,
                    });
                }
                DeviceKind::Vsource { pos, neg, wave } => {
                    let br = branch;
                    branch += 1;
                    if let Some(p) = idx(*pos) {
                        mat(&mut ops, p, br, 1.0);
                        mat(&mut ops, br, p, 1.0);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat(&mut ops, ng, br, -1.0);
                        mat(&mut ops, br, ng, -1.0);
                    }
                    waves.push(wave.clone());
                    ops.push(PlanOp::SourceRow { row: br, wave: waves.len() - 1 });
                }
                DeviceKind::Vcvs { pos, neg, cp, cn, gain } => {
                    let br = branch;
                    branch += 1;
                    if let Some(p) = idx(*pos) {
                        mat(&mut ops, p, br, 1.0);
                        mat(&mut ops, br, p, 1.0);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat(&mut ops, ng, br, -1.0);
                        mat(&mut ops, br, ng, -1.0);
                    }
                    if let Some(c) = idx(*cp) {
                        mat(&mut ops, br, c, -gain);
                    }
                    if let Some(c) = idx(*cn) {
                        mat(&mut ops, br, c, *gain);
                    }
                }
                DeviceKind::Mosfet { d, g, s, b, polarity, params } => {
                    // Gate capacitances are stamped by the transient and
                    // AC engines.
                    conductance_slots(&mut dynamic_slots, idx(*g), idx(*s));
                    conductance_slots(&mut dynamic_slots, idx(*g), idx(*d));
                    ops.push(PlanOp::Mos {
                        d: idx(*d),
                        g: idx(*g),
                        s: idx(*s),
                        b: idx(*b),
                        polarity: *polarity,
                        params: *params,
                    });
                }
            }
        }
        let mut damped = vec![false; n];
        let mut static_slots: Vec<(usize, usize)> = (0..n_nodes).map(|i| (i, i)).collect();
        for op in &ops {
            match op {
                PlanOp::Mos { d, g, s, b, .. } => {
                    for slot in [d, g, s, b].into_iter().flatten() {
                        damped[*slot] = true;
                    }
                    // The linearization writes the drain and source KCL
                    // rows at every terminal column present.
                    for row in [d, s].into_iter().flatten() {
                        for col in [d, g, s, b].into_iter().flatten() {
                            static_slots.push((*row, *col));
                        }
                    }
                }
                PlanOp::Mat { row, col, .. } => static_slots.push((*row, *col)),
                PlanOp::Current { .. } | PlanOp::SourceRow { .. } => {}
            }
        }
        StampPlan {
            n,
            n_nodes,
            ops,
            waves,
            damped,
            static_slots,
            dynamic_slots,
            sparse_template: OnceLock::new(),
        }
    }

    /// Slots only capacitive stamps (companions, AC `C`) can touch.
    pub(crate) fn dynamic_slots(&self) -> &[(usize, usize)] {
        &self.dynamic_slots
    }

    /// The all-zero sparse assembly matrix over every slot any analysis
    /// of this circuit can stamp (static + dynamic). Built on first use
    /// and cached; callers clone it (the pattern is shared by `Arc`, so
    /// a clone allocates only the value vector) and stamp into the
    /// clone.
    pub(crate) fn sparse_template(&self) -> &SparseMatrix {
        self.sparse_template.get_or_init(|| {
            let mut slots = self.static_slots.clone();
            slots.extend_from_slice(&self.dynamic_slots);
            SparseMatrix::from_entries(self.n, &slots)
        })
    }

    /// Which unknowns are nonlinear-device terminals and therefore
    /// subject to per-iteration update damping.
    pub(crate) fn damped(&self) -> &[bool] {
        &self.damped
    }

    /// Number of MNA unknowns the plan assembles.
    pub(crate) fn dim(&self) -> usize {
        self.n
    }

    /// Evaluates every stimulus waveform through `f` into `vals` (a
    /// reused buffer). Source values are constant across the Newton
    /// iterations of one solve, so callers evaluate once per
    /// solve/timestep and replay the cached values every iteration.
    pub(crate) fn source_values<F: Fn(&Waveform) -> f64>(&self, vals: &mut Vec<f64>, f: F) {
        vals.clear();
        vals.extend(self.waves.iter().map(f));
    }

    /// Replays the schedule: assembles the static (non-capacitive) MNA
    /// system into `mat`/`rhs`, linearizing MOSFETs around the candidate
    /// solution `x`.
    ///
    /// * `source_vals` holds the present value of every stimulus
    ///   waveform, as produced by
    ///   [`source_values`](StampPlan::source_values) — DC analysis uses
    ///   `|w| scale * w.dc_value()`, transient `|w| w.eval(t)`.
    /// * `gmin` is stamped from every non-ground node to ground.
    ///
    /// Capacitors are *not* stamped here: DC treats them as open, and
    /// the transient engine stamps their companion models itself (it
    /// also owns the MOS intrinsic capacitances).
    pub(crate) fn assemble_into<M: StampTarget + ?Sized>(
        &self,
        x: &[f64],
        mat: &mut M,
        rhs: &mut [f64],
        gmin: f64,
        source_vals: &[f64],
    ) {
        mat.clear();
        rhs.fill(0.0);
        for i in 0..self.n_nodes {
            mat.add(i, i, gmin);
        }
        for op in &self.ops {
            match op {
                PlanOp::Mat { row, col, value } => mat.add(*row, *col, *value),
                PlanOp::Current { from, to, wave } => {
                    let i = source_vals[*wave];
                    if let Some(a) = from {
                        rhs[*a] -= i;
                    }
                    if let Some(b) = to {
                        rhs[*b] += i;
                    }
                }
                PlanOp::SourceRow { row, wave } => {
                    rhs[*row] = source_vals[*wave];
                }
                PlanOp::Mos { d, g, s, b, polarity, params } => {
                    let vd = slot_voltage(x, *d);
                    let vg = slot_voltage(x, *g);
                    let vs = slot_voltage(x, *s);
                    let vb = slot_voltage(x, *b);
                    let op = mos::evaluate(params, *polarity, vd, vg, vs, vb);
                    // Linearization: id ≈ gm·vg + gds·vd + gmb·vb
                    //                    − (gm+gds+gmb)·vs + i_rhs
                    let gsum = op.gm + op.gds + op.gmb;
                    let i_rhs =
                        op.ids - op.gm * (vg - vs) - op.gds * (vd - vs) - op.gmb * (vb - vs);
                    if let Some(di) = *d {
                        if let Some(gi) = *g {
                            mat.add(di, gi, op.gm);
                        }
                        mat.add(di, di, op.gds);
                        if let Some(bi) = *b {
                            mat.add(di, bi, op.gmb);
                        }
                        if let Some(si) = *s {
                            mat.add(di, si, -gsum);
                        }
                    }
                    if let Some(si) = *s {
                        if let Some(gi) = *g {
                            mat.add(si, gi, -op.gm);
                        }
                        if let Some(di) = *d {
                            mat.add(si, di, -op.gds);
                        }
                        if let Some(bi) = *b {
                            mat.add(si, bi, -op.gmb);
                        }
                        mat.add(si, si, gsum);
                    }
                    // Drain-to-source RHS current (stamp_current inlined
                    // on resolved slots).
                    if let Some(di) = *d {
                        rhs[di] -= i_rhs;
                    }
                    if let Some(si) = *s {
                        rhs[si] += i_rhs;
                    }
                }
            }
        }
    }
}

/// Assembles the static (non-capacitive) part of the MNA system,
/// linearizing nonlinear devices around the candidate solution `x`.
///
/// One-shot convenience over [`StampPlan`]: builds the plan and replays
/// it once. Repeated assemblies of the same circuit (every Newton loop)
/// should build the plan once and call
/// [`StampPlan::assemble_into`] directly.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn assemble_static<F: Fn(&Waveform) -> f64>(
    circuit: &Circuit,
    x: &[f64],
    mat: &mut Matrix,
    rhs: &mut [f64],
    gmin: f64,
    source_value: F,
) {
    let plan = StampPlan::build(circuit);
    let mut vals = Vec::new();
    plan.source_values(&mut vals, source_value);
    plan.assemble_into(x, mat, rhs, gmin, &vals);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::{MosParams, MosPolarity};
    use crate::Circuit;

    #[test]
    fn idx_maps_ground_to_none() {
        assert_eq!(idx(NodeId::GROUND), None);
        assert_eq!(idx(NodeId(3)), Some(2));
    }

    #[test]
    fn conductance_stamp_is_symmetric() {
        let mut m = Matrix::zeros(2, 2);
        stamp_conductance(&mut m, NodeId(1), NodeId(2), 0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], -0.5);
        assert_eq!(m[(1, 0)], -0.5);
    }

    #[test]
    fn conductance_to_ground_only_touches_diagonal() {
        let mut m = Matrix::zeros(1, 1);
        stamp_conductance(&mut m, NodeId(1), NodeId::GROUND, 2.0);
        assert_eq!(m[(0, 0)], 2.0);
    }

    #[test]
    fn current_stamp_signs() {
        let mut rhs = vec![0.0, 0.0];
        stamp_current(&mut rhs, NodeId(1), NodeId(2), 1e-3);
        assert_eq!(rhs, vec![-1e-3, 1e-3]);
        stamp_current(&mut rhs, NodeId::GROUND, NodeId(1), 1e-3);
        assert_eq!(rhs, vec![0.0, 1e-3]);
    }

    #[test]
    fn resistor_divider_assembly_matches_hand_stamp() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(10.0)).unwrap();
        c.add_resistor("R1", a, b, 1000.0).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1000.0).unwrap();
        let n = c.unknown_count();
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        assemble_static(&c, &vec![0.0; n], &mut mat, &mut rhs, 0.0, |w| w.dc_value());
        // Node a row: g(R1) + vsource branch column.
        assert!((mat[(0, 0)] - 1e-3).abs() < 1e-15);
        assert!((mat[(0, 1)] + 1e-3).abs() < 1e-15);
        assert_eq!(mat[(0, 2)], 1.0);
        // Node b row: both resistors.
        assert!((mat[(1, 1)] - 2e-3).abs() < 1e-15);
        // Branch row: v(a) = 10.
        assert_eq!(mat[(2, 0)], 1.0);
        assert_eq!(rhs[2], 10.0);
    }

    /// The compiled plan must replay to the bit-identical system a
    /// direct device walk produces, for a circuit exercising every
    /// device kind (including a MOSFET linearized off a nonzero
    /// candidate solution).
    #[test]
    fn plan_replay_matches_direct_assembly_bitwise() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        let o = c.node("o");
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_isource("IB", Circuit::GROUND, g, Waveform::dc(1e-5)).unwrap();
        c.add_resistor("RG", g, Circuit::GROUND, 200e3).unwrap();
        c.add_capacitor("CL", d, Circuit::GROUND, 1e-12).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        c.add_vcvs("E1", o, Circuit::GROUND, d, Circuit::GROUND, -3.0).unwrap();

        let n = c.unknown_count();
        let x: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 0.4).collect();
        let gmin = 1e-12;

        // Direct device-by-device walk (the pre-plan reference).
        let mut mat_ref = Matrix::zeros(n, n);
        let mut rhs_ref = vec![0.0; n];
        mat_ref.clear();
        rhs_ref.fill(0.0);
        for i in 0..c.node_count() - 1 {
            mat_ref.add(i, i, gmin);
        }
        let mut branch = c.node_count() - 1;
        for dev in c.devices() {
            match dev.kind() {
                DeviceKind::Resistor { a, b, ohms } => {
                    stamp_conductance(&mut mat_ref, *a, *b, 1.0 / ohms);
                }
                DeviceKind::Capacitor { .. } => {}
                DeviceKind::Isource { from, to, wave } => {
                    stamp_current(&mut rhs_ref, *from, *to, wave.dc_value());
                }
                DeviceKind::Vsource { pos, neg, wave } => {
                    let br = branch;
                    branch += 1;
                    if let Some(p) = idx(*pos) {
                        mat_ref.add(p, br, 1.0);
                        mat_ref.add(br, p, 1.0);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat_ref.add(ng, br, -1.0);
                        mat_ref.add(br, ng, -1.0);
                    }
                    rhs_ref[br] = wave.dc_value();
                }
                DeviceKind::Vcvs { pos, neg, cp, cn, gain } => {
                    let br = branch;
                    branch += 1;
                    if let Some(p) = idx(*pos) {
                        mat_ref.add(p, br, 1.0);
                        mat_ref.add(br, p, 1.0);
                    }
                    if let Some(ng) = idx(*neg) {
                        mat_ref.add(ng, br, -1.0);
                        mat_ref.add(br, ng, -1.0);
                    }
                    if let Some(cc) = idx(*cp) {
                        mat_ref.add(br, cc, -gain);
                    }
                    if let Some(cc) = idx(*cn) {
                        mat_ref.add(br, cc, *gain);
                    }
                }
                DeviceKind::Mosfet { d, g, s, b, polarity, params } => {
                    let vd = voltage_of(&x, *d);
                    let vg = voltage_of(&x, *g);
                    let vs = voltage_of(&x, *s);
                    let vb = voltage_of(&x, *b);
                    let op = mos::evaluate(params, *polarity, vd, vg, vs, vb);
                    let gsum = op.gm + op.gds + op.gmb;
                    let i_rhs =
                        op.ids - op.gm * (vg - vs) - op.gds * (vd - vs) - op.gmb * (vb - vs);
                    if let Some(di) = idx(*d) {
                        if let Some(gi) = idx(*g) {
                            mat_ref.add(di, gi, op.gm);
                        }
                        mat_ref.add(di, di, op.gds);
                        if let Some(bi) = idx(*b) {
                            mat_ref.add(di, bi, op.gmb);
                        }
                        if let Some(si) = idx(*s) {
                            mat_ref.add(di, si, -gsum);
                        }
                    }
                    if let Some(si) = idx(*s) {
                        if let Some(gi) = idx(*g) {
                            mat_ref.add(si, gi, -op.gm);
                        }
                        if let Some(di) = idx(*d) {
                            mat_ref.add(si, di, -op.gds);
                        }
                        if let Some(bi) = idx(*b) {
                            mat_ref.add(si, bi, -op.gmb);
                        }
                        mat_ref.add(si, si, gsum);
                    }
                    stamp_current(&mut rhs_ref, *d, *s, i_rhs);
                }
            }
        }

        let plan = StampPlan::build(&c);
        assert_eq!(plan.dim(), n);
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        let mut vals = Vec::new();
        plan.source_values(&mut vals, |w| w.dc_value());
        // Replay twice into dirty buffers: the plan must clear them.
        for _ in 0..2 {
            plan.assemble_into(&x, &mut mat, &mut rhs, gmin, &vals);
        }

        for r in 0..n {
            for cidx in 0..n {
                assert_eq!(
                    mat[(r, cidx)].to_bits(),
                    mat_ref[(r, cidx)].to_bits(),
                    "matrix mismatch at ({r},{cidx})"
                );
            }
            assert_eq!(rhs[r].to_bits(), rhs_ref[r].to_bits(), "rhs mismatch at {r}");
        }
    }
}
