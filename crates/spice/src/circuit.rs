use std::collections::HashMap;

use crate::bjt::{BjtParams, BjtPolarity};
use crate::device::{Device, DeviceKind};
use crate::diode::DiodeParams;
use crate::mos::{MosParams, MosPolarity};
use crate::node::NodeId;
use crate::stimulus::Waveform;
use crate::SpiceError;

/// A netlist: interned named nodes plus named devices.
///
/// Node `0` is always ground (named `"0"`). Device names are unique and
/// are the handle used for probing, stimulus substitution, and fault
/// injection.
///
/// # Example
///
/// ```
/// use castg_spice::{Circuit, Waveform};
///
/// let mut c = Circuit::new();
/// let vdd = c.node("vdd");
/// let out = c.node("out");
/// c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0))?;
/// c.add_resistor("RL", vdd, out, 10e3)?;
/// assert_eq!(c.node_count(), 3); // ground, vdd, out
/// assert!(c.device("RL").is_some());
/// # Ok::<(), castg_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    node_names: Vec<std::sync::Arc<str>>,
    node_index: HashMap<std::sync::Arc<str>, NodeId>,
    devices: Vec<Device>,
    device_index: HashMap<std::sync::Arc<str>, usize>,
    /// Lazily compiled assembly schedule, shared by every analysis of
    /// this circuit and invalidated by any mutation. Compiling resolves
    /// node ids to matrix slots and splits devices into constant /
    /// stimulus / nonlinear contributions once, so repeated solves
    /// (sensitivity sweeps hammer the same circuit thousands of times)
    /// skip straight to the flat replay.
    plan: PlanCache,
}

/// Interior cache for the compiled [`StampPlan`]. Equality-transparent:
/// two circuits are equal regardless of which has compiled its plan.
#[derive(Debug, Clone, Default)]
struct PlanCache(std::sync::OnceLock<std::sync::Arc<crate::stamp::StampPlan>>);

impl PartialEq for PlanCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Circuit {
    /// The ground node, present in every circuit.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let ground: std::sync::Arc<str> = std::sync::Arc::from("0");
        let mut node_index = HashMap::new();
        node_index.insert(std::sync::Arc::clone(&ground), NodeId::GROUND);
        Circuit {
            node_names: vec![ground],
            node_index,
            devices: Vec::new(),
            device_index: HashMap::new(),
            plan: PlanCache::default(),
        }
    }

    /// The compiled assembly schedule for this circuit, building it on
    /// first use. Cheap to call afterwards (one `Arc` clone).
    pub(crate) fn plan(&self) -> std::sync::Arc<crate::stamp::StampPlan> {
        std::sync::Arc::clone(
            self.plan.0.get_or_init(|| std::sync::Arc::new(crate::stamp::StampPlan::build(self))),
        )
    }

    /// Drops any compiled assembly schedule, forcing the next analysis
    /// to recompile from the netlist.
    ///
    /// Analyses never need this — patches keep the plan consistent —
    /// but differential test harnesses use it to pin the patched plan
    /// against a from-scratch recompilation, and long-lived circuit
    /// stores can use it to shed cached state.
    pub fn drop_compiled_plan(&mut self) {
        self.invalidate_plan();
    }

    /// Compiles the assembly schedule (and whatever it caches lazily)
    /// now instead of at the first analysis.
    ///
    /// Useful before fanning a shared circuit out to worker threads, or
    /// before injecting faulted variants: a variant derived from a
    /// compiled circuit patches the compiled plan (delta-stamps)
    /// instead of recompiling its own from the netlist.
    pub fn compile_plan(&self) {
        let _ = self.plan();
    }

    /// Drops the compiled plan; called by the structural `&mut self`
    /// entry points (node creation, device removal, arbitrary device
    /// mutation) so a mutated circuit recompiles on its next analysis.
    /// Additive mutations patch the plan instead — see
    /// [`Circuit::add`] and [`Circuit::set_stimulus`].
    fn invalidate_plan(&mut self) {
        self.plan.0.take();
    }

    /// Replaces the compiled plan with a patched successor, if one is
    /// compiled at all.
    fn patch_plan<F>(&mut self, patch: F)
    where
        F: FnOnce(&crate::stamp::StampPlan) -> crate::stamp::StampPlan,
    {
        if let Some(plan) = self.plan.0.take() {
            let _ = self.plan.0.set(std::sync::Arc::new(patch(&plan)));
        }
    }

    /// Returns the node with the given name, creating it if needed.
    /// `"0"` and `"gnd"` both resolve to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let canonical = if name.eq_ignore_ascii_case("gnd") { "0" } else { name };
        if let Some(&id) = self.node_index.get(canonical) {
            return id;
        }
        self.invalidate_plan();
        let id = NodeId(self.node_names.len());
        let name: std::sync::Arc<str> = std::sync::Arc::from(canonical);
        self.node_names.push(std::sync::Arc::clone(&name));
        self.node_index.insert(name, id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let canonical = if name.eq_ignore_ascii_case("gnd") { "0" } else { name };
        self.node_index.get(canonical).copied()
    }

    /// Name of a node id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All node ids except ground.
    pub fn non_ground_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.node_names.len()).map(NodeId)
    }

    /// The devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Looks up a device by name.
    pub fn device(&self, name: &str) -> Option<&Device> {
        self.device_index.get(name).map(|&i| &self.devices[i])
    }

    /// Mutable lookup of a device by name.
    pub fn device_mut(&mut self, name: &str) -> Option<&mut Device> {
        match self.device_index.get(name) {
            Some(&i) => {
                // The returned reference is the only mutation path, so
                // only a successful lookup needs to drop the plan.
                self.invalidate_plan();
                Some(&mut self.devices[i])
            }
            None => None,
        }
    }

    /// Adds a fully-formed device, validating its nodes and name
    /// uniqueness.
    ///
    /// If the circuit's assembly schedule is already compiled, the new
    /// device is *patched into it* (its ops appended, exactly as a
    /// recompile would emit them) instead of dropping the plan — this
    /// is the delta-stamp path that makes bridge-fault injection an
    /// O(device) plan patch rather than a full recompilation plus
    /// sparse-pattern re-analysis.
    ///
    /// # Errors
    ///
    /// [`SpiceError::DuplicateDevice`] if the name exists,
    /// [`SpiceError::UnknownNode`] if a terminal references a node that
    /// was never interned.
    pub fn add(&mut self, device: Device) -> Result<(), SpiceError> {
        if self.device_index.contains_key(device.name()) {
            return Err(SpiceError::DuplicateDevice { name: device.name().to_string() });
        }
        for n in device.nodes() {
            if n.0 >= self.node_names.len() {
                return Err(SpiceError::UnknownNode {
                    node: n.0,
                    device: device.name().to_string(),
                });
            }
        }
        // Current-controlled sources sense the branch current of an
        // earlier device, so the controller must already be present and
        // voltage-defined. Validating here (rather than at plan build,
        // which is infallible) also guarantees F/H never dangle.
        if let Some(ctrl) = device.controlling_device() {
            match self.device(ctrl) {
                Some(d) if d.has_branch_current() => {}
                Some(_) => {
                    return Err(SpiceError::InvalidValue {
                        device: device.name().to_string(),
                        reason: format!(
                            "controlling device {ctrl} carries no branch current \
                             (must be a V/E/H source or an inductor)"
                        ),
                    });
                }
                None => {
                    return Err(SpiceError::InvalidValue {
                        device: device.name().to_string(),
                        reason: format!(
                            "controlling device {ctrl} not found (it must be added first)"
                        ),
                    });
                }
            }
        }
        // All nodes of the device exist (just validated), so a compiled
        // plan can absorb it as a patch.
        self.patch_plan(|plan| plan.patched_with_device(&device));
        self.device_index.insert(device.name_arc(), self.devices.len());
        self.devices.push(device);
        Ok(())
    }

    /// Removes a device by name, returning it.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownDevice`] if no such device exists.
    pub fn remove(&mut self, name: &str) -> Result<Device, SpiceError> {
        if let Some(dependent) =
            self.devices.iter().find(|d| d.controlling_device() == Some(name))
        {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!(
                    "cannot remove: {} senses this device's branch current",
                    dependent.name()
                ),
            });
        }
        self.invalidate_plan();
        let idx = self
            .device_index
            .remove(name)
            .ok_or_else(|| SpiceError::UnknownDevice { name: name.to_string() })?;
        let dev = self.devices.remove(idx);
        // Reindex devices after the removed one.
        for (i, d) in self.devices.iter().enumerate().skip(idx) {
            self.device_index.insert(d.name_arc(), i);
        }
        Ok(dev)
    }

    /// Adds a resistor (`ohms > 0` and finite).
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-positive or non-finite value,
    /// plus the errors of [`Circuit::add`].
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), SpiceError> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!("resistance must be positive and finite, got {ohms}"),
            });
        }
        self.add(Device::new(name, DeviceKind::Resistor { a, b, ohms }))
    }

    /// Adds a capacitor (`farads > 0` and finite).
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-positive or non-finite value,
    /// plus the errors of [`Circuit::add`].
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<(), SpiceError> {
        if !(farads.is_finite() && farads > 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!("capacitance must be positive and finite, got {farads}"),
            });
        }
        self.add(Device::new(name, DeviceKind::Capacitor { a, b, farads }))
    }

    /// Adds an inductor (`henries > 0` and finite). In DC it behaves as
    /// a short (its branch equation forces `v(a) = v(b)`), transient
    /// analysis integrates `v = L·di/dt` with the same companion-model
    /// machinery capacitors use, and AC stamps `−jωL` on its branch row.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-positive or non-finite value,
    /// plus the errors of [`Circuit::add`].
    pub fn add_inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
    ) -> Result<(), SpiceError> {
        if !(henries.is_finite() && henries > 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!("inductance must be positive and finite, got {henries}"),
            });
        }
        self.add(Device::new(name, DeviceKind::Inductor { a, b, henries }))
    }

    /// Adds an independent voltage source (`pos` → `neg`).
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.add(Device::new(name, DeviceKind::Vsource { pos, neg, wave }))
    }

    /// Adds an independent current source pulling current out of `from`
    /// and pushing it into `to`.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_isource(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.add(Device::new(name, DeviceKind::Isource { from, to, wave }))
    }

    /// Adds a Level-1 MOSFET. Width and length must be positive.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on non-positive geometry, plus the
    /// errors of [`Circuit::add`].
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        polarity: MosPolarity,
        params: MosParams,
    ) -> Result<(), SpiceError> {
        if !(params.w > 0.0 && params.l > 0.0) {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!("W and L must be positive, got W={} L={}", params.w, params.l),
            });
        }
        self.add(Device::new(name, DeviceKind::Mosfet { d, g, s, b, polarity, params }))
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    #[allow(clippy::too_many_arguments)]
    pub fn add_vcvs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<(), SpiceError> {
        self.add(Device::new(name, DeviceKind::Vcvs { pos, neg, cp, cn, gain }))
    }

    /// Adds a junction diode from anode `a` to cathode `k`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-positive `Is`/`n`, a
    /// negative `rs`/`cj0`, or any non-finite parameter, plus the
    /// errors of [`Circuit::add`].
    pub fn add_diode(
        &mut self,
        name: &str,
        a: NodeId,
        k: NodeId,
        params: DiodeParams,
    ) -> Result<(), SpiceError> {
        if !(params.is_sat.is_finite()
            && params.is_sat > 0.0
            && params.n.is_finite()
            && params.n > 0.0
            && params.rs.is_finite()
            && params.rs >= 0.0
            && params.cj0.is_finite()
            && params.cj0 >= 0.0)
        {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!(
                    "diode needs is>0, n>0, rs>=0, cj0>=0 (finite), got is={} n={} rs={} cj0={}",
                    params.is_sat, params.n, params.rs, params.cj0
                ),
            });
        }
        self.add(Device::new(name, DeviceKind::Diode { a, k, params }))
    }

    /// Adds a bipolar junction transistor (collector, base, emitter).
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-positive `Is`/`βf`/`βr`, a
    /// negative junction capacitance, or any non-finite parameter, plus
    /// the errors of [`Circuit::add`].
    #[allow(clippy::too_many_arguments)]
    pub fn add_bjt(
        &mut self,
        name: &str,
        c: NodeId,
        b: NodeId,
        e: NodeId,
        polarity: BjtPolarity,
        params: BjtParams,
    ) -> Result<(), SpiceError> {
        if !(params.is_sat.is_finite()
            && params.is_sat > 0.0
            && params.bf.is_finite()
            && params.bf > 0.0
            && params.br.is_finite()
            && params.br > 0.0
            && params.cje.is_finite()
            && params.cje >= 0.0
            && params.cjc.is_finite()
            && params.cjc >= 0.0)
        {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!(
                    "bjt needs is>0, bf>0, br>0, cje>=0, cjc>=0 (finite), \
                     got is={} bf={} br={} cje={} cjc={}",
                    params.is_sat, params.bf, params.br, params.cje, params.cjc
                ),
            });
        }
        self.add(Device::new(name, DeviceKind::Bjt { c, b, e, polarity, params }))
    }

    /// Adds a voltage-controlled current source (`gm` finite).
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-finite transconductance,
    /// plus the errors of [`Circuit::add`].
    #[allow(clippy::too_many_arguments)]
    pub fn add_vccs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<(), SpiceError> {
        if !gm.is_finite() {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!("transconductance must be finite, got {gm}"),
            });
        }
        self.add(Device::new(name, DeviceKind::Vccs { pos, neg, cp, cn, gm }))
    }

    /// Adds a current-controlled current source sensing the branch
    /// current of the already-added device `ctrl`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-finite gain or a missing /
    /// non-branch controlling device, plus the errors of
    /// [`Circuit::add`].
    pub fn add_cccs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        ctrl: &str,
        gain: f64,
    ) -> Result<(), SpiceError> {
        if !gain.is_finite() {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!("current gain must be finite, got {gain}"),
            });
        }
        self.add(Device::new(
            name,
            DeviceKind::Cccs { pos, neg, ctrl: std::sync::Arc::from(ctrl), gain },
        ))
    }

    /// Adds a current-controlled voltage source sensing the branch
    /// current of the already-added device `ctrl`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a non-finite transresistance or a
    /// missing / non-branch controlling device, plus the errors of
    /// [`Circuit::add`].
    pub fn add_ccvs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        ctrl: &str,
        ohms: f64,
    ) -> Result<(), SpiceError> {
        if !ohms.is_finite() {
            return Err(SpiceError::InvalidValue {
                device: name.to_string(),
                reason: format!("transresistance must be finite, got {ohms}"),
            });
        }
        self.add(Device::new(
            name,
            DeviceKind::Ccvs { pos, neg, ctrl: std::sync::Arc::from(ctrl), ohms },
        ))
    }

    /// Replaces the waveform of a named independent source; used by test
    /// configurations to attach their stimulus to the macro's input node.
    ///
    /// A compiled assembly schedule survives this: only its waveform
    /// table is patched (the matrix structure is stimulus-independent),
    /// so parameter sweeps that re-aim the stimulus never recompile the
    /// plan, its sparse template, or its symbolic analysis.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownDevice`] if the device does not exist or is
    /// not an independent source.
    pub fn set_stimulus(&mut self, name: &str, wave: Waveform) -> Result<(), SpiceError> {
        let slot = match self.wave_slot(name) {
            Some(slot) => slot,
            None if self.device_index.contains_key(name) => {
                return Err(SpiceError::InvalidValue {
                    device: name.to_string(),
                    reason: "set_stimulus requires an independent source".to_string(),
                })
            }
            None => return Err(SpiceError::UnknownDevice { name: name.to_string() }),
        };
        let di = self.device_index[name];
        match self.devices[di].kind_mut() {
            DeviceKind::Vsource { wave: w, .. } | DeviceKind::Isource { wave: w, .. } => {
                *w = wave.clone();
            }
            _ => unreachable!("wave_slot only resolves independent sources"),
        }
        self.patch_plan(|plan| plan.with_wave(slot, wave));
        Ok(())
    }

    /// Stimulus-slot index of a named independent source: its position
    /// among the circuit's independent sources in device order, which
    /// is exactly the waveform-table index of the compiled plan.
    /// `None` when the device is missing or not an independent source —
    /// callers map that to their own error (the analyses' stimulus
    /// overrides reuse this).
    pub(crate) fn wave_slot(&self, name: &str) -> Option<usize> {
        let di = *self.device_index.get(name)?;
        if !matches!(
            self.devices[di].kind(),
            DeviceKind::Vsource { .. } | DeviceKind::Isource { .. }
        ) {
            return None;
        }
        Some(
            self.devices[..di]
                .iter()
                .filter(|d| {
                    matches!(d.kind(), DeviceKind::Vsource { .. } | DeviceKind::Isource { .. })
                })
                .count(),
        )
    }

    /// Names of all MOSFET devices (in insertion order); the pinhole fault
    /// universe of the paper is one fault per transistor.
    pub fn mosfet_names(&self) -> Vec<String> {
        self.devices
            .iter()
            .filter(|d| matches!(d.kind(), DeviceKind::Mosfet { .. }))
            .map(|d| d.name().to_string())
            .collect()
    }

    /// Names of all diode devices (in insertion order); each contributes
    /// one junction-pinhole fault site (anode–cathode short).
    pub fn diode_names(&self) -> Vec<String> {
        self.devices
            .iter()
            .filter(|d| matches!(d.kind(), DeviceKind::Diode { .. }))
            .map(|d| d.name().to_string())
            .collect()
    }

    /// Names of all BJT devices (in insertion order); each contributes
    /// two junction-pinhole fault sites (base–emitter and base–collector
    /// shorts).
    pub fn bjt_names(&self) -> Vec<String> {
        self.devices
            .iter()
            .filter(|d| matches!(d.kind(), DeviceKind::Bjt { .. }))
            .map(|d| d.name().to_string())
            .collect()
    }

    /// Number of MNA unknowns: non-ground nodes plus branch currents.
    pub fn unknown_count(&self) -> usize {
        self.node_count() - 1 + self.branch_count()
    }

    /// Number of branch-current unknowns (voltage-defined devices).
    pub fn branch_count(&self) -> usize {
        self.devices.iter().filter(|d| d.has_branch_current()).count()
    }

    /// Index of the branch-current unknown belonging to a voltage-defined
    /// device, if it has one. Indices are assigned in device insertion
    /// order.
    pub fn branch_index(&self, name: &str) -> Option<usize> {
        let mut idx = 0;
        for d in &self.devices {
            if d.has_branch_current() {
                if d.name() == name {
                    return Some(idx);
                }
                idx += 1;
            }
        }
        None
    }

    /// Human-readable name of MNA unknown `i`: `v(<node>)` for the
    /// node-voltage unknowns (`0..node_count()-1`, in node-interning
    /// order), `i(<device>)` for the branch-current unknowns that
    /// follow (in device insertion order). Diagnostics use this to turn
    /// a singular pivot column into the circuit element it belongs to.
    pub fn unknown_name(&self, i: usize) -> Option<String> {
        let n_nodes = self.node_count() - 1;
        if i < n_nodes {
            return self.non_ground_nodes().nth(i).map(|id| format!("v({})", self.node_name(id)));
        }
        let want = i - n_nodes;
        let mut idx = 0;
        for d in &self.devices {
            if d.has_branch_current() {
                if idx == want {
                    return Some(format!("i({})", d.name()));
                }
                idx += 1;
            }
        }
        None
    }

    /// Promote a numeric failure to a circuit-level diagnostic:
    /// [`NumericError::SingularMatrix`] becomes [`SpiceError::Singular`]
    /// naming the unknown via [`Circuit::unknown_name`]; anything else
    /// (or an unnameable pivot) passes through as
    /// [`SpiceError::Numeric`]. The pivot is reduced modulo
    /// [`Circuit::unknown_count`] so analyses that factor a stacked
    /// embedding of the MNA system (the AC sweep's 2n×2n real form) can
    /// use the same helper.
    pub fn singular_error(&self, e: castg_numeric::NumericError) -> SpiceError {
        if let castg_numeric::NumericError::SingularMatrix { pivot } = e {
            let n = self.unknown_count();
            if n > 0 {
                if let Some(unknown) = self.unknown_name(pivot % n) {
                    return SpiceError::Singular { unknown };
                }
            }
        }
        SpiceError::Numeric(e)
    }
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_exists_and_gnd_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("missing"), None);
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let err = c.add_resistor("R1", a, Circuit::GROUND, 2.0).unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateDevice { .. }));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.add_resistor("R1", a, Circuit::GROUND, 0.0).is_err());
        assert!(c.add_resistor("R2", a, Circuit::GROUND, -5.0).is_err());
        assert!(c.add_resistor("R3", a, Circuit::GROUND, f64::NAN).is_err());
        assert!(c.add_capacitor("C1", a, Circuit::GROUND, 0.0).is_err());
        let bad = MosParams { w: 0.0, ..MosParams::nmos_default(1e-6, 1e-6) };
        assert!(c
            .add_mosfet("M1", a, a, Circuit::GROUND, Circuit::GROUND, MosPolarity::Nmos, bad)
            .is_err());
    }

    #[test]
    fn remove_reindexes_lookup() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_resistor("R2", a, Circuit::GROUND, 2.0).unwrap();
        c.add_resistor("R3", a, Circuit::GROUND, 3.0).unwrap();
        let removed = c.remove("R2").unwrap();
        assert_eq!(removed.name(), "R2");
        assert!(c.device("R2").is_none());
        // R3 must still resolve correctly after reindexing.
        match c.device("R3").unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 3.0),
            other => panic!("unexpected kind {other:?}"),
        }
        assert!(matches!(c.remove("R2"), Err(SpiceError::UnknownDevice { .. })));
    }

    #[test]
    fn set_stimulus_replaces_waveform() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_isource("Iin", a, Circuit::GROUND, Waveform::dc(0.0)).unwrap();
        c.set_stimulus("Iin", Waveform::dc(1e-6)).unwrap();
        match c.device("Iin").unwrap().kind() {
            DeviceKind::Isource { wave, .. } => assert_eq!(wave, &Waveform::dc(1e-6)),
            other => panic!("unexpected kind {other:?}"),
        }
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(c.set_stimulus("R1", Waveform::dc(0.0)).is_err());
        assert!(c.set_stimulus("nope", Waveform::dc(0.0)).is_err());
    }

    #[test]
    fn unknown_and_branch_counts() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        c.add_resistor("R1", a, b, 1.0).unwrap();
        c.add_vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0).unwrap();
        assert_eq!(c.branch_count(), 2);
        assert_eq!(c.unknown_count(), 2 + 2);
        assert_eq!(c.branch_index("V1"), Some(0));
        assert_eq!(c.branch_index("E1"), Some(1));
        assert_eq!(c.branch_index("R1"), None);
        // The unknown layout mirrored by MNA assembly: node voltages in
        // interning order, then branch currents in device order.
        assert_eq!(c.unknown_name(0).as_deref(), Some("v(a)"));
        assert_eq!(c.unknown_name(1).as_deref(), Some("v(b)"));
        assert_eq!(c.unknown_name(2).as_deref(), Some("i(V1)"));
        assert_eq!(c.unknown_name(3).as_deref(), Some("i(E1)"));
        assert_eq!(c.unknown_name(4), None);
    }

    /// `set_stimulus` must keep the compiled plan (patching only its
    /// waveform table) and still produce correct solves — while
    /// structural mutations after patching must drop the patched plan.
    #[test]
    fn stimulus_patch_keeps_plan_and_solves_correctly() {
        use crate::DcAnalysis;
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        c.compile_plan();
        let before = c.plan();
        c.set_stimulus("V1", Waveform::dc(8.0)).unwrap();
        let after = c.plan();
        assert!(!std::sync::Arc::ptr_eq(&before, &after), "patched plan is a successor");
        assert_eq!(before.dim(), after.dim());
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!((sol.voltage(b) - 4.0).abs() < 1e-6, "patched stimulus must be live, got {}", sol.voltage(b));
    }

    /// A device added to a compiled circuit rides the delta-stamp plan
    /// patch; the solve must reflect it exactly.
    #[test]
    fn device_add_patches_compiled_plan() {
        use crate::DcAnalysis;
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        c.compile_plan();
        // Bridge the lower leg: 1k ∥ 1k = 500 Ω → v(b) = 2·(1/3).
        c.add_resistor("F_bridge", b, Circuit::GROUND, 1e3).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!((sol.voltage(b) - 2.0 / 3.0).abs() < 1e-6);
    }

    /// Regression: a patched plan must never survive a *structural*
    /// mutation of the circuit. Mutating a device through `device_mut`
    /// (or removing one / interning a new node) after a patch must drop
    /// the patched plan and recompile from the netlist.
    #[test]
    fn patched_plan_does_not_survive_structural_mutation() {
        use crate::DcAnalysis;
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        c.compile_plan();
        // Patch path: stimulus swap plus an added bridge.
        c.set_stimulus("V1", Waveform::dc(6.0)).unwrap();
        c.add_resistor("F_bridge", b, Circuit::GROUND, 1e3).unwrap();
        assert!((DcAnalysis::new(&c).solve().unwrap().voltage(b) - 2.0).abs() < 1e-6);

        // Structural mutation via device_mut: change R1's resistance.
        match c.device_mut("R1").unwrap().kind_mut() {
            DeviceKind::Resistor { ohms, .. } => *ohms = 500.0,
            _ => unreachable!(),
        }
        // 6 V over 500 Ω into 500 Ω → v(b) = 3 V: a stale patched plan
        // (still stamping 1 kΩ) would report 2 V.
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!((sol.voltage(b) - 3.0).abs() < 1e-6, "stale plan survived device_mut");

        // Removal also invalidates: 6 V over 500 Ω into the bare 1 kΩ
        // leg is 4 V.
        c.remove("F_bridge").unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!((sol.voltage(b) - 4.0).abs() < 1e-6, "stale plan survived remove");

        // New node interning invalidates (plan dims change with it).
        c.compile_plan();
        let extra = c.node("extra");
        c.add_resistor("R3", b, extra, 1e3).unwrap();
        c.add_resistor("R4", extra, Circuit::GROUND, 1e3).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        assert!(sol.voltage(extra) > 0.0, "new node must participate in the solve");
    }

    #[test]
    fn wave_slot_counts_sources_in_device_order() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R0", a, Circuit::GROUND, 1.0).unwrap();
        c.add_isource("I1", Circuit::GROUND, a, Waveform::dc(1e-3)).unwrap();
        c.add_vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0).unwrap();
        c.add_vsource("V1", b, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        assert_eq!(c.wave_slot("I1"), Some(0));
        assert_eq!(c.wave_slot("V1"), Some(1));
        assert_eq!(c.wave_slot("E1"), None, "VCVS has no stimulus waveform");
        assert_eq!(c.wave_slot("R0"), None);
        assert_eq!(c.wave_slot("missing"), None);
    }

    #[test]
    fn mosfet_names_lists_transistors_in_order() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let p = MosParams::nmos_default(1e-6, 1e-6);
        c.add_mosfet("M2", a, a, Circuit::GROUND, Circuit::GROUND, MosPolarity::Nmos, p).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_mosfet("M1", a, a, Circuit::GROUND, Circuit::GROUND, MosPolarity::Nmos, p).unwrap();
        assert_eq!(c.mosfet_names(), vec!["M2".to_string(), "M1".to_string()]);
    }
}
