//! AC small-signal analysis.
//!
//! Linearizes the circuit around its DC operating point and solves the
//! complex MNA system `(G + jωC)·x = b` per frequency point. This is the
//! substrate for frequency-domain test configurations (gain, bandwidth,
//! phase margin) — a natural extension of the paper's configuration set,
//! exercised by the `ac_gain` extension experiments.
//!
//! `G` is the Jacobian of the static stamps at the operating point (the
//! same matrix the final Newton iteration used), `C` collects explicit
//! capacitors plus the MOSFETs' intrinsic gate capacitances, and `b`
//! holds unit-magnitude excitations on caller-designated independent
//! sources.
//!
//! Solver dispatch: small systems go through the dense complex LU
//! ([`CMatrix`]); large sparse systems (per
//! [`SolverKind`](crate::SolverKind) resolution) solve the equivalent
//! real 2n×2n system `[[G, −ωC], [ωC, G]] · [Re x; Im x] = [Re b; Im b]`
//! with the sparse real LU, whose symbolic analysis is shared across
//! all frequency points of the sweep (the pattern never changes — only
//! ω scales the capacitive entries).

use castg_numeric::{CMatrix, Complex, Matrix, SparseLu, SparseMatrix, StampTarget};

use crate::analysis::AnalysisOptions;
use crate::circuit::Circuit;
use crate::dc::DcAnalysis;
use crate::device::DeviceKind;
use crate::node::NodeId;
use crate::stamp;
use crate::SpiceError;

/// One AC excitation: a named independent source driven with the given
/// small-signal magnitude (phase 0).
#[derive(Debug, Clone, PartialEq)]
pub struct AcSource {
    /// Name of the independent voltage or current source.
    pub name: String,
    /// Small-signal magnitude (volts or amperes).
    pub magnitude: f64,
}

/// Result of an AC sweep: complex node voltages per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    /// `solutions[i][n]` is the phasor of MNA unknown `n` at `freqs[i]`.
    solutions: Vec<Vec<Complex>>,
    n_nodes: usize,
}

impl AcSweep {
    /// The sweep frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Phasor of a node voltage at frequency index `i`.
    ///
    /// # Panics
    ///
    /// Panics if the index or node is out of range.
    pub fn voltage(&self, i: usize, node: NodeId) -> Complex {
        if node.is_ground() {
            Complex::ZERO
        } else {
            self.solutions[i][node.index() - 1]
        }
    }

    /// Magnitude response of a node over the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len()).map(|i| self.voltage(i, node).abs()).collect()
    }

    /// Phase response (radians) of a node over the sweep.
    pub fn phase(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len()).map(|i| self.voltage(i, node).arg()).collect()
    }

    /// Number of node-voltage unknowns the sweep solved for.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }
}

/// AC small-signal solver.
///
/// # Example
///
/// ```
/// use castg_spice::{AcAnalysis, AcSource, Circuit, Waveform};
///
/// // RC low-pass: |H| = 1/√2 at the pole frequency.
/// let mut c = Circuit::new();
/// let vin = c.node("in");
/// let out = c.node("out");
/// c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0))?;
/// c.add_resistor("R1", vin, out, 1e3)?;
/// c.add_capacitor("C1", out, Circuit::GROUND, 1e-9)?;
/// let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
/// let sweep = AcAnalysis::new(&c)
///     .source(AcSource { name: "V1".into(), magnitude: 1.0 })
///     .run(&[f0])?;
/// let h = sweep.voltage(0, out).abs();
/// assert!((h - 1.0 / 2.0_f64.sqrt()).abs() < 1e-6);
/// # Ok::<(), castg_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcAnalysis<'c> {
    circuit: &'c Circuit,
    options: AnalysisOptions,
    sources: Vec<AcSource>,
}

impl<'c> AcAnalysis<'c> {
    /// Creates an AC solver with default options and no excitations.
    pub fn new(circuit: &'c Circuit) -> Self {
        AcAnalysis { circuit, options: AnalysisOptions::default(), sources: Vec::new() }
    }

    /// Creates an AC solver with explicit options.
    pub fn with_options(circuit: &'c Circuit, options: AnalysisOptions) -> Self {
        AcAnalysis { circuit, options, sources: Vec::new() }
    }

    /// Adds an AC excitation on a named independent source.
    pub fn source(mut self, source: AcSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Solves the sweep at the given frequencies.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidAnalysis`] when no excitation was configured
    /// or a frequency is not positive; [`SpiceError::UnknownDevice`]
    /// when an excitation names a missing or non-source device; DC
    /// operating-point failures propagate.
    pub fn run(&self, freqs: &[f64]) -> Result<AcSweep, SpiceError> {
        if self.sources.is_empty() {
            return Err(SpiceError::InvalidAnalysis {
                reason: "ac analysis needs at least one excitation source".to_string(),
            });
        }
        if let Some(bad) = freqs.iter().find(|f| !(**f > 0.0 && f.is_finite())) {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!("ac frequency must be positive and finite, got {bad}"),
            });
        }

        let dc = DcAnalysis::with_options(self.circuit, self.options).solve()?;
        let n = self.circuit.unknown_count();
        let n_nodes = self.circuit.node_count() - 1;

        // b: unit excitations (validated up front).
        let mut b = vec![Complex::ZERO; n];
        for src in &self.sources {
            let dev = self
                .circuit
                .device(&src.name)
                .ok_or_else(|| SpiceError::UnknownDevice { name: src.name.clone() })?;
            match dev.kind() {
                DeviceKind::Isource { from, to, .. } => {
                    if let Some(i) = stamp::idx(*from) {
                        b[i].re -= src.magnitude;
                    }
                    if let Some(i) = stamp::idx(*to) {
                        b[i].re += src.magnitude;
                    }
                }
                DeviceKind::Vsource { .. } => {
                    let br = self
                        .circuit
                        .branch_index(&src.name)
                        .expect("vsource has a branch index");
                    b[n_nodes + br].re += src.magnitude;
                }
                _ => {
                    return Err(SpiceError::InvalidValue {
                        device: src.name.clone(),
                        reason: "ac excitation requires an independent source".to_string(),
                    })
                }
            }
        }

        let plan = self.circuit.plan();
        let solutions = if self.options.solver.use_sparse(plan.as_ref()) {
            self.sweep_sparse(&dc, &b, freqs)?
        } else {
            self.sweep_dense(&dc, &b, freqs)?
        };
        Ok(AcSweep { freqs: freqs.to_vec(), solutions, n_nodes })
    }

    /// Dense sweep: complex `n × n` LU per frequency point.
    fn sweep_dense(
        &self,
        dc: &crate::DcSolution,
        b: &[Complex],
        freqs: &[f64],
    ) -> Result<Vec<Vec<Complex>>, SpiceError> {
        let n = self.circuit.unknown_count();

        // G: the static Jacobian at the operating point (rhs discarded),
        // assembled through the compiled stamp plan.
        let plan = self.circuit.plan();
        let mut g = Matrix::zeros(n, n);
        let mut scratch_rhs = vec![0.0; n];
        let mut src_vals = Vec::new();
        plan.source_values(&mut src_vals, |w| w.dc_value());
        plan.assemble_into(dc.state(), &mut g, &mut scratch_rhs, self.options.gmin, &src_vals);

        // C: capacitive stamps (explicit capacitors + MOS gate caps).
        let mut cap = Matrix::zeros(n, n);
        self.stamp_capacitances(&mut cap);

        // One complex matrix reused (cleared and refilled) for every
        // frequency point; only the retained solution vector is
        // allocated per point.
        let mut solutions = Vec::with_capacity(freqs.len());
        let mut m = CMatrix::zeros(n);
        for f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            m.clear();
            for r in 0..n {
                for c in 0..n {
                    let v = Complex::new(g[(r, c)], omega * cap[(r, c)]);
                    if v.re != 0.0 || v.im != 0.0 {
                        m.add(r, c, v);
                    }
                }
            }
            let mut x = b.to_vec();
            m.solve_in_place(&mut x)?;
            solutions.push(x);
        }
        Ok(solutions)
    }

    /// Sparse sweep: the complex system is embedded as the real
    /// `2n × 2n` system `[[G, −ωC], [ωC, G]]` over `[Re x; Im x]` and
    /// solved with the sparse LU. The embedding's pattern is frequency-
    /// independent, so the symbolic factorization from the first point
    /// is refactored numerically for every further point.
    fn sweep_sparse(
        &self,
        dc: &crate::DcSolution,
        b: &[Complex],
        freqs: &[f64],
    ) -> Result<Vec<Vec<Complex>>, SpiceError> {
        let n = self.circuit.unknown_count();
        let plan = self.circuit.plan();

        // G in sparse form via the plan's cached template (the template
        // pattern also covers the capacitive slots; their G values stay
        // structurally zero).
        let mut g = plan.sparse_template().clone();
        let mut scratch_rhs = vec![0.0; n];
        let mut src_vals = Vec::new();
        plan.source_values(&mut src_vals, |w| w.dc_value());
        plan.assemble_into(dc.state(), &mut g, &mut scratch_rhs, self.options.gmin, &src_vals);

        // C over the dynamic (capacitive) slots only.
        let mut cap = SparseMatrix::from_entries(n, plan.dynamic_slots());
        self.stamp_capacitances(&mut cap);

        // Pattern of the real embedding: G's slots in both diagonal
        // blocks, C's slots in both off-diagonal blocks.
        let mut slots = Vec::with_capacity(2 * (g.nnz() + cap.nnz()));
        for (r, c, _) in g.entries() {
            slots.push((r, c));
            slots.push((n + r, n + c));
        }
        for (r, c, _) in cap.entries() {
            slots.push((r, n + c));
            slots.push((n + r, c));
        }
        let mut big = SparseMatrix::from_entries(2 * n, &slots);
        let mut lu = SparseLu::new();

        let mut rhs = vec![0.0; 2 * n];
        for (i, bi) in b.iter().enumerate() {
            rhs[i] = bi.re;
            rhs[n + i] = bi.im;
        }

        let mut solutions = Vec::with_capacity(freqs.len());
        let mut xy = vec![0.0; 2 * n];
        for f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            big.clear();
            for (r, c, v) in g.entries() {
                big.add(r, c, v);
                big.add(n + r, n + c, v);
            }
            for (r, c, v) in cap.entries() {
                big.add(r, n + c, -omega * v);
                big.add(n + r, c, omega * v);
            }
            lu.factor(&big)?;
            lu.solve_into(&rhs, &mut xy)?;
            solutions
                .push((0..n).map(|i| Complex::new(xy[i], xy[n + i])).collect());
        }
        Ok(solutions)
    }

    /// Stamps every capacitance (explicit capacitors plus MOS gate
    /// capacitances) into `cap` as conductance-shaped entries.
    fn stamp_capacitances<M: StampTarget + ?Sized>(&self, cap: &mut M) {
        for dev in self.circuit.devices() {
            match dev.kind() {
                DeviceKind::Capacitor { a, b, farads } => {
                    stamp::stamp_conductance(cap, *a, *b, *farads);
                }
                DeviceKind::Mosfet { d, g: gate, s, params, .. } => {
                    stamp::stamp_conductance(cap, *gate, *s, params.cgs());
                    stamp::stamp_conductance(cap, *gate, *d, params.cgd());
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;
    use std::f64::consts::PI;

    fn rc(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0)).unwrap();
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, c).unwrap();
        (ckt, out)
    }

    #[test]
    fn rc_magnitude_and_phase_match_transfer_function() {
        let (ckt, out) = rc(1e3, 1e-9);
        let f0 = 1.0 / (2.0 * PI * 1e3 * 1e-9);
        let sweep = AcAnalysis::new(&ckt)
            .source(AcSource { name: "V1".into(), magnitude: 1.0 })
            .run(&[f0 / 10.0, f0, f0 * 10.0])
            .unwrap();
        let mags = sweep.magnitude(out);
        let phases = sweep.phase(out);
        // Passband ≈ 1, pole = 1/√2 @ −45°, decade above ≈ −20 dB.
        assert!((mags[0] - 1.0).abs() < 0.01, "{mags:?}");
        assert!((mags[1] - 1.0 / 2.0_f64.sqrt()).abs() < 1e-6);
        assert!((phases[1] + PI / 4.0).abs() < 1e-6);
        assert!((mags[2] - 0.0995).abs() < 1e-3, "{mags:?}");
    }

    #[test]
    fn current_source_excitation_sees_impedance() {
        // 1 A AC into R ∥ C: |Z| at the pole = R/√2.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, Waveform::dc(0.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-9).unwrap();
        let f0 = 1.0 / (2.0 * PI * 1e3 * 1e-9);
        let sweep = AcAnalysis::new(&ckt)
            .source(AcSource { name: "I1".into(), magnitude: 1.0 })
            .run(&[f0])
            .unwrap();
        assert!((sweep.voltage(0, a).abs() - 1e3 / 2.0_f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn errors_on_missing_or_invalid_excitation() {
        let (ckt, _) = rc(1e3, 1e-9);
        assert!(matches!(
            AcAnalysis::new(&ckt).run(&[1e3]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            AcAnalysis::new(&ckt)
                .source(AcSource { name: "nope".into(), magnitude: 1.0 })
                .run(&[1e3]),
            Err(SpiceError::UnknownDevice { .. })
        ));
        assert!(matches!(
            AcAnalysis::new(&ckt)
                .source(AcSource { name: "R1".into(), magnitude: 1.0 })
                .run(&[1e3]),
            Err(SpiceError::InvalidValue { .. })
        ));
        assert!(matches!(
            AcAnalysis::new(&ckt)
                .source(AcSource { name: "V1".into(), magnitude: 1.0 })
                .run(&[0.0]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
    }

    #[test]
    fn ground_voltage_is_zero() {
        let (ckt, _) = rc(1e3, 1e-9);
        let sweep = AcAnalysis::new(&ckt)
            .source(AcSource { name: "V1".into(), magnitude: 1.0 })
            .run(&[1e3])
            .unwrap();
        assert_eq!(sweep.voltage(0, NodeId::GROUND), Complex::ZERO);
        assert_eq!(sweep.freqs(), &[1e3]);
        assert_eq!(sweep.node_count(), 2);
    }
}
