//! AC small-signal analysis.
//!
//! Linearizes the circuit around its DC operating point and solves the
//! complex MNA system `(G + jωC)·x = b` per frequency point. This is the
//! substrate for frequency-domain test configurations (gain, bandwidth,
//! phase margin) — a natural extension of the paper's configuration set,
//! exercised by the `ac_gain` extension experiments.
//!
//! `G` is the Jacobian of the static stamps at the operating point (the
//! same matrix the final Newton iteration used), `C` collects explicit
//! capacitors plus the MOSFETs' intrinsic gate capacitances, and `b`
//! holds unit-magnitude excitations on caller-designated independent
//! sources.
//!
//! Solver dispatch: small systems go through the dense complex LU
//! ([`CMatrix`]); large sparse systems (per
//! [`SolverKind`](crate::SolverKind) resolution) solve the equivalent
//! real 2n×2n system `[[G, −ωC], [ωC, G]] · [Re x; Im x] = [Re b; Im b]`
//! with the sparse real LU, whose symbolic analysis is shared across
//! all frequency points of the sweep (the pattern never changes — only
//! ω scales the capacitive entries).

use castg_numeric::{CMatrix, Complex, Matrix, SparseLu, SparseMatrix, StampTarget};

use crate::analysis::AnalysisOptions;
use crate::circuit::Circuit;
use crate::dc::DcAnalysis;
use crate::device::DeviceKind;
use crate::node::NodeId;
use crate::stamp;
use crate::stimulus::Waveform;
use crate::SpiceError;

/// One AC excitation: a named independent source driven with the given
/// small-signal magnitude (phase 0).
#[derive(Debug, Clone, PartialEq)]
pub struct AcSource {
    /// Name of the independent voltage or current source.
    pub name: String,
    /// Small-signal magnitude (volts or amperes).
    pub magnitude: f64,
}

/// Result of an AC sweep: complex node voltages per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    /// `solutions[i][n]` is the phasor of MNA unknown `n` at `freqs[i]`.
    solutions: Vec<Vec<Complex>>,
    n_nodes: usize,
}

impl AcSweep {
    /// The sweep frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Phasor of a node voltage at frequency index `i`.
    ///
    /// # Panics
    ///
    /// Panics if the index or node is out of range.
    pub fn voltage(&self, i: usize, node: NodeId) -> Complex {
        if node.is_ground() {
            Complex::ZERO
        } else {
            self.solutions[i][node.index() - 1]
        }
    }

    /// Magnitude response of a node over the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len()).map(|i| self.voltage(i, node).abs()).collect()
    }

    /// Phase response (radians) of a node over the sweep.
    pub fn phase(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len()).map(|i| self.voltage(i, node).arg()).collect()
    }

    /// Number of node-voltage unknowns the sweep solved for.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }
}

/// AC small-signal solver.
///
/// # Example
///
/// ```
/// use castg_spice::{AcAnalysis, AcSource, Circuit, Waveform};
///
/// // RC low-pass: |H| = 1/√2 at the pole frequency.
/// let mut c = Circuit::new();
/// let vin = c.node("in");
/// let out = c.node("out");
/// c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0))?;
/// c.add_resistor("R1", vin, out, 1e3)?;
/// c.add_capacitor("C1", out, Circuit::GROUND, 1e-9)?;
/// let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
/// let sweep = AcAnalysis::new(&c)
///     .source(AcSource { name: "V1".into(), magnitude: 1.0 })
///     .run(&[f0])?;
/// let h = sweep.voltage(0, out).abs();
/// assert!((h - 1.0 / 2.0_f64.sqrt()).abs() < 1e-6);
/// # Ok::<(), castg_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcAnalysis<'c> {
    circuit: &'c Circuit,
    options: AnalysisOptions,
    sources: Vec<AcSource>,
    overrides: Vec<(String, Waveform)>,
    /// Worker threads for the frequency fan-out; `None` = serial (see
    /// [`AcAnalysis::threads`]).
    threads: Option<usize>,
}

impl<'c> AcAnalysis<'c> {
    /// Creates an AC solver with default options and no excitations.
    pub fn new(circuit: &'c Circuit) -> Self {
        AcAnalysis {
            circuit,
            options: AnalysisOptions::default(),
            sources: Vec::new(),
            overrides: Vec::new(),
            threads: None,
        }
    }

    /// Creates an AC solver with explicit options.
    pub fn with_options(circuit: &'c Circuit, options: AnalysisOptions) -> Self {
        AcAnalysis {
            circuit,
            options,
            sources: Vec::new(),
            overrides: Vec::new(),
            threads: None,
        }
    }

    /// Adds an AC excitation on a named independent source.
    pub fn source(mut self, source: AcSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Overrides the waveform of a named independent source for the
    /// operating-point linearization (the DC bias this sweep
    /// linearizes around), without cloning or mutating the circuit.
    pub fn override_stimulus(mut self, name: impl Into<String>, wave: Waveform) -> Self {
        self.overrides.push((name.into(), wave));
        self
    }

    /// Sets the worker-thread count for the frequency fan-out.
    /// Frequency points are independent solves — the dense path
    /// outright, the sparse path after one shared symbolic analysis —
    /// so the per-point results are identical at any thread count.
    ///
    /// The default is **serial**: AC sweeps frequently run *inside* a
    /// worker pool (fault campaigns evaluate one sweep per work item),
    /// where an implicit hardware-parallelism fan-out per sweep would
    /// oversubscribe the machine. Standalone many-point sweeps opt in
    /// with `threads(available_parallelism)`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    fn worker_count(&self, points: usize) -> usize {
        self.threads.unwrap_or(1).clamp(1, points.max(1))
    }

    /// Solves the sweep at the given frequencies.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidAnalysis`] when no excitation was configured
    /// or a frequency is not positive; [`SpiceError::UnknownDevice`]
    /// when an excitation names a missing or non-source device; DC
    /// operating-point failures propagate.
    pub fn run(&self, freqs: &[f64]) -> Result<AcSweep, SpiceError> {
        if self.sources.is_empty() {
            return Err(SpiceError::InvalidAnalysis {
                reason: "ac analysis needs at least one excitation source".to_string(),
            });
        }
        if let Some(bad) = freqs.iter().find(|f| !(**f > 0.0 && f.is_finite())) {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!("ac frequency must be positive and finite, got {bad}"),
            });
        }

        let dc = DcAnalysis::with_options(self.circuit, self.options)
            .with_overrides(self.overrides.clone())
            .solve()?;
        let n = self.circuit.unknown_count();
        let n_nodes = self.circuit.node_count() - 1;

        // b: unit excitations (validated up front).
        let mut b = vec![Complex::ZERO; n];
        for src in &self.sources {
            let dev = self
                .circuit
                .device(&src.name)
                .ok_or_else(|| SpiceError::UnknownDevice { name: src.name.clone() })?;
            match dev.kind() {
                DeviceKind::Isource { from, to, .. } => {
                    if let Some(i) = stamp::idx(*from) {
                        b[i].re -= src.magnitude;
                    }
                    if let Some(i) = stamp::idx(*to) {
                        b[i].re += src.magnitude;
                    }
                }
                DeviceKind::Vsource { .. } => {
                    let br = self
                        .circuit
                        .branch_index(&src.name)
                        .expect("vsource has a branch index");
                    b[n_nodes + br].re += src.magnitude;
                }
                _ => {
                    return Err(SpiceError::InvalidValue {
                        device: src.name.clone(),
                        reason: "ac excitation requires an independent source".to_string(),
                    })
                }
            }
        }

        let plan = self.circuit.plan();
        let solutions = if self.options.solver.use_sparse(plan.as_ref()) {
            self.sweep_sparse(&dc, &b, freqs)?
        } else {
            self.sweep_dense(&dc, &b, freqs)?
        };
        Ok(AcSweep { freqs: freqs.to_vec(), solutions, n_nodes })
    }

    /// Splits `0..points` into `workers` contiguous chunks, runs
    /// `solve_chunk` on each from its own thread (inline when a single
    /// worker suffices), and stitches the per-chunk solutions back in
    /// frequency order. Point results do not depend on the chunking, so
    /// any worker count produces the identical sweep.
    fn fan_out<F>(
        points: usize,
        workers: usize,
        solve_chunk: F,
    ) -> Result<Vec<Vec<Complex>>, SpiceError>
    where
        F: Fn(std::ops::Range<usize>) -> Result<Vec<Vec<Complex>>, SpiceError> + Sync,
    {
        if workers <= 1 || points <= 1 {
            return solve_chunk(0..points);
        }
        let per = points.div_ceil(workers);
        let chunks: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| (w * per).min(points)..((w + 1) * per).min(points))
            .filter(|r| !r.is_empty())
            .collect();
        let mut results: Vec<Result<Vec<Vec<Complex>>, SpiceError>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|range| scope.spawn(|| solve_chunk(range)))
                .collect();
            for h in handles {
                results.push(h.join().expect("ac sweep worker must not panic"));
            }
        });
        let mut solutions = Vec::with_capacity(points);
        for chunk in results {
            solutions.extend(chunk?);
        }
        Ok(solutions)
    }

    /// Dense sweep: complex `n × n` LU per frequency point, points
    /// fanned out over worker threads (every point is an independent
    /// solve against the shared `G`/`C` matrices).
    fn sweep_dense(
        &self,
        dc: &crate::DcSolution,
        b: &[Complex],
        freqs: &[f64],
    ) -> Result<Vec<Vec<Complex>>, SpiceError> {
        let n = self.circuit.unknown_count();

        // G: the static Jacobian at the operating point (rhs discarded),
        // assembled through the compiled stamp plan.
        let plan = self.circuit.plan();
        let mut g = Matrix::zeros(n, n);
        let mut scratch_rhs = vec![0.0; n];
        let mut src_vals = Vec::new();
        plan.source_values(&mut src_vals, |w| w.dc_value());
        plan.assemble_into(dc.state(), &mut g, &mut scratch_rhs, self.options.gmin, &src_vals);

        // C: capacitive stamps (explicit capacitors + MOS gate caps).
        let mut cap = Matrix::zeros(n, n);
        self.stamp_capacitances(&mut cap);

        // One complex matrix per worker, reused (cleared and refilled)
        // for every frequency point of its chunk; only the retained
        // solution vector is allocated per point.
        Self::fan_out(freqs.len(), self.worker_count(freqs.len()), |range| {
            let mut solutions = Vec::with_capacity(range.len());
            let mut m = CMatrix::zeros(n);
            for f in &freqs[range] {
                let omega = 2.0 * std::f64::consts::PI * f;
                m.clear();
                for r in 0..n {
                    for c in 0..n {
                        let v = Complex::new(g[(r, c)], omega * cap[(r, c)]);
                        if v.re != 0.0 || v.im != 0.0 {
                            m.add(r, c, v);
                        }
                    }
                }
                let mut x = b.to_vec();
                m.solve_in_place(&mut x)?;
                solutions.push(x);
            }
            Ok(solutions)
        })
    }

    /// Sparse sweep: the complex system is embedded as the real
    /// `2n × 2n` system `[[G, −ωC], [ωC, G]]` over `[Re x; Im x]` and
    /// solved with the sparse LU. The embedding's pattern is frequency-
    /// independent, so one symbolic factorization (from the first
    /// point) is shared by `Arc` across all workers of the fan-out;
    /// every other point is a pure numeric refactorization with
    /// per-worker value storage. Each point re-seeds from the shared
    /// skeleton, so results are chunking- and thread-count-invariant
    /// (a stability fallback stays confined to its point).
    fn sweep_sparse(
        &self,
        dc: &crate::DcSolution,
        b: &[Complex],
        freqs: &[f64],
    ) -> Result<Vec<Vec<Complex>>, SpiceError> {
        let n = self.circuit.unknown_count();
        let plan = self.circuit.plan();

        // G in sparse form via the plan's cached template (the template
        // pattern also covers the capacitive slots; their G values stay
        // structurally zero).
        let mut g = plan.sparse_template(crate::stamp::PatternScope::Full).clone();
        let mut scratch_rhs = vec![0.0; n];
        let mut src_vals = Vec::new();
        plan.source_values(&mut src_vals, |w| w.dc_value());
        plan.assemble_into(dc.state(), &mut g, &mut scratch_rhs, self.options.gmin, &src_vals);

        // C over the dynamic (capacitive) slots only.
        let mut cap = SparseMatrix::from_entries(n, plan.dynamic_slots());
        self.stamp_capacitances(&mut cap);

        // Pattern of the real embedding: G's slots in both diagonal
        // blocks, C's slots in both off-diagonal blocks.
        let mut slots = Vec::with_capacity(2 * (g.nnz() + cap.nnz()));
        for (r, c, _) in g.entries() {
            slots.push((r, c));
            slots.push((n + r, n + c));
        }
        for (r, c, _) in cap.entries() {
            slots.push((r, n + c));
            slots.push((n + r, c));
        }
        let template = SparseMatrix::from_entries(2 * n, &slots);

        let mut rhs = vec![0.0; 2 * n];
        for (i, bi) in b.iter().enumerate() {
            rhs[i] = bi.re;
            rhs[n + i] = bi.im;
        }

        let stamp_point = |big: &mut SparseMatrix, f: f64| {
            let omega = 2.0 * std::f64::consts::PI * f;
            big.clear();
            for (r, c, v) in g.entries() {
                big.add(r, c, v);
                big.add(n + r, n + c, v);
            }
            for (r, c, v) in cap.entries() {
                big.add(r, n + c, -omega * v);
                big.add(n + r, c, omega * v);
            }
        };

        if freqs.is_empty() {
            return Ok(Vec::new());
        }

        // Prologue: the first point computes the shared symbolic
        // skeleton (and its own solution) serially. When the circuit's
        // ordering resolves to AMD (or BTF), the embedding gets its own
        // AMD/BTF run — its pattern couples the G and ωC blocks, so
        // neither the G permutation nor the G block partition transfers
        // — computed once here per sweep and carried to every other
        // frequency point inside the shared skeleton. A BTF resolution
        // whose embedding fails to condense (one block, or structurally
        // singular) falls back to the embedding's AMD ordering.
        let mut big = template.clone();
        let mut lu = SparseLu::new();
        match plan.resolve_ordering(self.options.ordering, crate::stamp::PatternScope::Full) {
            crate::solver::OrderingKind::Amd => {
                lu.set_ordering(big.pattern().amd_ordering());
            }
            crate::solver::OrderingKind::Btf => {
                match big.pattern().btf_order().filter(|b| b.block_count() > 1) {
                    Some(order) => lu.set_btf_order(std::sync::Arc::new(order)),
                    None => lu.set_ordering(big.pattern().amd_ordering()),
                }
            }
            _ => {}
        }
        let mut xy = vec![0.0; 2 * n];
        stamp_point(&mut big, freqs[0]);
        // In the 2n×2n real embedding the unknown behind pivot column
        // `p` is `p % n`; `singular_error` folds that for us.
        let circuit = self.circuit;
        lu.factor(&big).map_err(|e| circuit.singular_error(e))?;
        lu.solve_into(&rhs, &mut xy)?;
        let first: Vec<Complex> = (0..n).map(|i| Complex::new(xy[i], xy[n + i])).collect();
        let symbolic = lu.symbolic().expect("factored sparse LU has a skeleton");

        let rest = Self::fan_out(freqs.len() - 1, self.worker_count(freqs.len() - 1), |range| {
            let mut solutions = Vec::with_capacity(range.len());
            let mut big = template.clone();
            let mut lu = SparseLu::new();
            let mut xy = vec![0.0; 2 * n];
            for f in &freqs[range.start + 1..range.end + 1] {
                // Every point refactors from the shared first-point
                // skeleton, so its result cannot depend on what the
                // previous point in this worker's chunk did.
                if !lu
                    .symbolic()
                    .is_some_and(|s| std::sync::Arc::ptr_eq(&s, &symbolic))
                {
                    lu.seed_symbolic(std::sync::Arc::clone(&symbolic));
                }
                stamp_point(&mut big, *f);
                lu.factor(&big).map_err(|e| circuit.singular_error(e))?;
                lu.solve_into(&rhs, &mut xy)?;
                solutions.push((0..n).map(|i| Complex::new(xy[i], xy[n + i])).collect());
            }
            Ok(solutions)
        })?;

        let mut solutions = Vec::with_capacity(freqs.len());
        solutions.push(first);
        solutions.extend(rest);
        Ok(solutions)
    }

    /// Stamps every reactance into `cap`, scaled so the complex system
    /// is `G + jω·cap`: capacitances (explicit capacitors plus MOS gate
    /// capacitances) as conductance-shaped node entries, inductors as
    /// `−L` on their branch diagonal (the branch equation gains
    /// `−jωL·i`).
    fn stamp_capacitances<M: StampTarget + ?Sized>(&self, cap: &mut M) {
        let n_nodes = self.circuit.node_count() - 1;
        let mut branch = 0usize;
        for dev in self.circuit.devices() {
            match dev.kind() {
                DeviceKind::Capacitor { a, b, farads } => {
                    stamp::stamp_conductance(cap, *a, *b, *farads);
                }
                DeviceKind::Inductor { henries, .. } => {
                    cap.add(n_nodes + branch, n_nodes + branch, -henries);
                }
                DeviceKind::Mosfet { d, g: gate, s, params, .. } => {
                    stamp::stamp_conductance(cap, *gate, *s, params.cgs());
                    stamp::stamp_conductance(cap, *gate, *d, params.cgd());
                }
                DeviceKind::Diode { a, k, params } => {
                    stamp::stamp_conductance(cap, *a, *k, params.cj0);
                }
                DeviceKind::Bjt { c, b, e, params, .. } => {
                    stamp::stamp_conductance(cap, *b, *e, params.cje);
                    stamp::stamp_conductance(cap, *b, *c, params.cjc);
                }
                // Reactance-free devices — listed exhaustively so the
                // compiler forces every future device kind to decide
                // its AC stamp here.
                DeviceKind::Resistor { .. }
                | DeviceKind::Vsource { .. }
                | DeviceKind::Isource { .. }
                | DeviceKind::Vcvs { .. }
                | DeviceKind::Vccs { .. }
                | DeviceKind::Cccs { .. }
                | DeviceKind::Ccvs { .. } => {}
            }
            if dev.has_branch_current() {
                branch += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;
    use std::f64::consts::PI;

    fn rc(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0)).unwrap();
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, c).unwrap();
        (ckt, out)
    }

    #[test]
    fn rc_magnitude_and_phase_match_transfer_function() {
        let (ckt, out) = rc(1e3, 1e-9);
        let f0 = 1.0 / (2.0 * PI * 1e3 * 1e-9);
        let sweep = AcAnalysis::new(&ckt)
            .source(AcSource { name: "V1".into(), magnitude: 1.0 })
            .run(&[f0 / 10.0, f0, f0 * 10.0])
            .unwrap();
        let mags = sweep.magnitude(out);
        let phases = sweep.phase(out);
        // Passband ≈ 1, pole = 1/√2 @ −45°, decade above ≈ −20 dB.
        assert!((mags[0] - 1.0).abs() < 0.01, "{mags:?}");
        assert!((mags[1] - 1.0 / 2.0_f64.sqrt()).abs() < 1e-6);
        assert!((phases[1] + PI / 4.0).abs() < 1e-6);
        assert!((mags[2] - 0.0995).abs() < 1e-3, "{mags:?}");
    }

    #[test]
    fn current_source_excitation_sees_impedance() {
        // 1 A AC into R ∥ C: |Z| at the pole = R/√2.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, Waveform::dc(0.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-9).unwrap();
        let f0 = 1.0 / (2.0 * PI * 1e3 * 1e-9);
        let sweep = AcAnalysis::new(&ckt)
            .source(AcSource { name: "I1".into(), magnitude: 1.0 })
            .run(&[f0])
            .unwrap();
        assert!((sweep.voltage(0, a).abs() - 1e3 / 2.0_f64.sqrt()).abs() < 1e-6);
    }

    /// Series RLC driven at resonance: the reactances cancel, so the
    /// full source voltage appears across R and the output (across the
    /// capacitor) peaks at Q = √(L/C)/R.
    #[test]
    fn rlc_resonance_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        let (r, l, c) = (10.0, 1e-3, 1e-9);
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0)).unwrap();
        ckt.add_resistor("R1", vin, mid, r).unwrap();
        ckt.add_inductor("L1", mid, out, l).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, c).unwrap();
        let f0 = 1.0 / (2.0 * PI * (l * c).sqrt());
        let q = (l / c).sqrt() / r;
        for solver in [crate::SolverKind::Dense, crate::SolverKind::Sparse] {
            let opts = AnalysisOptions { solver, ..AnalysisOptions::default() };
            let sweep = AcAnalysis::with_options(&ckt, opts)
                .source(AcSource { name: "V1".into(), magnitude: 1.0 })
                .run(&[f0])
                .unwrap();
            let vc = sweep.voltage(0, out).abs();
            // The default gmin node shunts perturb the resonance at the
            // 1e-7 level; anything tighter would be testing gmin.
            assert!((vc - q).abs() / q < 1e-6, "{solver:?}: |V(C)| = {vc}, Q = {q}");
        }
    }

    /// DC (the operating point an AC run linearizes around) treats the
    /// inductor as a short carrying the loop current.
    #[test]
    fn dc_inductor_is_a_short() {
        use crate::DcAnalysis;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        ckt.add_resistor("R1", vin, mid, 1e3).unwrap();
        ckt.add_inductor("L1", mid, Circuit::GROUND, 1e-3).unwrap();
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((sol.voltage(mid)).abs() < 1e-9, "v(mid) = {}", sol.voltage(mid));
        let i = sol.source_current("L1").unwrap();
        assert!((i - 2e-3).abs() < 1e-9, "i(L1) = {i}");
    }

    #[test]
    fn errors_on_missing_or_invalid_excitation() {
        let (ckt, _) = rc(1e3, 1e-9);
        assert!(matches!(
            AcAnalysis::new(&ckt).run(&[1e3]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            AcAnalysis::new(&ckt)
                .source(AcSource { name: "nope".into(), magnitude: 1.0 })
                .run(&[1e3]),
            Err(SpiceError::UnknownDevice { .. })
        ));
        assert!(matches!(
            AcAnalysis::new(&ckt)
                .source(AcSource { name: "R1".into(), magnitude: 1.0 })
                .run(&[1e3]),
            Err(SpiceError::InvalidValue { .. })
        ));
        assert!(matches!(
            AcAnalysis::new(&ckt)
                .source(AcSource { name: "V1".into(), magnitude: 1.0 })
                .run(&[0.0]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
    }

    /// The frequency fan-out must produce the identical sweep at any
    /// worker count, dense and (forced) sparse.
    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        use crate::{AnalysisOptions, SolverKind};
        let (ckt, out) = rc(1e3, 1e-9);
        let freqs: Vec<f64> = (0..24).map(|i| 10.0_f64.powf(3.0 + i as f64 * 0.12)).collect();
        for solver in [SolverKind::Dense, SolverKind::Sparse] {
            let opts = AnalysisOptions { solver, ..AnalysisOptions::default() };
            let serial = AcAnalysis::with_options(&ckt, opts)
                .source(AcSource { name: "V1".into(), magnitude: 1.0 })
                .threads(1)
                .run(&freqs)
                .unwrap();
            for threads in [2, 5] {
                let parallel = AcAnalysis::with_options(&ckt, opts)
                    .source(AcSource { name: "V1".into(), magnitude: 1.0 })
                    .threads(threads)
                    .run(&freqs)
                    .unwrap();
                for i in 0..freqs.len() {
                    let (a, b) = (serial.voltage(i, out), parallel.voltage(i, out));
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "{solver:?} t={threads} i={i}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "{solver:?} t={threads} i={i}");
                }
            }
        }
    }

    /// An AC bias override must match mutating a copy of the circuit.
    #[test]
    fn ac_override_shifts_operating_point() {
        use castg_numeric::Complex;
        // Diode-connected NMOS: the small-signal impedance at the drain
        // depends on the bias current, so an overridden bias must move
        // the AC response exactly like a mutated circuit does.
        let mut c = Circuit::new();
        let d = c.node("d");
        c.add_isource("IB", Circuit::GROUND, d, Waveform::dc(50e-6)).unwrap();
        c.add_mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            crate::MosPolarity::Nmos,
            crate::MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        let run = |ckt: &Circuit, overridden: bool| -> Complex {
            let mut ac = AcAnalysis::new(ckt)
                .source(AcSource { name: "IB".into(), magnitude: 1e-6 });
            if overridden {
                ac = ac.override_stimulus("IB", Waveform::dc(200e-6));
            }
            ac.run(&[1e3]).unwrap().voltage(0, d)
        };
        let base = run(&c, false);
        let via_override = run(&c, true);
        let mut mutated = c.clone();
        mutated.set_stimulus("IB", Waveform::dc(200e-6)).unwrap();
        let via_mutation = run(&mutated, false);
        assert_ne!(base.abs().to_bits(), via_override.abs().to_bits());
        assert_eq!(via_override.re.to_bits(), via_mutation.re.to_bits());
        assert_eq!(via_override.im.to_bits(), via_mutation.im.to_bits());
    }

    #[test]
    fn ground_voltage_is_zero() {
        let (ckt, _) = rc(1e3, 1e-9);
        let sweep = AcAnalysis::new(&ckt)
            .source(AcSource { name: "V1".into(), magnitude: 1.0 })
            .run(&[1e3])
            .unwrap();
        assert_eq!(sweep.voltage(0, NodeId::GROUND), Complex::ZERO);
        assert_eq!(sweep.freqs(), &[1e3]);
        assert_eq!(sweep.node_count(), 2);
    }
}
