//! Thread-local convergence-ladder statistics.
//!
//! Every DC operating-point solve records where on the strategy ladder
//! it landed (and how many Newton iterations it spent in total) into
//! plain thread-local counters. Counters are *thread-local* rather than
//! process-global on purpose: a fault campaign sums each worker's delta
//! at join time, giving totals that are independent of scheduling and
//! of whatever other solves run concurrently in the same process (the
//! test harness runs many campaigns at once).
//!
//! Per-solve landings and iteration counts are bit-deterministic, so
//! any fixed set of solves produces the same [`LadderStats`] totals —
//! u64 sums commute — at any thread count.

use std::cell::Cell;

use crate::dc::NewtonStrategy;

/// Cumulative convergence-ladder counters of one thread (or, summed,
/// of a whole campaign): DC solves by landing strategy, DC solves that
/// exhausted the ladder, and total Newton iterations spent (transient
/// iterations included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LadderStats {
    /// DC solves landed by plain (undamped) Newton.
    pub plain: u64,
    /// DC solves landed by the damped rung.
    pub damped: u64,
    /// DC solves landed by gmin stepping.
    pub gmin_stepping: u64,
    /// DC solves landed by source stepping.
    pub source_stepping: u64,
    /// DC solves landed by pseudo-transient continuation.
    pub pseudo_transient: u64,
    /// DC solves that exhausted every rung (or their budget).
    pub unconverged: u64,
    /// Newton iterations spent, summed over all solves (DC rungs and
    /// transient timesteps alike).
    pub iterations: u64,
}

impl LadderStats {
    /// Total DC solves recorded (landed or not).
    pub fn solves(&self) -> u64 {
        self.plain
            + self.damped
            + self.gmin_stepping
            + self.source_stepping
            + self.pseudo_transient
            + self.unconverged
    }

    /// Element-wise difference (`self` must be a later snapshot of the
    /// same monotone counters than `earlier`).
    #[must_use]
    pub fn since(&self, earlier: &LadderStats) -> LadderStats {
        LadderStats {
            plain: self.plain - earlier.plain,
            damped: self.damped - earlier.damped,
            gmin_stepping: self.gmin_stepping - earlier.gmin_stepping,
            source_stepping: self.source_stepping - earlier.source_stepping,
            pseudo_transient: self.pseudo_transient - earlier.pseudo_transient,
            unconverged: self.unconverged - earlier.unconverged,
            iterations: self.iterations - earlier.iterations,
        }
    }
}

impl std::ops::Add for LadderStats {
    type Output = LadderStats;

    fn add(self, o: LadderStats) -> LadderStats {
        LadderStats {
            plain: self.plain + o.plain,
            damped: self.damped + o.damped,
            gmin_stepping: self.gmin_stepping + o.gmin_stepping,
            source_stepping: self.source_stepping + o.source_stepping,
            pseudo_transient: self.pseudo_transient + o.pseudo_transient,
            unconverged: self.unconverged + o.unconverged,
            iterations: self.iterations + o.iterations,
        }
    }
}

thread_local! {
    static COUNTERS: Cell<LadderStats> = const { Cell::new(LadderStats {
        plain: 0,
        damped: 0,
        gmin_stepping: 0,
        source_stepping: 0,
        pseudo_transient: 0,
        unconverged: 0,
        iterations: 0,
    }) };
}

/// This thread's cumulative ladder counters since it started. Take a
/// snapshot before and after a region and diff with
/// [`LadderStats::since`] to attribute its solves.
pub fn ladder_stats() -> LadderStats {
    COUNTERS.with(|c| c.get())
}

pub(crate) fn record_landing(strategy: NewtonStrategy) {
    COUNTERS.with(|c| {
        let mut s = c.get();
        match strategy {
            NewtonStrategy::Plain => s.plain += 1,
            NewtonStrategy::Damped => s.damped += 1,
            NewtonStrategy::GminStepping => s.gmin_stepping += 1,
            NewtonStrategy::SourceStepping => s.source_stepping += 1,
            NewtonStrategy::PseudoTransient => s.pseudo_transient += 1,
        }
        c.set(s);
    });
}

pub(crate) fn record_unconverged() {
    COUNTERS.with(|c| {
        let mut s = c.get();
        s.unconverged += 1;
        c.set(s);
    });
}

pub(crate) fn record_iterations(n: u64) {
    COUNTERS.with(|c| {
        let mut s = c.get();
        s.iterations += n;
        c.set(s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let before = ladder_stats();
        record_landing(NewtonStrategy::Plain);
        record_landing(NewtonStrategy::PseudoTransient);
        record_unconverged();
        record_iterations(42);
        let delta = ladder_stats().since(&before);
        assert_eq!(delta.plain, 1);
        assert_eq!(delta.pseudo_transient, 1);
        assert_eq!(delta.unconverged, 1);
        assert_eq!(delta.iterations, 42);
        assert_eq!(delta.solves(), 3);
    }

    #[test]
    fn add_is_elementwise() {
        let a = LadderStats { plain: 1, iterations: 10, ..LadderStats::default() };
        let b = LadderStats { damped: 2, iterations: 5, ..LadderStats::default() };
        let s = a + b;
        assert_eq!(s.plain, 1);
        assert_eq!(s.damped, 2);
        assert_eq!(s.iterations, 15);
    }
}
