//! Fixed-step transient analysis.
//!
//! Capacitors (explicit devices plus the MOSFETs' intrinsic gate
//! capacitances) are replaced by their integration companion models —
//! trapezoidal after the first step, backward Euler on the first step and
//! for sub-stepped recovery — and the resulting nonlinear system is
//! solved with the same damped Newton iteration as the DC analysis.
//!
//! The step size is caller-chosen and fixed; the test configurations of
//! the paper prescribe their own sample rates (100 MHz for the step
//! responses), so the engine simply honours whatever resolution the
//! configuration requests. A step that refuses to converge is retried
//! with a gmin-stepping ladder and then by recursive 8x step cutting
//! (up to 512x), which copes with steep stimulus ramps and with
//! operating-branch snaps such as an op-amp entering clipping.

use crate::analysis::AnalysisOptions;
use crate::budget::IterBudget;
use crate::circuit::Circuit;
use crate::dc::{resolve_overrides, DcAnalysis, NewtonScratch};
use crate::device::DeviceKind;
use crate::node::NodeId;
use crate::probe::{Probe, Trace};
use crate::stamp;
use crate::stimulus::Waveform;
use crate::SpiceError;

/// The [`JacobianKey`](crate::dc::JacobianKey) of a linear plan's
/// companion-augmented transient matrix: the companion conductances
/// `geq` are a pure function of the integration method and the step
/// size `h`, both carried verbatim (tags 1/2 keep the method spaces
/// disjoint from DC's zero tag and from each other).
fn companion_key(gmin: f64, method: IntegrationMethod, h: f64) -> crate::dc::JacobianKey {
    let tag: u64 = match method {
        IntegrationMethod::BackwardEuler => 1,
        IntegrationMethod::Trapezoidal => 2,
    };
    (gmin.to_bits(), tag, h.to_bits())
}

/// Time-integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrationMethod {
    /// First-order, L-stable; damps ringing but adds numerical loss.
    BackwardEuler,
    /// Second-order; the default, matching common SPICE practice.
    #[default]
    Trapezoidal,
}

/// Rewrites a gmin-ladder failure with the timepoint for diagnosis.
fn ladder_error(e: SpiceError, t1: f64) -> SpiceError {
    match e {
        SpiceError::NoConvergence { iterations, .. } => SpiceError::NoConvergence {
            analysis: format!("transient @ t={t1:.3e} (gmin ladder)"),
            iterations,
        },
        other => other,
    }
}

/// Levels of recursive 8× step cutting attempted on non-convergence.
const RETRY_DEPTH: usize = 3;

/// One energy-storage element tracked by the integrator, with its state
/// (`v_prev`/`i_prev`) at the previous accepted timepoint.
#[derive(Debug, Clone)]
enum DynElement {
    /// A capacitance between two nodes (explicit capacitors plus the
    /// MOSFETs' intrinsic gate capacitances). Its companion is a
    /// conductance `geq` between the nodes plus a history current.
    Cap { a: NodeId, b: NodeId, farads: f64, v_prev: f64, i_prev: f64 },
    /// An inductor riding MNA branch row `row` (absolute matrix index).
    /// Its companion is a resistance `req` on the branch diagonal plus a
    /// history voltage on the branch row's right-hand side.
    Ind { a: NodeId, b: NodeId, row: usize, henries: f64, v_prev: f64, i_prev: f64 },
}

/// Per-run solver state: the shared Newton scratch (compiled stamp
/// plan, matrix, rhs, LU workspace, update vector) plus the
/// transient-specific staging buffers. Allocated once in
/// [`TranAnalysis::run`]; every timestep and every Newton iteration
/// inside it then reuses these buffers.
#[derive(Debug)]
struct TranScratch {
    newton: NewtonScratch,
    /// Newton working state (candidate solution being iterated).
    x_iter: Vec<f64>,
    /// gmin-ladder stage state.
    x_stage: Vec<f64>,
    /// Per-element companion `(geq, i_hist)` for the current step.
    companions: Vec<(f64, f64)>,
}

impl TranScratch {
    fn new(
        circuit: &Circuit,
        n_dyns: usize,
        solver: crate::solver::SolverKind,
        ordering: crate::solver::OrderingKind,
        block_threads: usize,
    ) -> Self {
        // Transient stamps companion conductances into the dynamic
        // slots, so its Newton systems live on the full pattern.
        let newton = NewtonScratch::new(
            circuit,
            solver,
            ordering,
            block_threads,
            crate::stamp::PatternScope::Full,
        );
        let n = newton.plan.dim();
        TranScratch {
            newton,
            x_iter: vec![0.0; n],
            x_stage: vec![0.0; n],
            companions: Vec::with_capacity(n_dyns),
        }
    }
}

/// Fixed-step transient simulator for a [`Circuit`].
///
/// # Example
///
/// ```
/// use castg_spice::{Circuit, Probe, TranAnalysis, Waveform};
///
/// // RC low-pass step response: v(t) = 1 − e^(−t/RC).
/// let mut c = Circuit::new();
/// let inp = c.node("in");
/// let out = c.node("out");
/// c.add_vsource("V1", inp, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-9))?;
/// c.add_resistor("R1", inp, out, 1e3)?;
/// c.add_capacitor("C1", out, Circuit::GROUND, 1e-9)?; // τ = 1 µs
/// let trace = TranAnalysis::new(&c).run(5e-6, 10e-9, &[Probe::NodeVoltage(out)])?;
/// let v_end = *trace.column(0).last().unwrap();
/// assert!((v_end - 1.0).abs() < 0.01); // settled after 5 τ
/// # Ok::<(), castg_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TranAnalysis<'c> {
    circuit: &'c Circuit,
    options: AnalysisOptions,
    method: IntegrationMethod,
    overrides: Vec<(String, Waveform)>,
}

impl<'c> TranAnalysis<'c> {
    /// Creates a transient solver with default options (trapezoidal).
    pub fn new(circuit: &'c Circuit) -> Self {
        TranAnalysis {
            circuit,
            options: AnalysisOptions::default(),
            method: IntegrationMethod::default(),
            overrides: Vec::new(),
        }
    }

    /// Creates a transient solver with explicit options and method.
    pub fn with_options(
        circuit: &'c Circuit,
        options: AnalysisOptions,
        method: IntegrationMethod,
    ) -> Self {
        TranAnalysis { circuit, options, method, overrides: Vec::new() }
    }

    /// Overrides the waveform of a named independent source for this
    /// run only (including its internal DC operating-point solve),
    /// without cloning or mutating the circuit — bit-identical to
    /// running a copy mutated with [`Circuit::set_stimulus`].
    pub fn override_stimulus(mut self, name: impl Into<String>, wave: Waveform) -> Self {
        self.overrides.push((name.into(), wave));
        self
    }

    /// Runs from `t = 0` to `t_stop` with step `dt`, starting from the DC
    /// operating point, recording `probes` at every timepoint (including
    /// `t = 0`).
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidAnalysis`] for non-positive `t_stop`/`dt`,
    /// plus any DC or per-step convergence failure.
    pub fn run(&self, t_stop: f64, dt: f64, probes: &[Probe]) -> Result<Trace, SpiceError> {
        if !(t_stop > 0.0 && t_stop.is_finite() && dt > 0.0 && dt.is_finite()) {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!("need positive t_stop and dt, got t_stop={t_stop}, dt={dt}"),
            });
        }
        if dt > t_stop {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!("dt={dt} exceeds t_stop={t_stop}"),
            });
        }

        let dc = DcAnalysis::with_options(self.circuit, self.options)
            .with_overrides(self.overrides.clone())
            .solve()?;
        let mut x = dc.state().to_vec();

        let mut dyns = self.collect_dynamics(&x);
        let labels: Vec<String> = probes.iter().map(|p| p.label(self.circuit)).collect();
        let mut trace = Trace::new(labels);

        let mut row = Vec::with_capacity(probes.len());
        self.record(probes, &x, &mut row)?;
        trace.push_row(0.0, &row);

        let n_steps = (t_stop / dt - 1e-9).ceil().max(1.0) as usize;
        let mut scratch = TranScratch::new(
            self.circuit,
            dyns.len(),
            self.options.solver,
            self.options.ordering,
            self.options.block_threads,
        );
        scratch.newton.overrides = resolve_overrides(self.circuit, &self.overrides)?;

        // One budget for the whole run: every Newton iteration of every
        // timestep (ladder stages and sub-step retries included) charges
        // it. The initial DC operating point above runs under its own
        // equal per-analysis caps; a `with_solve_budget` overlay spans
        // both.
        let mut budget = IterBudget::start("transient", &self.options);
        for k in 1..=n_steps {
            let t1 = (k as f64) * dt;
            let t0 = t1 - dt;
            let method = if k == 1 { IntegrationMethod::BackwardEuler } else { self.method };
            self.advance(
                &mut x,
                &mut dyns,
                t0,
                t1,
                method,
                RETRY_DEPTH,
                &mut scratch,
                &mut budget,
            )?;
            self.record(probes, &x, &mut row)?;
            trace.push_row(t1, &row);
        }
        Ok(trace)
    }

    /// Advances `x` from `t0` to `t1` in one step, recursively cutting
    /// the interval into eight backward-Euler sub-steps on convergence
    /// failure (each cut multiplies the capacitive companion
    /// conductances by eight, anchoring the iteration; two levels give
    /// an effective 64× step reduction). `x` is updated in place on
    /// success and left at the last accepted state on failure.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        x: &mut [f64],
        dyns: &mut [DynElement],
        t0: f64,
        t1: f64,
        method: IntegrationMethod,
        depth: usize,
        scratch: &mut TranScratch,
        budget: &mut IterBudget,
    ) -> Result<(), SpiceError> {
        match self.step(x, dyns, t1, t1 - t0, method, scratch, budget) {
            Ok(()) => Ok(()),
            // A depleted budget caused the failure (or would cut every
            // sub-step off at its first iteration) — don't retry.
            Err(SpiceError::NoConvergence { .. }) if depth > 0 && !budget.depleted() => {
                let sub = 8;
                let h = (t1 - t0) / sub as f64;
                for j in 1..=sub {
                    let ta = t0 + h * (j - 1) as f64;
                    let tb = if j == sub { t1 } else { t0 + h * j as f64 };
                    self.advance(
                        x,
                        dyns,
                        ta,
                        tb,
                        IntegrationMethod::BackwardEuler,
                        depth - 1,
                        scratch,
                        budget,
                    )?;
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Gathers all energy-storage elements with their DC initial
    /// conditions: capacitors start at their DC voltage with zero
    /// current, inductors at zero voltage carrying their DC (short)
    /// branch current.
    fn collect_dynamics(&self, x: &[f64]) -> Vec<DynElement> {
        let n_nodes = self.circuit.node_count() - 1;
        let mut dyns = Vec::new();
        let mut branch = 0usize;
        for dev in self.circuit.devices() {
            match dev.kind() {
                DeviceKind::Capacitor { a, b, farads } => {
                    dyns.push(DynElement::Cap {
                        a: *a,
                        b: *b,
                        farads: *farads,
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                }
                DeviceKind::Inductor { a, b, henries } => {
                    dyns.push(DynElement::Ind {
                        a: *a,
                        b: *b,
                        row: n_nodes + branch,
                        henries: *henries,
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                }
                DeviceKind::Mosfet { d, g, s, params, .. } => {
                    dyns.push(DynElement::Cap {
                        a: *g,
                        b: *s,
                        farads: params.cgs(),
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                    dyns.push(DynElement::Cap {
                        a: *g,
                        b: *d,
                        farads: params.cgd(),
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                }
                DeviceKind::Diode { a, k, params } => {
                    dyns.push(DynElement::Cap {
                        a: *a,
                        b: *k,
                        farads: params.cj0,
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                }
                DeviceKind::Bjt { c, b, e, params, .. } => {
                    dyns.push(DynElement::Cap {
                        a: *b,
                        b: *e,
                        farads: params.cje,
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                    dyns.push(DynElement::Cap {
                        a: *b,
                        b: *c,
                        farads: params.cjc,
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                }
                // Storage-free devices — listed exhaustively so the
                // compiler forces every future device kind to decide
                // its transient contribution here.
                DeviceKind::Resistor { .. }
                | DeviceKind::Vsource { .. }
                | DeviceKind::Isource { .. }
                | DeviceKind::Vcvs { .. }
                | DeviceKind::Vccs { .. }
                | DeviceKind::Cccs { .. }
                | DeviceKind::Ccvs { .. } => {}
            }
            if dev.has_branch_current() {
                branch += 1;
            }
        }
        for el in &mut dyns {
            match el {
                DynElement::Cap { a, b, v_prev, i_prev, .. } => {
                    *v_prev = stamp::voltage_of(x, *a) - stamp::voltage_of(x, *b);
                    *i_prev = 0.0; // steady state: no capacitor current
                }
                DynElement::Ind { row, v_prev, i_prev, .. } => {
                    *v_prev = 0.0; // steady state: a short drops nothing
                    *i_prev = x[*row];
                }
            }
        }
        dyns
    }

    /// One Newton solve at time `t1` with step `h`; on success updates
    /// the dynamic-element states and `x` in place. On failure `x` is
    /// left untouched.
    ///
    /// If the warm-started Newton fails (e.g. the circuit snaps between
    /// operating branches, as an op-amp entering clipping does), the step
    /// is retried with a gmin-stepping ladder on the companion-augmented
    /// system before giving up.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        x: &mut [f64],
        dyns: &mut [DynElement],
        t1: f64,
        h: f64,
        method: IntegrationMethod,
        scratch: &mut TranScratch,
        budget: &mut IterBudget,
    ) -> Result<(), SpiceError> {
        let opts = &self.options;
        let TranScratch { newton, x_iter, x_stage, companions } = scratch;

        // Companion parameters per element (buffer reused across steps):
        // `(geq, history)` for capacitors, `(req, history)` for
        // inductors — both pure functions of (element, method, h) and
        // the previous accepted state.
        companions.clear();
        companions.extend(dyns.iter().map(|el| match (el, method) {
            (DynElement::Cap { farads, v_prev, .. }, IntegrationMethod::BackwardEuler) => {
                let geq = farads / h;
                (geq, geq * v_prev)
            }
            (DynElement::Cap { farads, v_prev, i_prev, .. }, IntegrationMethod::Trapezoidal) => {
                let geq = 2.0 * farads / h;
                (geq, geq * v_prev + i_prev)
            }
            // Inductor branch row: v(a) − v(b) − req·i = hist.
            (DynElement::Ind { henries, i_prev, .. }, IntegrationMethod::BackwardEuler) => {
                let req = henries / h;
                (req, -req * i_prev)
            }
            (DynElement::Ind { henries, v_prev, i_prev, .. }, IntegrationMethod::Trapezoidal) => {
                let req = 2.0 * henries / h;
                (req, -req * i_prev - v_prev)
            }
        }));

        let normal = (opts.max_step_v, opts.max_iter);
        x_iter.copy_from_slice(x);
        match self.newton_step(
            x_iter,
            companions,
            dyns,
            (t1, method, h),
            opts.gmin,
            normal,
            newton,
            budget,
        ) {
            Ok(()) => {}
            Err(SpiceError::NoConvergence { .. }) if !budget.depleted() => {
                // gmin ladder: solve a heavily shunted version first and
                // relax decade by decade, warm-starting each stage. The
                // first pass uses normal damping; if the circuit is
                // snapping between operating branches (clipping onset), a
                // second pass with much stronger damping and a higher
                // iteration budget usually lands it.
                let attempts =
                    [(1e-2, opts.max_step_v, opts.max_iter), (1e-1, 0.05, 4 * opts.max_iter)];
                let mut result = Err(SpiceError::NoConvergence {
                    analysis: format!("transient @ t={t1:.3e}"),
                    iterations: opts.max_iter,
                });
                'attempt: for (g_start, damp, iters) in attempts {
                    x_stage.copy_from_slice(x);
                    let mut gmin = g_start;
                    while gmin > opts.gmin {
                        x_iter.copy_from_slice(x_stage);
                        match self.newton_step(
                            x_iter,
                            companions,
                            dyns,
                            (t1, method, h),
                            gmin,
                            (damp, iters),
                            newton,
                            budget,
                        ) {
                            Ok(()) => x_stage.copy_from_slice(x_iter),
                            Err(e) => {
                                result = Err(ladder_error(e, t1));
                                continue 'attempt;
                            }
                        }
                        gmin /= 10.0;
                    }
                    x_iter.copy_from_slice(x_stage);
                    match self.newton_step(
                        x_iter,
                        companions,
                        dyns,
                        (t1, method, h),
                        opts.gmin,
                        (damp, iters),
                        newton,
                        budget,
                    ) {
                        Ok(()) => {
                            result = Ok(());
                            break 'attempt;
                        }
                        Err(e) => result = Err(ladder_error(e, t1)),
                    }
                }
                result?
            }
            Err(other) => return Err(other),
        }

        // Accept: the converged solution is in x_iter.
        x.copy_from_slice(x_iter);
        // Update element histories from the converged solution.
        for (el, (geq, hist)) in dyns.iter_mut().zip(companions.iter()) {
            match el {
                DynElement::Cap { a, b, v_prev, i_prev, .. } => {
                    let v_new = stamp::voltage_of(x, *a) - stamp::voltage_of(x, *b);
                    *i_prev = geq * v_new - hist;
                    *v_prev = v_new;
                }
                DynElement::Ind { a, b, row, v_prev, i_prev, .. } => {
                    *i_prev = x[*row];
                    *v_prev = stamp::voltage_of(x, *a) - stamp::voltage_of(x, *b);
                }
            }
        }
        Ok(())
    }

    /// The damped Newton iteration for one timepoint at fixed `gmin`,
    /// with explicit `(max_step_v, max_iter)` damping control. Iterates
    /// `x` in place, allocating nothing: the compiled stamp plan is
    /// replayed into the reused matrix, companions are added on top, and
    /// the LU workspace factors and solves into reused buffers.
    ///
    /// For a linear plan the companion-augmented Jacobian is a pure
    /// function of `(gmin, method, h)` — constant across the Newton
    /// iterations of a step *and across timesteps* at a fixed step
    /// size. The scratch's factorization-reuse key captures exactly
    /// that, so a fixed-step transient of a linear circuit factors
    /// once and then pays only rhs re-derivation + substitution per
    /// step, bit-identical to the always-refactor path. History terms
    /// (`i_hist`) live purely in the rhs and never break the reuse.
    #[allow(clippy::too_many_arguments)]
    fn newton_step(
        &self,
        x: &mut [f64],
        companions: &[(f64, f64)],
        dyns: &[DynElement],
        (t1, method, h): (f64, IntegrationMethod, f64),
        gmin: f64,
        (max_step_v, max_iter): (f64, usize),
        scratch: &mut NewtonScratch,
        budget: &mut IterBudget,
    ) -> Result<(), SpiceError> {
        scratch.eval_sources(|w| w.eval(t1));
        let NewtonScratch { plan, solver, rhs, x_new, src_vals, factored_for, .. } = scratch;
        let n = plan.dim();
        let n_nodes = self.circuit.node_count() - 1;
        let opts = &self.options;
        let reuse_key = companion_key(gmin, method, h);

        let mut spent = 0u64;
        let result = (|| {
            for _ in 0..max_iter {
                budget.charge()?;
                spent += 1;
                if plan.is_linear() && *factored_for == Some(reuse_key) {
                    plan.assemble_rhs_only(rhs, src_vals);
                } else {
                    *factored_for = None;
                    solver
                        .assemble_and_factor(plan, x, rhs, gmin, src_vals, |mat| {
                            for (el, (geq, _)) in dyns.iter().zip(companions) {
                                match el {
                                    DynElement::Cap { a, b, .. } => {
                                        stamp::stamp_conductance(mat, *a, *b, *geq);
                                    }
                                    DynElement::Ind { row, .. } => {
                                        // `geq` holds `req`; the branch equation
                                        // gains `−req·i`.
                                        mat.add(*row, *row, -geq);
                                    }
                                }
                            }
                        })
                        .map_err(|e| self.circuit.singular_error(e))?;
                    if plan.is_linear() {
                        *factored_for = Some(reuse_key);
                    }
                }
                for (el, (_, hist)) in dyns.iter().zip(companions) {
                    match el {
                        // The history term acts as a current source from b
                        // to a.
                        DynElement::Cap { a, b, .. } => stamp::stamp_current(rhs, *b, *a, *hist),
                        // The history term is the branch equation's rhs.
                        DynElement::Ind { row, .. } => rhs[*row] += hist,
                    }
                }
                solver.solve_into(rhs, x_new)?;

                let mut converged = true;
                let mut landed_exactly = true;
                for i in 0..n {
                    let mut delta = x_new[i] - x[i];
                    if !delta.is_finite() {
                        return Err(SpiceError::NoConvergence {
                            analysis: format!("transient @ t={t1:.3e} (non-finite)"),
                            iterations: max_iter,
                        });
                    }
                    // As in DC: only nonlinear-device terminals are damped.
                    let (tol, clamp) = if i < n_nodes {
                        let clamp = if plan.damped()[i] { max_step_v } else { f64::INFINITY };
                        (opts.vntol + opts.reltol * x_new[i].abs().max(x[i].abs()), clamp)
                    } else {
                        (opts.abstol + opts.reltol * x_new[i].abs().max(x[i].abs()), f64::INFINITY)
                    };
                    if delta.abs() > tol {
                        converged = false;
                    }
                    if delta.abs() > clamp {
                        delta = clamp.copysign(delta);
                    }
                    x[i] += delta;
                    landed_exactly &= crate::dc::landed_on(x[i], x_new[i]);
                }
                if converged {
                    return Ok(());
                }
                // As in DC: when a linear plan's update landed bit-exactly
                // on the solved state, the next iteration would reuse the
                // identical factors and rhs and produce an exactly-zero
                // update — skip the verification iteration.
                if plan.is_linear() && *factored_for == Some(reuse_key) && landed_exactly {
                    return Ok(());
                }
            }
            Err(SpiceError::NoConvergence {
                analysis: format!("transient @ t={t1:.3e}"),
                iterations: max_iter,
            })
        })();
        crate::stats::record_iterations(spent);
        result
    }

    fn record(&self, probes: &[Probe], x: &[f64], row: &mut Vec<f64>) -> Result<(), SpiceError> {
        row.clear();
        for p in probes {
            row.push(p.extract(self.circuit, x)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    fn rc_circuit(tau_r: f64, tau_c: f64) -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-9)).unwrap();
        c.add_resistor("R1", inp, out, tau_r).unwrap();
        c.add_capacitor("C1", out, Circuit::GROUND, tau_c).unwrap();
        (c, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (c, out) = rc_circuit(1e3, 1e-9); // τ = 1 µs
        let trace = TranAnalysis::new(&c).run(3e-6, 5e-9, &[Probe::NodeVoltage(out)]).unwrap();
        let tau = 1e-6;
        let mut worst = 0.0_f64;
        for (t, v) in trace.times().iter().zip(trace.column(0)) {
            // The source ramps over the first 1 ns; skip that region.
            if *t < 5e-9 {
                continue;
            }
            let expected = 1.0 - (-(t - 1e-9) / tau).exp();
            worst = worst.max((v - expected).abs());
        }
        assert!(worst < 5e-3, "worst deviation {worst}");
    }

    #[test]
    fn rc_sine_amplitude_matches_transfer_function() {
        // Drive at the pole frequency: |H| = 1/√2, phase −45°.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        let (r, cap) = (1e3, 1e-9);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * r * cap); // ≈159 kHz
        c.add_vsource("V1", inp, Circuit::GROUND, Waveform::sine(0.0, 1.0, f0)).unwrap();
        c.add_resistor("R1", inp, out, r).unwrap();
        c.add_capacitor("C1", out, Circuit::GROUND, cap).unwrap();
        let period = 1.0 / f0;
        let trace = TranAnalysis::new(&c)
            .run(8.0 * period, period / 200.0, &[Probe::NodeVoltage(out)])
            .unwrap();
        // Skip the first 5 periods (transient), measure peak of the rest.
        let n = trace.len();
        let peak = trace.column(0)[(5 * n / 8)..].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let expected = 1.0 / 2.0_f64.sqrt();
        assert!((peak - expected).abs() < 0.02, "peak {peak}, expected {expected}");
    }

    #[test]
    fn backward_euler_also_tracks_rc() {
        let (c, out) = rc_circuit(1e3, 1e-9);
        let trace = TranAnalysis::with_options(
            &c,
            AnalysisOptions::default(),
            IntegrationMethod::BackwardEuler,
        )
        .run(3e-6, 5e-9, &[Probe::NodeVoltage(out)])
        .unwrap();
        let v_end = *trace.column(0).last().unwrap();
        assert!((v_end - 0.95).abs() < 0.05, "v_end {v_end}");
    }

    #[test]
    fn source_current_probe_records_capacitor_charging() {
        let (c, _) = rc_circuit(1e3, 1e-9);
        let trace =
            TranAnalysis::new(&c).run(10e-6, 10e-9, &[Probe::SourceCurrent("V1".into())]).unwrap();
        // Just after the step the full 1 V sits across R: i = −1 mA
        // (SPICE convention: + to − through the source is positive).
        let i_early = trace.column(0)[1];
        assert!((i_early + 1e-3).abs() < 0.1e-3, "i_early {i_early}");
        // Fully charged: no current.
        let i_late = *trace.column(0).last().unwrap();
        assert!(i_late.abs() < 1e-5, "i_late {i_late}");
    }

    /// A transient stimulus override must reproduce the mutated-copy
    /// trace bit for bit (the linear fixture also exercises the
    /// factor-once-per-run Jacobian reuse on both paths).
    #[test]
    fn transient_override_matches_set_stimulus_bitwise() {
        let (c, out) = rc_circuit(1e3, 1e-9);
        let wave = Waveform::step(0.5, 1.5, 0.2e-6, 1e-9);
        let via_override = TranAnalysis::new(&c)
            .override_stimulus("V1", wave.clone())
            .run(2e-6, 10e-9, &[Probe::NodeVoltage(out)])
            .unwrap();
        let mut mutated = c.clone();
        mutated.set_stimulus("V1", wave).unwrap();
        let via_mutation =
            TranAnalysis::new(&mutated).run(2e-6, 10e-9, &[Probe::NodeVoltage(out)]).unwrap();
        assert_eq!(via_override.len(), via_mutation.len());
        for (a, b) in via_override.column(0).iter().zip(via_mutation.column(0)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// RL step response: i(t) = (V/R)·(1 − e^(−t·R/L)); the current is
    /// probed through the inductor's own branch unknown.
    #[test]
    fn rl_step_current_matches_analytic() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let mid = c.node("mid");
        c.add_vsource("V1", inp, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-9)).unwrap();
        c.add_resistor("R1", inp, mid, 1e3).unwrap();
        c.add_inductor("L1", mid, Circuit::GROUND, 1e-3).unwrap(); // τ = 1 µs
        let trace =
            TranAnalysis::new(&c).run(3e-6, 5e-9, &[Probe::SourceCurrent("L1".into())]).unwrap();
        let tau = 1e-3 / 1e3;
        let mut worst = 0.0_f64;
        for (t, i) in trace.times().iter().zip(trace.column(0)) {
            if *t < 5e-9 {
                continue; // source still ramping
            }
            let expected = 1e-3 * (1.0 - (-(t - 1e-9) / tau).exp());
            worst = worst.max((i - expected).abs());
        }
        assert!(worst < 5e-6, "worst current deviation {worst}");
    }

    /// Backward Euler also integrates the inductor (first step always
    /// uses it, and the sub-stepped recovery path relies on it).
    #[test]
    fn rl_backward_euler_settles() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let mid = c.node("mid");
        c.add_vsource("V1", inp, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-9)).unwrap();
        c.add_resistor("R1", inp, mid, 1e3).unwrap();
        c.add_inductor("L1", mid, Circuit::GROUND, 1e-3).unwrap();
        let trace = TranAnalysis::with_options(
            &c,
            AnalysisOptions::default(),
            IntegrationMethod::BackwardEuler,
        )
        .run(10e-6, 10e-9, &[Probe::SourceCurrent("L1".into())])
        .unwrap();
        let i_end = *trace.column(0).last().unwrap();
        assert!((i_end - 1e-3).abs() < 2e-5, "i_end {i_end}");
    }

    #[test]
    fn rejects_bad_time_parameters() {
        let (c, out) = rc_circuit(1e3, 1e-9);
        let tr = TranAnalysis::new(&c);
        assert!(tr.run(0.0, 1e-9, &[Probe::NodeVoltage(out)]).is_err());
        assert!(tr.run(1e-6, 0.0, &[Probe::NodeVoltage(out)]).is_err());
        assert!(tr.run(1e-9, 1e-6, &[Probe::NodeVoltage(out)]).is_err());
    }

    #[test]
    fn records_t_zero_and_final_time() {
        let (c, out) = rc_circuit(1e3, 1e-9);
        let trace = TranAnalysis::new(&c).run(1e-6, 1e-8, &[Probe::NodeVoltage(out)]).unwrap();
        assert_eq!(trace.times()[0], 0.0);
        let t_end = *trace.times().last().unwrap();
        assert!((t_end - 1e-6).abs() < 1e-12);
        assert_eq!(trace.len(), 101);
    }

    #[test]
    fn unknown_current_probe_errors() {
        let (c, _) = rc_circuit(1e3, 1e-9);
        let err = TranAnalysis::new(&c)
            .run(1e-7, 1e-8, &[Probe::SourceCurrent("nope".into())])
            .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownDevice { .. }));
    }
}
