//! Bipolar junction transistor: Ebers-Moll (transport form) for NPN and
//! PNP, built on the same limited pn-junction primitive as the diode
//! model ([`crate::diode::limited_junction`]), so both junctions stay
//! finite under arbitrary Newton overshoot and the model remains a pure
//! function of the terminal voltages.
//!
//! Transport-form equations (NPN frame, voltages in the device frame):
//!
//! ```text
//! icc = Is·(exp(vbe/Vt) − 1)        forward transport current
//! iec = Is·(exp(vbc/Vt) − 1)        reverse transport current
//! ic  = icc − iec·(1 + 1/βr)        current into the collector
//! ib  = icc/βf + iec/βr             current into the base
//! ie  = −(ic + ib)                  current into the emitter
//! ```
//!
//! PNP is handled by sign reflection exactly like `MosPolarity::Pmos`:
//! evaluate the NPN frame at negated junction voltages and negate the
//! resulting currents; the conductance partials carry over unchanged
//! (d(−f(−v))/dv = f′(−v)).

use crate::diode::{limited_junction, THERMAL_VOLTAGE};

/// NPN vs PNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BjtPolarity {
    /// NPN: conducts with base pulled above the emitter.
    Npn,
    /// PNP: conducts with base pulled below the emitter.
    Pnp,
}

/// Ebers-Moll parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtParams {
    /// Transport saturation current `Is` in amperes (> 0).
    pub is_sat: f64,
    /// Forward current gain `βf` (> 0).
    pub bf: f64,
    /// Reverse current gain `βr` (> 0).
    pub br: f64,
    /// Base-emitter junction capacitance in farads (≥ 0).
    pub cje: f64,
    /// Base-collector junction capacitance in farads (≥ 0).
    pub cjc: f64,
}

impl BjtParams {
    /// Generic small-signal silicon transistor (2N3904-class).
    pub fn signal_default() -> Self {
        BjtParams { is_sat: 1e-15, bf: 100.0, br: 2.0, cje: 4e-12, cjc: 2e-12 }
    }
}

/// Linearization of the BJT at a bias point: terminal currents into the
/// collector and base (emitter implied by KCL) plus the four junction
/// partials needed to build the 3×3 terminal conductance block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtOperatingPoint {
    /// Current into the collector (A).
    pub ic: f64,
    /// Current into the base (A).
    pub ib: f64,
    /// ∂ic/∂vbe.
    pub dic_dvbe: f64,
    /// ∂ic/∂vbc.
    pub dic_dvbc: f64,
    /// ∂ib/∂vbe.
    pub dib_dvbe: f64,
    /// ∂ib/∂vbc.
    pub dib_dvbc: f64,
}

/// Evaluates the transistor at terminal voltages `(vc, vb, ve)`.
///
/// The returned currents and partials are already reflected for PNP, so
/// callers stamp identically for both polarities. Both junction
/// exponentials go through [`limited_junction`], which continues them
/// linearly past the critical voltage — see the diode module docs for
/// why that (plus the plan's damped mask) is the junction-limiting
/// strategy.
pub fn evaluate(params: &BjtParams, polarity: BjtPolarity, vc: f64, vb: f64, ve: f64) -> BjtOperatingPoint {
    let sign = match polarity {
        BjtPolarity::Npn => 1.0,
        BjtPolarity::Pnp => -1.0,
    };
    let vbe = sign * (vb - ve);
    let vbc = sign * (vb - vc);
    let (icc, gf) = limited_junction(params.is_sat, THERMAL_VOLTAGE, vbe);
    let (iec, gr) = limited_junction(params.is_sat, THERMAL_VOLTAGE, vbc);
    let ic = icc - iec * (1.0 + 1.0 / params.br);
    let ib = icc / params.bf + iec / params.br;
    BjtOperatingPoint {
        ic: sign * ic,
        ib: sign * ib,
        dic_dvbe: gf,
        dic_dvbc: -gr * (1.0 + 1.0 / params.br),
        dib_dvbe: gf / params.bf,
        dib_dvbc: gr / params.br,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bjt() -> BjtParams {
        BjtParams::signal_default()
    }

    #[test]
    fn forward_active_npn_has_beta_current_gain() {
        let p = bjt();
        // vbe = 0.65 V, vbc = −4 V: firmly forward-active.
        let op = evaluate(&p, BjtPolarity::Npn, 5.0, 0.65, 0.0);
        assert!(op.ic > 0.0 && op.ib > 0.0);
        let beta = op.ic / op.ib;
        assert!((beta - p.bf).abs() / p.bf < 0.01, "beta = {beta}");
    }

    #[test]
    fn cutoff_leaks_only_saturation_scale_currents() {
        let p = bjt();
        let op = evaluate(&p, BjtPolarity::Npn, 5.0, 0.0, 0.0);
        assert!(op.ic.abs() < 1e-12 && op.ib.abs() < 1e-12);
    }

    #[test]
    fn pnp_mirrors_npn_by_sign_reflection() {
        let p = bjt();
        let npn = evaluate(&p, BjtPolarity::Npn, 5.0, 0.65, 0.0);
        let pnp = evaluate(&p, BjtPolarity::Pnp, -5.0, -0.65, 0.0);
        assert_eq!(npn.ic.to_bits(), (-pnp.ic).to_bits());
        assert_eq!(npn.ib.to_bits(), (-pnp.ib).to_bits());
        assert_eq!(npn.dic_dvbe.to_bits(), pnp.dic_dvbe.to_bits());
        assert_eq!(npn.dib_dvbc.to_bits(), pnp.dib_dvbc.to_bits());
    }

    #[test]
    fn kcl_holds_at_every_bias() {
        let p = bjt();
        for &(vc, vb, ve) in &[(5.0, 0.65, 0.0), (0.2, 0.7, 0.0), (0.0, 0.0, 0.0), (-1.0, 0.5, 0.3)] {
            let op = evaluate(&p, BjtPolarity::Npn, vc, vb, ve);
            let ie = -(op.ic + op.ib);
            assert!((op.ic + op.ib + ie).abs() == 0.0, "KCL at ({vc},{vb},{ve})");
        }
    }

    #[test]
    fn limiting_keeps_saturated_overshoot_finite() {
        let p = bjt();
        for polarity in [BjtPolarity::Npn, BjtPolarity::Pnp] {
            let op = evaluate(&p, polarity, -30.0, 40.0, -40.0);
            assert!(op.ic.is_finite() && op.ib.is_finite(), "{polarity:?}");
            assert!(op.dic_dvbe.is_finite() && op.dib_dvbc.is_finite());
        }
    }

    /// Central-difference check of all four partials across cutoff,
    /// forward-active, saturation, and reverse-active biases, both
    /// polarities.
    #[test]
    fn derivatives_match_finite_differences() {
        let p = bjt();
        let h = 1e-7;
        let biases = [
            (5.0, 0.0, 0.0),   // cutoff
            (5.0, 0.65, 0.0),  // forward active
            (0.1, 0.7, 0.0),   // saturation
            (0.0, 0.6, 5.0),   // reverse active
            (2.0, 2.5, 1.8),   // shifted common-mode
        ];
        for polarity in [BjtPolarity::Npn, BjtPolarity::Pnp] {
            let s = match polarity {
                BjtPolarity::Npn => 1.0,
                BjtPolarity::Pnp => -1.0,
            };
            for &(vc, vb, ve) in &biases {
                let (vc, vb, ve) = (s * vc, s * vb, s * ve);
                let op = evaluate(&p, polarity, vc, vb, ve);
                // Perturbing vb moves vbe and vbc together; perturbing
                // ve (vc) isolates −∂/∂vbe (−∂/∂vbc).
                let fd_ic_vbe = -(evaluate(&p, polarity, vc, vb, ve + h).ic
                    - evaluate(&p, polarity, vc, vb, ve - h).ic)
                    / (2.0 * h);
                let fd_ic_vbc = -(evaluate(&p, polarity, vc + h, vb, ve).ic
                    - evaluate(&p, polarity, vc - h, vb, ve).ic)
                    / (2.0 * h);
                let fd_ib_vbe = -(evaluate(&p, polarity, vc, vb, ve + h).ib
                    - evaluate(&p, polarity, vc, vb, ve - h).ib)
                    / (2.0 * h);
                let fd_ib_vbc = -(evaluate(&p, polarity, vc + h, vb, ve).ib
                    - evaluate(&p, polarity, vc - h, vb, ve).ib)
                    / (2.0 * h);
                for (name, got, fd) in [
                    ("dic_dvbe", op.dic_dvbe, fd_ic_vbe),
                    ("dic_dvbc", op.dic_dvbc, fd_ic_vbc),
                    ("dib_dvbe", op.dib_dvbe, fd_ib_vbe),
                    ("dib_dvbc", op.dib_dvbc, fd_ib_vbc),
                ] {
                    let scale = got.abs().max(1e-12);
                    assert!(
                        (got - fd).abs() < 1e-4 * scale + 1e-12,
                        "{name} mismatch for {polarity:?} at ({vc},{vb},{ve}): {got} vs fd {fd}"
                    );
                }
            }
        }
    }
}
