//! Probes select which quantities a transient run records, and [`Trace`]
//! holds the recorded waveforms.

use crate::circuit::Circuit;
use crate::node::NodeId;
use crate::SpiceError;

/// A quantity to record during transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// The voltage of a node.
    NodeVoltage(NodeId),
    /// The branch current of a named voltage-defined device (voltage
    /// source or VCVS), SPICE sign convention.
    SourceCurrent(String),
}

impl Probe {
    /// Human-readable label, resolving node names through the circuit.
    pub fn label(&self, circuit: &Circuit) -> String {
        match self {
            Probe::NodeVoltage(n) => format!("v({})", circuit.node_name(*n)),
            Probe::SourceCurrent(name) => format!("i({name})"),
        }
    }

    /// Extracts the probed value from an MNA state vector.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownDevice`] for a current probe naming a device
    /// without a branch current.
    pub(crate) fn extract(&self, circuit: &Circuit, state: &[f64]) -> Result<f64, SpiceError> {
        let n_nodes = circuit.node_count() - 1;
        match self {
            Probe::NodeVoltage(n) => {
                Ok(if n.is_ground() { 0.0 } else { state[n.index() - 1] })
            }
            Probe::SourceCurrent(name) => {
                let idx = circuit
                    .branch_index(name)
                    .ok_or_else(|| SpiceError::UnknownDevice { name: name.clone() })?;
                Ok(state[n_nodes + idx])
            }
        }
    }
}

/// Uniformly sampled multi-channel waveform data from a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    times: Vec<f64>,
    labels: Vec<String>,
    /// One column per probe, each `times.len()` long.
    columns: Vec<Vec<f64>>,
}

impl Trace {
    pub(crate) fn new(labels: Vec<String>) -> Self {
        let n = labels.len();
        Trace { times: Vec::new(), labels, columns: vec![Vec::new(); n] }
    }

    pub(crate) fn push_row(&mut self, t: f64, values: &[f64]) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.times.push(t);
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(*v);
        }
    }

    /// The sample instants.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of samples per channel.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Channel labels, in probe order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Samples of channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn column(&self, i: usize) -> &[f64] {
        &self.columns[i]
    }

    /// Samples of the channel with the given label (e.g. `"v(out)"`).
    pub fn column_by_label(&self, label: &str) -> Option<&[f64]> {
        self.labels.iter().position(|l| l == label).map(|i| self.columns[i].as_slice())
    }

    /// The (uniform) sample interval; `None` with fewer than two samples.
    pub fn dt(&self) -> Option<f64> {
        if self.times.len() < 2 {
            None
        } else {
            Some(self.times[1] - self.times[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_node_names() {
        let mut c = Circuit::new();
        let out = c.node("out");
        assert_eq!(Probe::NodeVoltage(out).label(&c), "v(out)");
        assert_eq!(Probe::SourceCurrent("VDD".into()).label(&c), "i(VDD)");
    }

    #[test]
    fn trace_accumulates_rows() {
        let mut t = Trace::new(vec!["a".into(), "b".into()]);
        t.push_row(0.0, &[1.0, 2.0]);
        t.push_row(1e-9, &[3.0, 4.0]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.column(0), &[1.0, 3.0]);
        assert_eq!(t.column_by_label("b"), Some(&[2.0, 4.0][..]));
        assert_eq!(t.column_by_label("missing"), None);
        assert_eq!(t.dt(), Some(1e-9));
    }

    #[test]
    fn empty_trace_has_no_dt() {
        let t = Trace::new(vec!["x".into()]);
        assert!(t.is_empty());
        assert_eq!(t.dt(), None);
    }
}
