//! Stimulus waveforms for independent sources.
//!
//! These mirror the stimulus templates of the paper's Table 1: DC levels
//! for configurations #1/#2, a DC-offset sine for the THD configuration
//! #3, and the `L(t=0: base, t=10ns: base+elev, t=∞: base+elev)` ramped
//! step for configurations #4/#5 (also expressible as [`Waveform::Pwl`]).

use std::f64::consts::PI;

/// A time-dependent source value.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + amplitude·sin(2π·freq·(t − delay) + phase)`, held at its
    /// `t = delay` value before `delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Phase in radians at `t = delay`.
        phase: f64,
        /// Start time in seconds.
        delay: f64,
    },
    /// A linear ramp from `base` (before `t_step`) to `base + elev`
    /// (after `t_step + t_rise`). `t_rise` is the paper's slew-rate knob.
    Step {
        /// Level before the step.
        base: f64,
        /// Elevation added by the step.
        elev: f64,
        /// Time at which the ramp starts.
        t_step: f64,
        /// Ramp duration; `0` gives an ideal (single-timestep) step.
        t_rise: f64,
    },
    /// A periodic trapezoidal pulse (SPICE `PULSE`-like).
    Pulse {
        /// Level outside the pulse.
        low: f64,
        /// Level during the pulse.
        high: f64,
        /// Time of the first rising edge.
        delay: f64,
        /// Rise time.
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Width of the flat top.
        width: f64,
        /// Repetition period; `0` disables repetition.
        period: f64,
    },
    /// Piece-wise linear interpolation through `(t, value)` points,
    /// clamped to the first/last value outside the covered range.
    /// Points must be sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Convenience constructor for a DC waveform.
    pub fn dc(value: f64) -> Self {
        Waveform::Dc(value)
    }

    /// Convenience constructor for a phase-zero sine starting at `t = 0`.
    pub fn sine(offset: f64, amplitude: f64, freq: f64) -> Self {
        Waveform::Sine { offset, amplitude, freq, phase: 0.0, delay: 0.0 }
    }

    /// Convenience constructor for the paper's step stimulus: ramp from
    /// `base` to `base + elev` starting at `t_step` over `t_rise` seconds.
    pub fn step(base: f64, elev: f64, t_step: f64, t_rise: f64) -> Self {
        Waveform::Step { base, elev, t_step, t_rise }
    }

    /// Value of the waveform at time `t` (seconds).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Sine { offset, amplitude, freq, phase, delay } => {
                let tt = (t - delay).max(0.0);
                offset + amplitude * (2.0 * PI * freq * tt + phase).sin()
            }
            Waveform::Step { base, elev, t_step, t_rise } => {
                if t <= *t_step {
                    *base
                } else if *t_rise <= 0.0 || t >= t_step + t_rise {
                    base + elev
                } else {
                    base + elev * (t - t_step) / t_rise
                }
            }
            Waveform::Pulse { low, high, delay, rise, fall, width, period } => {
                let mut tt = t - delay;
                if tt < 0.0 {
                    return *low;
                }
                if *period > 0.0 {
                    tt %= period;
                }
                if tt < *rise {
                    if *rise <= 0.0 {
                        *high
                    } else {
                        low + (high - low) * tt / rise
                    }
                } else if tt < rise + width {
                    *high
                } else if tt < rise + width + fall {
                    if *fall <= 0.0 {
                        *low
                    } else {
                        high - (high - low) * (tt - rise - width) / fall
                    }
                } else {
                    *low
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let idx = points.partition_point(|(pt, _)| *pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 <= t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
        }
    }

    /// Value used for the DC operating point (the `t = 0` value).
    pub fn dc_value(&self) -> f64 {
        self.eval(0.0)
    }

    /// Time points at which the waveform is non-smooth. Transient analysis
    /// aligns steps to these so ramps are never stepped over.
    pub fn breakpoints(&self) -> Vec<f64> {
        match self {
            Waveform::Dc(_) => Vec::new(),
            Waveform::Sine { delay, .. } => {
                if *delay > 0.0 {
                    vec![*delay]
                } else {
                    Vec::new()
                }
            }
            Waveform::Step { t_step, t_rise, .. } => vec![*t_step, t_step + t_rise.max(0.0)],
            Waveform::Pulse { delay, rise, fall, width, .. } => {
                vec![*delay, delay + rise, delay + rise + width, delay + rise + width + fall]
            }
            Waveform::Pwl(points) => points.iter().map(|(t, _)| *t).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(2.5);
        assert_eq!(w.eval(0.0), 2.5);
        assert_eq!(w.eval(1e6), 2.5);
        assert_eq!(w.dc_value(), 2.5);
    }

    #[test]
    fn sine_basic_properties() {
        let w = Waveform::sine(1.0, 0.5, 1_000.0);
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12); // phase 0 at t=0
        assert!((w.eval(0.25e-3) - 1.5).abs() < 1e-9); // quarter period: peak
        assert!((w.eval(0.75e-3) - 0.5).abs() < 1e-9); // trough
        assert!((w.eval(1e-3) - 1.0).abs() < 1e-9); // full period
    }

    #[test]
    fn sine_holds_before_delay() {
        let w = Waveform::Sine { offset: 2.0, amplitude: 1.0, freq: 1e3, phase: 0.0, delay: 1e-3 };
        assert_eq!(w.eval(0.0), 2.0);
        assert_eq!(w.eval(0.5e-3), 2.0);
    }

    #[test]
    fn step_ramp_shape() {
        // Paper Table 1: L(t=0: base, t=10ns: base+elev, t=inf: base+elev)
        let w = Waveform::step(1.0, 2.0, 0.0, 10e-9);
        assert_eq!(w.eval(0.0), 1.0);
        assert!((w.eval(5e-9) - 2.0).abs() < 1e-9); // midpoint of ramp
        assert_eq!(w.eval(10e-9), 3.0);
        assert_eq!(w.eval(1.0), 3.0);
    }

    #[test]
    fn step_with_zero_rise_is_ideal() {
        let w = Waveform::step(0.0, 1.0, 1e-6, 0.0);
        assert_eq!(w.eval(1e-6), 0.0); // value *at* the step time is base
        assert_eq!(w.eval(1.0000001e-6), 1.0);
    }

    #[test]
    fn pulse_shape_and_periodicity() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert_eq!(w.eval(0.5), 0.0);
        assert!((w.eval(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(1.2), 1.0); // flat top
        assert!((w.eval(1.45) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(1.8), 0.0);
        assert_eq!(w.eval(2.2), 1.0); // next period's flat top
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert_eq!(w.eval(0.5), 5.0);
        assert_eq!(w.eval(1.5), 10.0);
        assert_eq!(w.eval(5.0), 10.0);
    }

    #[test]
    fn pwl_empty_is_zero() {
        assert_eq!(Waveform::Pwl(vec![]).eval(1.0), 0.0);
    }

    #[test]
    fn breakpoints_cover_discontinuities() {
        let w = Waveform::step(0.0, 1.0, 2e-6, 10e-9);
        assert_eq!(w.breakpoints(), vec![2e-6, 2.01e-6]);
        assert!(Waveform::dc(1.0).breakpoints().is_empty());
    }

    #[test]
    fn dc_value_of_step_is_base() {
        let w = Waveform::step(0.25, 0.5, 0.0, 10e-9);
        assert_eq!(w.dc_value(), 0.25);
    }
}
