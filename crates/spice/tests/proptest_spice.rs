//! Property-based tests of the simulator against closed-form circuit
//! theory on randomly generated linear networks.

use castg_spice::{Circuit, DcAnalysis, Probe, TranAnalysis, Waveform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A two-resistor divider matches v·r2/(r1+r2) for any positive
    /// resistor values across six orders of magnitude.
    #[test]
    fn divider_ratio_matches_theory(
        v in 0.1f64..100.0,
        r1 in 1.0f64..1e6,
        r2 in 1.0f64..1e6,
    ) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(v)).unwrap();
        c.add_resistor("R1", vin, out, r1).unwrap();
        c.add_resistor("R2", out, Circuit::GROUND, r2).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let expected = v * r2 / (r1 + r2);
        let got = sol.voltage(out);
        prop_assert!((got - expected).abs() < 1e-6 * expected.abs().max(1.0) + 1e-5,
            "got {got}, expected {expected}");
    }

    /// A ladder of series resistors conserves current: the source branch
    /// current equals v / ΣR.
    #[test]
    fn series_ladder_current(
        v in 0.5f64..50.0,
        rs in prop::collection::vec(10.0f64..1e5, 2..8),
    ) {
        let mut c = Circuit::new();
        let top = c.node("n0");
        c.add_vsource("V1", top, Circuit::GROUND, Waveform::dc(v)).unwrap();
        let mut prev = top;
        for (i, r) in rs.iter().enumerate() {
            let next = if i + 1 == rs.len() {
                Circuit::GROUND
            } else {
                c.node(&format!("n{}", i + 1))
            };
            c.add_resistor(&format!("R{i}"), prev, next, *r).unwrap();
            prev = next;
        }
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let total: f64 = rs.iter().sum();
        let i_src = sol.source_current("V1").unwrap();
        // SPICE convention: current + → − through the source is −v/ΣR.
        prop_assert!((i_src + v / total).abs() < 1e-6 * (v / total) + 1e-9,
            "i = {i_src}, expected {}", -v / total);
    }

    /// Current sources into resistive loads obey Ohm's law.
    #[test]
    fn isource_ohms_law(i in 1e-6f64..1e-2, r in 10.0f64..1e5) {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_isource("I1", Circuit::GROUND, a, Waveform::dc(i)).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, r).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        prop_assert!((sol.voltage(a) - i * r).abs() < 1e-6 * i * r + 1e-9);
    }

    /// An RC step response never overshoots and ends between the rails.
    #[test]
    fn rc_step_is_monotone_and_bounded(
        r in 100.0f64..10e3,
        cap in 1e-10f64..1e-8,
        v in 0.5f64..10.0,
    ) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::step(0.0, v, 0.0, 1e-9)).unwrap();
        c.add_resistor("R1", vin, out, r).unwrap();
        c.add_capacitor("C1", out, Circuit::GROUND, cap).unwrap();
        let tau = r * cap;
        let trace = TranAnalysis::new(&c)
            .run(5.0 * tau, tau / 40.0, &[Probe::NodeVoltage(out)])
            .unwrap();
        let vals = trace.column(0);
        for w in vals.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6 * v, "non-monotone: {} -> {}", w[0], w[1]);
        }
        for val in vals {
            prop_assert!(*val >= -1e-6 && *val <= v * (1.0 + 1e-6));
        }
        // After 5τ the output is within 1 % of the rail.
        prop_assert!((vals.last().unwrap() - v).abs() < 0.011 * v);
    }

    /// VCVS gain is exact for arbitrary gains.
    #[test]
    fn vcvs_gain_exact(vin in -5.0f64..5.0, gain in -50.0f64..50.0) {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, Circuit::GROUND, Waveform::dc(vin)).unwrap();
        c.add_vcvs("E1", out, Circuit::GROUND, inp, Circuit::GROUND, gain).unwrap();
        c.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        prop_assert!((sol.voltage(out) - gain * vin).abs() < 1e-6 * (gain * vin).abs() + 1e-6);
    }
}
