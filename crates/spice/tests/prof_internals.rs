//! Wall-clock decomposition of the campaign hot paths on the n = 256
//! ladder — a cargo-runnable sanity probe between full criterion runs.
//! All tests are `#[ignore]`d; run with
//!
//! ```text
//! cargo test --release -p castg-spice --test prof_internals -- --ignored --nocapture
//! ```
use castg_spice::{Circuit, DcAnalysis, SolverKind, AnalysisOptions, Waveform};
use std::time::Instant;

fn ladder(sections: usize) -> Circuit {
    let mut c = Circuit::new();
    let src = c.node("src");
    let mut prev = c.node("in");
    c.add_vsource("V1", src, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
    c.add_resistor("Rsrc", src, prev, 1e3).unwrap();
    for i in 1..=sections {
        let tap = c.node(&format!("n{i}"));
        c.add_resistor(&format!("Rs{i}"), prev, tap, 1e3).unwrap();
        c.add_resistor(&format!("Rp{i}"), tap, Circuit::GROUND, 1e9).unwrap();
        c.add_capacitor(&format!("Cp{i}"), tap, Circuit::GROUND, 10e-12).unwrap();
        prev = tap;
    }
    c
}

#[test]
#[ignore]
fn prof_warm_solve_decomposition() {
    let c = ladder(253);
    c.compile_plan();
    let _ = DcAnalysis::new(&c).solve().unwrap();
    let reps = 3000u32;

    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        let sol = DcAnalysis::new(std::hint::black_box(&c)).solve().unwrap();
        acc += sol.voltages()[1];
    }
    println!("full warm solve: {:?} acc={acc}", t0.elapsed() / reps);

    // Solve with max_iter=1 fails; instead time a solve with a warm x0
    // (converges in 1 iteration from the solution).
    let sol = DcAnalysis::new(&c).solve().unwrap();
    let x0 = sol.state().to_vec();
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = std::hint::black_box(
            DcAnalysis::new(&c).solve_from(std::hint::black_box(&x0)).unwrap(),
        );
    }
    println!("warm-start solve (1 iter): {:?}", t0.elapsed() / reps);

    let opts = AnalysisOptions { solver: SolverKind::Dense, ..Default::default() };
    let t0 = Instant::now();
    let r2 = 200u32;
    for _ in 0..r2 {
        let _ = std::hint::black_box(DcAnalysis::with_options(&c, opts).solve().unwrap());
    }
    println!("dense solve: {:?}", t0.elapsed() / r2);
}

#[test]
#[ignore]
fn prof_transient_step() {
    use castg_spice::{Probe, TranAnalysis};
    let c = ladder(253);
    c.compile_plan();
    let out = c.find_node("n253").unwrap();
    let _ = TranAnalysis::new(&c).run(2e-6, 0.05e-6, &[Probe::NodeVoltage(out)]).unwrap();
    let reps = 300u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = std::hint::black_box(
            TranAnalysis::new(&c)
                .override_stimulus("V1", Waveform::step(1.0, 2.0, 0.2e-6, 0.05e-6))
                .run(2e-6, 0.05e-6, &[Probe::NodeVoltage(out)])
                .unwrap(),
        );
    }
    println!("warm transient (40 steps): {:?}", t0.elapsed() / reps);
}
