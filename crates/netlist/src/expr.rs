//! The deck expression language: arithmetic over numbers and parameter
//! references, written `{1k*ratio}` on cards and `.param` lines.
//!
//! Grammar (classic precedence, left-associative):
//!
//! ```text
//! expr    := term   (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := ('+' | '-')* primary
//! primary := number | identifier | '(' expr ')'
//! ```
//!
//! Numbers are full SPICE literals — scale suffixes and trailing units
//! included (`10k`, `2.5MEG`, `1.5pF`) — read by [`crate::parse_number`]
//! so `{10k}` and `10k` are the same value bit for bit. Identifiers are
//! parameter references resolved through a [`Lookup`]; an undefined name
//! or a `.param` reference cycle surfaces as an error, never a panic or
//! a hang. Nesting depth is capped so hostile input (`((((…`) cannot
//! overflow the stack.

use crate::number::parse_number;

/// How deep parentheses/unary chains may nest before evaluation bails
/// out. Hostile decks are parsed with the same code paths as friendly
/// ones, so this is sized for fuzz safety, not for real netlists (which
/// rarely exceed depth 3).
const MAX_EXPR_DEPTH: usize = 64;

/// Resolves a parameter reference to its value.
///
/// The lazy `.param` resolver implements this to recurse into not-yet-
/// resolved definitions (detecting cycles); fully-resolved scopes are
/// plain maps.
pub(crate) trait Lookup {
    /// The value of `name`, or a human-readable reason it has none.
    fn lookup(&mut self, name: &str) -> Result<f64, String>;
}

impl Lookup for &std::collections::HashMap<String, f64> {
    fn lookup(&mut self, name: &str) -> Result<f64, String> {
        self.get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| format!("undefined parameter `{name}`"))
    }
}

/// Evaluates an expression (the text between `{` and `}`, braces
/// excluded) against a parameter scope.
///
/// # Errors
///
/// A human-readable message for syntax errors, undefined parameters,
/// over-deep nesting, and non-finite results (division by zero,
/// overflow). The caller attaches line/column context.
pub(crate) fn eval(text: &str, scope: &mut dyn Lookup) -> Result<f64, String> {
    let mut p = Parser { chars: text.char_indices().peekable(), text, scope };
    let v = p.expr(0)?;
    p.skip_ws();
    if let Some(&(_, c)) = p.chars.peek() {
        return Err(format!("unexpected `{c}` in expression `{text}`"));
    }
    if !v.is_finite() {
        return Err(format!("expression `{text}` does not evaluate to a finite number"));
    }
    Ok(v)
}

struct Parser<'a, 's> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
    scope: &'s mut dyn Lookup,
}

impl Parser<'_, '_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expr(&mut self, depth: usize) -> Result<f64, String> {
        let mut acc = self.term(depth)?;
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&(_, '+')) => {
                    self.chars.next();
                    acc += self.term(depth)?;
                }
                Some(&(_, '-')) => {
                    self.chars.next();
                    acc -= self.term(depth)?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self, depth: usize) -> Result<f64, String> {
        let mut acc = self.factor(depth)?;
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&(_, '*')) => {
                    self.chars.next();
                    acc *= self.factor(depth)?;
                }
                Some(&(_, '/')) => {
                    self.chars.next();
                    acc /= self.factor(depth)?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self, depth: usize) -> Result<f64, String> {
        if depth >= MAX_EXPR_DEPTH {
            return Err(format!(
                "expression `{}` nests deeper than {MAX_EXPR_DEPTH} levels",
                self.text
            ));
        }
        self.skip_ws();
        match self.chars.peek() {
            Some(&(_, '+')) => {
                self.chars.next();
                self.factor(depth + 1)
            }
            Some(&(_, '-')) => {
                self.chars.next();
                Ok(-self.factor(depth + 1)?)
            }
            _ => self.primary(depth),
        }
    }

    fn primary(&mut self, depth: usize) -> Result<f64, String> {
        self.skip_ws();
        let Some(&(start, c)) = self.chars.peek() else {
            return Err(format!("expression `{}` ends where a value was expected", self.text));
        };
        if c == '(' {
            self.chars.next();
            let v = self.expr(depth + 1)?;
            self.skip_ws();
            match self.chars.next() {
                Some((_, ')')) => Ok(v),
                _ => Err(format!("unclosed `(` in expression `{}`", self.text)),
            }
        } else if c.is_ascii_digit() || c == '.' {
            // A SPICE number literal: digits/dot/exponent, then an
            // alphabetic scale-suffix-plus-unit trailer. `*`/`/`/`)`
            // and whitespace end it.
            let mut end = start;
            let mut prev = '\0';
            while let Some(&(i, ch)) = self.chars.peek() {
                let take = ch.is_ascii_alphanumeric()
                    || ch == '.'
                    || ((ch == '+' || ch == '-') && matches!(prev, 'e' | 'E'));
                if !take {
                    break;
                }
                end = i + ch.len_utf8();
                prev = ch;
                self.chars.next();
            }
            let tok = &self.text[start..end];
            parse_number(tok).ok_or_else(|| format!("bad number `{tok}` in expression"))
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut end = start;
            while let Some(&(i, ch)) = self.chars.peek() {
                if !(ch.is_ascii_alphanumeric() || ch == '_') {
                    break;
                }
                end = i + ch.len_utf8();
                self.chars.next();
            }
            self.scope.lookup(&self.text[start..end])
        } else {
            Err(format!("unexpected `{c}` in expression `{}`", self.text))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn scope(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn ev(text: &str, pairs: &[(&str, f64)]) -> Result<f64, String> {
        eval(text, &mut &scope(pairs))
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ev("1+2*3", &[]), Ok(7.0));
        assert_eq!(ev("(1+2)*3", &[]), Ok(9.0));
        assert_eq!(ev("8/2/2", &[]), Ok(2.0)); // left-associative
        assert_eq!(ev("10-3-2", &[]), Ok(5.0));
        assert_eq!(ev(" 2 * ( 3 + 4 ) ", &[]), Ok(14.0));
    }

    #[test]
    fn unary_signs() {
        assert_eq!(ev("-5", &[]), Ok(-5.0));
        assert_eq!(ev("--5", &[]), Ok(5.0));
        assert_eq!(ev("2*-3", &[]), Ok(-6.0));
        assert_eq!(ev("-(1+2)", &[]), Ok(-3.0));
    }

    #[test]
    fn spice_literals_inside_expressions() {
        assert_eq!(ev("1k", &[]), Ok(1e3));
        assert_eq!(ev("2.5MEG", &[]), Ok(2.5e6));
        assert_eq!(ev("1k*2", &[]), Ok(2e3));
        assert_eq!(ev("1e-5", &[]), Ok(1e-5));
        // Exactness: `{10p}` is the literal parse, not 10 * 1e-12.
        assert_eq!(ev("10p", &[]).map(f64::to_bits), Ok(10e-12f64.to_bits()));
    }

    #[test]
    fn parameter_references() {
        assert_eq!(ev("ratio", &[("ratio", 4.0)]), Ok(4.0));
        assert_eq!(ev("1k*ratio", &[("ratio", 2.0)]), Ok(2e3));
        // Lookup is case-insensitive like every other deck identifier.
        assert_eq!(ev("RATIO", &[("ratio", 4.0)]), Ok(4.0));
        assert!(ev("missing", &[]).unwrap_err().contains("undefined parameter"));
    }

    #[test]
    fn malformed_expressions_error_cleanly() {
        for bad in ["", "1+", "(1", "1)", "*3", "1 2", "1..2", "#", "a-", "2**3"] {
            assert!(ev(bad, &[("a", 1.0)]).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn non_finite_results_are_rejected() {
        assert!(ev("1/0", &[]).is_err());
        assert!(ev("1e308*1e308", &[]).is_err());
    }

    #[test]
    fn depth_is_capped() {
        let deep = format!("{}1{}", "(".repeat(1000), ")".repeat(1000));
        assert!(ev(&deep, &[]).unwrap_err().contains("nests deeper"));
        assert!(ev(&"-".repeat(1000), &[]).is_err());
        // Under the cap still works.
        let ok = format!("{}1{}", "(".repeat(32), ")".repeat(32));
        assert_eq!(ev(&ok, &[]), Ok(1.0));
    }
}
