//! SPICE number literals: a float with an optional scale suffix and an
//! optional trailing unit (`10k`, `2.5MEG`, `1.5pF`, `-30uA`, `4.7e3`).

/// Parses a SPICE number token. Returns `None` when the token does not
/// start with a number or carries a non-alphabetic trailer.
///
/// Scale suffixes (case-insensitive): `t`=1e12, `g`=1e9, `meg`=1e6,
/// `k`=1e3, `m`=1e-3, `mil`=25.4e-6, `u`=1e-6, `n`=1e-9, `p`=1e-12,
/// `f`=1e-15. Any alphabetic characters after the suffix are units and
/// are ignored (`10kOhm` = 1e4, `5V` = 5).
pub fn parse_number(token: &str) -> Option<f64> {
    let t = token.trim();
    if t.is_empty() {
        return None;
    }
    // Fast path: a plain Rust float literal (also covers `1e-5`, whose
    // `e` the suffix scanner must not treat as a unit).
    if let Ok(v) = t.parse::<f64>() {
        return if v.is_finite() { Some(v) } else { None };
    }

    let bytes = t.as_bytes();
    let mut end = 0usize;
    while end < bytes.len() {
        let c = bytes[end];
        let ok = c.is_ascii_digit()
            || c == b'.'
            || ((c == b'+' || c == b'-')
                && (end == 0 || bytes[end - 1] == b'e' || bytes[end - 1] == b'E'))
            || ((c == b'e' || c == b'E') && end > 0 && {
                // An exponent only when something numeric can follow.
                match bytes.get(end + 1) {
                    Some(d) if d.is_ascii_digit() => true,
                    Some(b'+') | Some(b'-') => {
                        matches!(bytes.get(end + 2), Some(d) if d.is_ascii_digit())
                    }
                    _ => false,
                }
            });
        if !ok {
            break;
        }
        end += 1;
    }
    if end == 0 {
        return None;
    }
    let value: f64 = t[..end].parse().ok()?;
    if !value.is_finite() {
        return None;
    }
    let suffix = t[end..].to_ascii_lowercase();
    if suffix.is_empty() {
        return Some(value);
    }
    if !suffix.chars().all(|c| c.is_ascii_alphabetic()) {
        return None;
    }
    // Power-of-ten scales are applied by splicing the exponent into the
    // literal and re-parsing, so `20u` yields exactly the f64 nearest
    // 2e-5 (a multiply by the inexact 1e-6 constant would be one ulp
    // off). `mil` is not a power of ten and multiplies.
    let exp: Option<i32> = if suffix.starts_with("meg") {
        Some(6)
    } else if suffix.starts_with("mil") {
        return Some(value * 25.4e-6);
    } else if suffix.starts_with('t') {
        Some(12)
    } else if suffix.starts_with('g') {
        Some(9)
    } else if suffix.starts_with('k') {
        Some(3)
    } else if suffix.starts_with('m') {
        Some(-3)
    } else if suffix.starts_with('u') {
        Some(-6)
    } else if suffix.starts_with('n') {
        Some(-9)
    } else if suffix.starts_with('p') {
        Some(-12)
    } else if suffix.starts_with('f') {
        Some(-15)
    } else {
        // No scale — the whole trailer is a unit.
        None
    };
    match exp {
        None => Some(value),
        Some(e) => {
            let mantissa = &t[..end];
            if !mantissa.contains(['e', 'E']) {
                if let Ok(v) = format!("{mantissa}e{e}").parse::<f64>() {
                    if v.is_finite() {
                        return Some(v);
                    }
                }
            }
            let v = value * 10f64.powi(e);
            if v.is_finite() {
                Some(v)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_scientific() {
        assert_eq!(parse_number("5"), Some(5.0));
        assert_eq!(parse_number("-2.5"), Some(-2.5));
        assert_eq!(parse_number("4.7e3"), Some(4700.0));
        assert_eq!(parse_number("1e-5"), Some(1e-5));
        assert_eq!(parse_number("1E+2"), Some(100.0));
    }

    #[test]
    fn scale_suffixes() {
        assert_eq!(parse_number("10k"), Some(10e3));
        assert_eq!(parse_number("2.5MEG"), Some(2.5e6));
        assert_eq!(parse_number("1m"), Some(1e-3));
        assert_eq!(parse_number("1mil"), Some(25.4e-6));
        assert_eq!(parse_number("20u"), Some(20e-6));
        assert_eq!(parse_number("3n"), Some(3e-9));
        assert_eq!(parse_number("4p"), Some(4e-12));
        assert_eq!(parse_number("1.5f"), Some(1.5e-15));
        assert_eq!(parse_number("2T"), Some(2e12));
        assert_eq!(parse_number("7G"), Some(7e9));
    }

    #[test]
    fn units_are_ignored() {
        assert_eq!(parse_number("10kOhm"), Some(10e3));
        assert_eq!(parse_number("5V"), Some(5.0));
        assert_eq!(parse_number("-30uA"), Some(-30e-6));
        assert_eq!(parse_number("1.5pF"), Some(1.5e-12));
    }

    #[test]
    fn rejects_non_numbers() {
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number("k10"), None);
        assert_eq!(parse_number("1.2.3"), None);
        assert_eq!(parse_number("10k!"), None);
        assert_eq!(parse_number("nan"), None);
        assert_eq!(parse_number("inf"), None);
        assert_eq!(parse_number("1e"), Some(1.0)); // trailing unit `e`
    }

    #[test]
    fn debug_float_output_round_trips() {
        // The deck writer prints values with `{:?}`; the parser must
        // read them back bit-exactly.
        for v in [5.0f64, 39e3, 1.5e-12, 25.4e-6, -0.9, 2.3e-3, 1.0 / 3.0] {
            let s = format!("{v:?}");
            assert_eq!(parse_number(&s).map(f64::to_bits), Some(v.to_bits()), "{s}");
        }
    }
}
