use std::error::Error;
use std::fmt;

/// Errors of the SPICE-deck frontend.
///
/// The parser never panics and never loops: malformed input of any kind
/// — including arbitrary byte soup — comes back as a
/// [`NetlistError::Parse`] carrying the 1-based source line and column
/// of the offending token (for continuation lines, the line number of
/// the logical line's first physical line and the column within the
/// joined text).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// The deck text is malformed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// 1-based column within the (joined) logical line.
        col: usize,
        /// What was wrong.
        reason: String,
    },
    /// The deck parsed but cannot be lowered into a circuit (duplicate
    /// device names after flattening, invalid element values, missing
    /// models, …).
    Netlist {
        /// 1-based source line of the offending card.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A circuit cannot be written as a deck (device or node names the
    /// card format cannot carry).
    Unrepresentable {
        /// What cannot be expressed.
        reason: String,
    },
    /// Reading a deck or configuration file failed.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        reason: String,
    },
    /// Loading or interpreting the paired configuration descriptions
    /// failed.
    Config {
        /// What was wrong.
        reason: String,
    },
}

impl NetlistError {
    /// Convenience constructor for parse errors.
    pub(crate) fn parse(line: usize, col: usize, reason: impl Into<String>) -> Self {
        NetlistError::Parse { line, col, reason: reason.into() }
    }

    /// Convenience constructor for lowering errors.
    pub(crate) fn netlist(line: usize, reason: impl Into<String>) -> Self {
        NetlistError::Netlist { line, reason: reason.into() }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse { line, col, reason } => {
                write!(f, "parse error at line {line}, column {col}: {reason}")
            }
            NetlistError::Netlist { line, reason } => {
                write!(f, "netlist error at line {line}: {reason}")
            }
            NetlistError::Unrepresentable { reason } => {
                write!(f, "circuit not representable as a deck: {reason}")
            }
            NetlistError::Io { path, reason } => write!(f, "cannot read {path}: {reason}"),
            NetlistError::Config { reason } => write!(f, "configuration error: {reason}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location() {
        let e = NetlistError::parse(3, 7, "bad token");
        let s = e.to_string();
        assert!(s.contains("line 3"));
        assert!(s.contains("column 7"));
        assert!(s.contains("bad token"));
        assert!(NetlistError::netlist(2, "x").to_string().contains("line 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
