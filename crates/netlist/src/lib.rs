//! `castg-netlist` — the SPICE-deck frontend for `castg`.
//!
//! Every other crate in this workspace consumes a
//! [`castg_spice::Circuit`] built in Rust; this crate lets a circuit
//! arrive as a **SPICE deck** instead, so the paper's
//! generate → compact → evaluate pipeline can be pointed at a macro it
//! was never compiled with:
//!
//! * [`parse_deck`] — deck text → lowered [`Circuit`]. Device cards
//!   `R`/`C`/`L`/`V`/`I`/`M` (Level-1 models via `.model nmos`/`pmos`
//!   cards, `W=`/`L=` instance geometry), `D` (diode, `.model <name> d`
//!   with `is`/`n`/`rs`/`cjo` keys), `Q` (BJT, `.model <name>
//!   npn`/`pnp` with `is`/`bf`/`br`/`cje`/`cjc` keys; unset keys fall
//!   back to the signal defaults), and all four controlled sources —
//!   `E` (VCVS) and `G` (VCCS) sensing a node-voltage pair, `F` (CCCS)
//!   and `H` (CCVS) sensing the branch current of a named controller
//!   device, which must carry a branch current (a `V`, `E`, `H` or `L`
//!   card) and must appear **before** the card that senses it. Plus
//!   `.subckt`/`.ends` with `X` instantiation (flattened, internals
//!   prefixed `<instance>.<name>`), scale suffixes (`10k`, `2.5MEG`,
//!   `1.5pF`),
//!   line continuations (`+`), comments (`*` lines, `;`/` $`
//!   trailers — `.title` lines are exempt, like real SPICE), `.title`,
//!   `.end`, and source values `DC`, `SIN`, `PULSE`, `PWL` and the
//!   `STEP` extension mirroring the paper's ramped step template. Net,
//!   model and subcircuit names are case-insensitive (SPICE rules; the
//!   first spelling of a net is kept as its canonical name). Errors
//!   never panic and carry line/column (1-based char positions).
//!
//!   **Parameters and expressions.** `.param name=value …` defines
//!   deck-global parameters; anywhere a number is expected, a braced
//!   expression `{…}` evaluates arithmetic (`+ - * / ( )`, unary
//!   signs) over SPICE literals and parameter references:
//!
//!   ```text
//!   .param ratio=2 rbase=1k
//!   .param rtot={rbase*ratio}      ; forward/backward refs both fine
//!   R1 in out {rtot/2}
//!   V1 in 0 DC {1+ratio}
//!   ```
//!
//!   Definitions resolve lazily, so order does not matter; reference
//!   cycles and undefined names are reported with the defining line,
//!   never looped on. [`parse_deck_with_params`] lets a caller (the
//!   `castg --param NAME=VALUE` flag) shadow deck definitions or add
//!   new ones, and [`Deck::params`] reports the resolved values.
//!   `.subckt` headers may declare parameter defaults after the ports,
//!   and `X` cards may override them per instance — overrides are
//!   evaluated in the caller's scope and shadow globals inside the
//!   body; un-overridden defaults evaluate in declaration order:
//!
//!   ```text
//!   .subckt leg a b r=1k rr={2*r}
//!   R1 a m {r}
//!   R2 m b {rr}
//!   .ends
//!   X1 in out leg              ; r=1k, rr=2k
//!   X2 out 0  leg r=500        ; r=500, rr=1k
//!   ```
//! * [`write_deck`] / [`write_deck_with_title`] — [`Circuit`] → deck
//!   text, exact round-trip (`parse(write(c)) == c`, bit for bit, the
//!   `.title` included) via the `.nodeorder` extension card and
//!   bit-exact deduplicated model tables (`castg_m*`/`castg_d*`/
//!   `castg_q*` for MOS/diode/BJT parameter sets); this is
//!   how the committed deck fixtures are regenerated from the
//!   hand-built reference macros. Written decks carry only resolved
//!   values — `.param` and `{…}` never appear in writer output.
//! * [`NetlistMacro`] — a parsed deck + a directory of textual
//!   configuration descriptions ([`castg_core::DescribedConfig`]) + a
//!   topology-derived fault dictionary
//!   ([`castg_faults::derive_fault_dictionary`]), implementing
//!   [`castg_core::AnalogMacro`]. Parsed macros share one compiled
//!   stamp plan across the whole campaign, so they evaluate at the
//!   same faults/sec as compiled ones.
//!
//! # Deck-to-report quickstart
//!
//! ```
//! use castg_core::{compact, evaluate_test_set, test_instances_from_compaction,
//!                  AnalogMacro, CompactionOptions, Generator, NominalCache};
//! use castg_netlist::NetlistMacro;
//!
//! // Any macro netlist — here a resistor divider with one output.
//! let deck = "\
//! .title R-divider
//! V1 vin 0 DC 5
//! R1 vin mid 1k
//! R2 mid out 1k
//! R3 out 0 2k
//! ";
//! let mac = NetlistMacro::from_deck_text("divider", deck)?;
//!
//! // Configurations normally come from description files
//! // (`NetlistMacro::from_files(deck, configs_dir, options)`); build
//! // one inline here.
//! let cfg = castg_core::DescribedConfig::new(1, castg_core::ConfigDescription::parse(
//!     "macro type: R-divider\n\
//!      test configuration: DC output\n\
//!      control vin: dc(lev)\n\
//!      observe out: dc()\n\
//!      return: dV(out)\n\
//!      parameter lev: 1 .. 8\n\
//!      variable box_rel: 0.05\n\
//!      variable box_gain: 0.5\n\
//!      variable box_floor: 1e-3\n\
//!      seed lev: 5\n",
//! )?)?;
//! let mac = mac.with_configurations(vec![std::sync::Arc::new(cfg)]);
//!
//! // The exact pipeline the paper runs on its hand-coded macro:
//! let cache = NominalCache::new();
//! let dict = mac.fault_dictionary();
//! let generation = Generator::new(&mac, &cache).generate(&dict);
//! let compaction = compact(&mac, &cache, &generation, &CompactionOptions::default())?;
//! let tests = test_instances_from_compaction(&mac, &compaction)?;
//! let coverage = evaluate_test_set(&mac, &cache, &tests, &dict)?;
//! assert!(coverage.detected() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `castg` CLI wraps exactly this flow:
//! `castg generate <deck.sp> --configs <dir>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod macro_def;
mod number;
mod param;
mod parser;
mod writer;

pub use error::NetlistError;
pub use macro_def::{NetlistMacro, NetlistMacroOptions};
pub use number::parse_number;
pub use parser::{parse_deck, parse_deck_with_params, Deck};
pub use writer::{canonical_deck_bytes, write_deck, write_deck_with_title};
