//! `.param` collection and resolution: the staged phase between
//! tokenizing and lowering that turns raw `name = expr` definitions
//! into a fully-evaluated numeric scope.
//!
//! Definitions are collected in deck order but resolved **lazily**, so
//! a `.param` may reference one defined later in the deck; reference
//! cycles (`a={b} b={a}`) and undefined names are detected and reported
//! with the defining line, never looped on. External overrides (the
//! CLI's `--param NAME=VALUE`) shadow deck definitions by name and may
//! also introduce parameters the deck never defines.

use std::collections::HashMap;

use crate::expr::{self, Lookup};
use crate::NetlistError;

/// What [`ParamTable::resolve`] produces: the fully-evaluated
/// name → value scope the lowering passes consult, plus the ordered
/// `(spelling, value)` report surfaced as [`Deck::params`].
///
/// [`Deck::params`]: crate::Deck::params
pub(crate) type ResolvedParams = (HashMap<String, f64>, Vec<(String, f64)>);

/// One raw `.param` definition: the right-hand side is kept as
/// expression text until the whole table is known.
#[derive(Debug, Clone)]
pub(crate) struct ParamDef {
    /// Lowercased parameter name.
    pub name: String,
    /// The spelling the deck used (for `Deck::params` reporting).
    pub spelling: String,
    /// Raw expression text (braces stripped).
    pub rhs: String,
    /// Source line of the `.param` card.
    pub line: usize,
}

/// The collected definitions of a deck, pre-resolution.
#[derive(Debug, Default)]
pub(crate) struct ParamTable {
    defs: Vec<ParamDef>,
    by_name: HashMap<String, usize>,
}

impl ParamTable {
    /// Records one definition. Duplicate names are an error — silently
    /// letting the later card win hides typos in exactly the decks this
    /// feature exists for.
    pub fn define(&mut self, def: ParamDef) -> Result<(), NetlistError> {
        if let Some(&prev) = self.by_name.get(&def.name) {
            return Err(NetlistError::parse(
                def.line,
                1,
                format!(
                    "duplicate .param `{}` (first defined on line {})",
                    def.spelling, self.defs[prev].line
                ),
            ));
        }
        self.by_name.insert(def.name.clone(), self.defs.len());
        self.defs.push(def);
        Ok(())
    }

    /// Evaluates every definition, with `overrides` (already-numeric,
    /// name → value) shadowing same-named deck definitions.
    ///
    /// Returns the fully-resolved scope plus a report listing — deck
    /// definitions in deck order, then override-only parameters in
    /// override order, each under its original spelling.
    pub fn resolve(&self, overrides: &[(String, f64)]) -> Result<ResolvedParams, NetlistError> {
        let mut resolver = Resolver {
            table: self,
            values: overrides
                .iter()
                .map(|(k, v)| (k.to_ascii_lowercase(), *v))
                .collect(),
            visiting: Vec::new(),
        };
        let mut report = Vec::with_capacity(self.defs.len() + overrides.len());
        for def in &self.defs {
            let v = resolver.value_of(&def.name).map_err(|msg| {
                NetlistError::parse(def.line, 1, format!(".param `{}`: {msg}", def.spelling))
            })?;
            report.push((def.spelling.clone(), v));
        }
        for (name, value) in overrides {
            if !self.by_name.contains_key(&name.to_ascii_lowercase()) {
                report.push((name.clone(), *value));
            }
        }
        Ok((resolver.values, report))
    }
}

/// Lazy memoized resolution with an explicit visiting stack for cycle
/// detection.
struct Resolver<'a> {
    table: &'a ParamTable,
    values: HashMap<String, f64>,
    visiting: Vec<String>,
}

impl Resolver<'_> {
    fn value_of(&mut self, name: &str) -> Result<f64, String> {
        let key = name.to_ascii_lowercase();
        if let Some(v) = self.values.get(&key) {
            return Ok(*v);
        }
        if self.visiting.contains(&key) {
            let mut chain: Vec<&str> = self.visiting.iter().map(String::as_str).collect();
            chain.push(&key);
            return Err(format!(".param reference cycle: {}", chain.join(" -> ")));
        }
        let Some(&idx) = self.table.by_name.get(&key) else {
            return Err(format!("undefined parameter `{name}`"));
        };
        self.visiting.push(key.clone());
        let result = expr::eval(&self.table.defs[idx].rhs, self);
        self.visiting.pop();
        let v = result?;
        self.values.insert(key, v);
        Ok(v)
    }
}

impl Lookup for Resolver<'_> {
    fn lookup(&mut self, name: &str) -> Result<f64, String> {
        self.value_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(defs: &[(&str, &str)]) -> ParamTable {
        let mut t = ParamTable::default();
        for (i, (name, rhs)) in defs.iter().enumerate() {
            t.define(ParamDef {
                name: name.to_ascii_lowercase(),
                spelling: name.to_string(),
                rhs: rhs.to_string(),
                line: i + 1,
            })
            .unwrap();
        }
        t
    }

    #[test]
    fn forward_references_resolve_lazily() {
        let t = table(&[("total", "2*half"), ("half", "500")]);
        let (scope, report) = t.resolve(&[]).unwrap();
        assert_eq!(scope["total"], 1000.0);
        assert_eq!(report, vec![("total".to_string(), 1000.0), ("half".to_string(), 500.0)]);
    }

    #[test]
    fn cycles_are_reported_not_looped() {
        let t = table(&[("a", "b+1"), ("b", "a+1")]);
        let e = t.resolve(&[]).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");

        let t = table(&[("x", "x*2")]);
        assert!(t.resolve(&[]).unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn undefined_references_are_reported() {
        let t = table(&[("a", "nope*2")]);
        let e = t.resolve(&[]).unwrap_err().to_string();
        assert!(e.contains("undefined parameter `nope`"), "{e}");
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut t = table(&[("a", "1")]);
        let e = t
            .define(ParamDef {
                name: "a".into(),
                spelling: "A".into(),
                rhs: "2".into(),
                line: 9,
            })
            .unwrap_err();
        assert!(e.to_string().contains("duplicate .param"), "{e}");
    }

    #[test]
    fn overrides_shadow_and_extend() {
        let t = table(&[("ratio", "2"), ("r", "1k*ratio")]);
        let (scope, report) =
            t.resolve(&[("ratio".to_string(), 5.0), ("extra".to_string(), 7.0)]).unwrap();
        assert_eq!(scope["ratio"], 5.0);
        assert_eq!(scope["r"], 5e3, "dependent params see the override");
        assert_eq!(scope["extra"], 7.0);
        // Report: deck order first, then override-only names.
        assert_eq!(
            report,
            vec![
                ("ratio".to_string(), 5.0),
                ("r".to_string(), 5e3),
                ("extra".to_string(), 7.0)
            ]
        );
    }
}
