//! SPICE-deck parsing and lowering into [`castg_spice::Circuit`].
//!
//! The accepted dialect (documented in the crate docs) covers classic
//! device cards `R`/`C`/`L`/`V`/`I`/`M`/`E`, subcircuits
//! (`.subckt`/`.ends` with `X` instantiation, flattened with
//! `<instance>.<name>` prefixes), `.model` cards with Level-1
//! parameters, `.param` definitions with `{…}` arithmetic expressions
//! and parameterized `.subckt` instances, `.title`, `.end`, scale
//! suffixes, line continuations (`+`) and comments (`*` lines, `;` and
//! ` $` trailers; `.title` lines are exempt, like real SPICE). One
//! `castg` extension: `.nodeorder`, emitted by the deck writer,
//! pre-interns nodes so a written-and-reparsed circuit reproduces the
//! original node table exactly.
//!
//! Parsing is staged: tokenizing and structure (pass 1), `.param`
//! resolution ([`crate::param`]) and expression evaluation
//! ([`crate::expr`]), then lowering (pass 2) — this file stays a pure
//! tokenizer/lowerer and never evaluates expression text itself.

use std::collections::{HashMap, HashSet};

use castg_spice::{
    BjtParams, BjtPolarity, Circuit, DiodeParams, MosParams, MosPolarity, Waveform,
};

use crate::expr;
use crate::number::parse_number;
use crate::param::{ParamDef, ParamTable};
use crate::NetlistError;

/// How deep `X` instantiation may nest before the parser assumes a
/// recursive subcircuit definition and bails out.
const MAX_SUBCKT_DEPTH: usize = 32;

/// A parsed deck: the lowered circuit plus deck-level metadata.
#[derive(Debug, Clone)]
pub struct Deck {
    /// `.title` text, if present.
    pub title: Option<String>,
    /// The resolved global parameters: deck `.param` definitions in
    /// deck order (under their original spelling, with any external
    /// overrides applied), then override-only parameters.
    pub params: Vec<(String, f64)>,
    circuit: Circuit,
}

impl Deck {
    /// The lowered circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Consumes the deck, returning the circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }
}

/// One logical input line (continuations joined), tagged with the
/// source line number of its first physical line.
struct Line {
    no: usize,
    text: String,
}

/// One token with its 1-based **character** column in the logical line
/// (not a byte offset — diagnostics must point at the right column on
/// lines with multibyte UTF-8).
struct Tok<'a> {
    text: &'a str,
    col: usize,
}

/// Removes `;` and ` $` trailers.
fn strip_comment(raw: &str) -> &str {
    let upto = raw.find(';').unwrap_or(raw.len());
    let mut cut = upto;
    // `$` opens a comment at line start or after whitespace.
    for (i, c) in raw[..upto].char_indices() {
        if c == '$' && (i == 0 || raw[..i].ends_with(char::is_whitespace)) {
            cut = i;
            break;
        }
    }
    &raw[..cut]
}

/// Is this (trimmed) physical line a `.title` card? Title text runs to
/// end of line verbatim — real SPICE titles may contain `;` and `$`,
/// which are comment trailers everywhere else.
fn is_title_card(trimmed: &str) -> bool {
    let b = trimmed.as_bytes();
    b.len() >= 6
        && b[..6].eq_ignore_ascii_case(b".title")
        && (b.len() == 6 || b[6].is_ascii_whitespace())
}

/// Joins continuation lines and drops comments/blanks.
fn logical_lines(text: &str) -> Result<Vec<Line>, NetlistError> {
    let mut out: Vec<Line> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let no = i + 1;
        let whole = raw.trim();
        if is_title_card(whole) {
            // Exempt from comment stripping; the title is the raw rest
            // of the line.
            out.push(Line { no, text: whole.to_string() });
            continue;
        }
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            match out.last_mut() {
                Some(prev) => {
                    prev.text.push(' ');
                    prev.text.push_str(rest.trim());
                }
                None => {
                    return Err(NetlistError::parse(
                        no,
                        1,
                        "continuation line with nothing to continue",
                    ))
                }
            }
            continue;
        }
        out.push(Line { no, text: trimmed.to_string() });
    }
    Ok(out)
}

/// Splits a logical line into tokens. Whitespace and `,` separate;
/// `(`, `)` and `=` are standalone tokens; `{` opens an expression
/// token that runs to the matching `}`, whitespace and operators
/// included (an unterminated one runs to end of line and is rejected
/// where its value is needed). Columns are 1-based char positions.
fn tokenize(line: &str) -> Vec<Tok<'_>> {
    let chars: Vec<(usize, char)> = line.char_indices().collect();
    let byte_at = |i: usize| chars.get(i).map_or(line.len(), |&(b, _)| b);
    let is_sep = |c: char| c.is_whitespace() || matches!(c, ',' | '(' | ')' | '=' | '{');
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let (b, c) = chars[i];
        if c.is_whitespace() || c == ',' {
            i += 1;
        } else if c == '(' || c == ')' || c == '=' {
            toks.push(Tok { text: &line[b..b + c.len_utf8()], col: i + 1 });
            i += 1;
        } else if c == '{' {
            let start = i;
            while i < chars.len() && chars[i].1 != '}' {
                i += 1;
            }
            if i < chars.len() {
                i += 1; // include the `}`
            }
            toks.push(Tok { text: &line[b..byte_at(i)], col: start + 1 });
        } else {
            let start = i;
            while i < chars.len() && !is_sep(chars[i].1) {
                i += 1;
            }
            toks.push(Tok { text: &line[b..byte_at(i)], col: start + 1 });
        }
    }
    toks
}

/// Evaluates a value token: `{expr}` tokens run the expression
/// evaluator against `scope`; anything else must be a SPICE number
/// literal.
fn eval_value_tok(
    t: &Tok<'_>,
    line_no: usize,
    scope: &HashMap<String, f64>,
) -> Result<f64, NetlistError> {
    if let Some(rest) = t.text.strip_prefix('{') {
        let inner = rest.strip_suffix('}').ok_or_else(|| {
            NetlistError::parse(line_no, t.col, format!("unterminated expression `{}`", t.text))
        })?;
        expr::eval(inner, &mut &*scope).map_err(|msg| NetlistError::parse(line_no, t.col, msg))
    } else {
        parse_number(t.text).ok_or_else(|| {
            NetlistError::parse(line_no, t.col, format!("bad number `{}`", t.text))
        })
    }
}

/// The raw expression text of a value token: braces stripped when
/// wrapped, the token itself otherwise (a bare literal or parameter
/// name).
fn raw_expr_text(t: &Tok<'_>, line_no: usize) -> Result<String, NetlistError> {
    match t.text.strip_prefix('{') {
        Some(rest) => rest.strip_suffix('}').map(str::to_string).ok_or_else(|| {
            NetlistError::parse(line_no, t.col, format!("unterminated expression `{}`", t.text))
        }),
        None => Ok(t.text.to_string()),
    }
}

/// Validates a `.param`/default/override name: the expression language
/// must be able to reference it.
fn check_param_name(name: &str, line_no: usize, col: usize) -> Result<(), NetlistError> {
    let mut chars = name.chars();
    let ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
    if !ok {
        return Err(NetlistError::parse(
            line_no,
            col,
            format!(
                "invalid parameter name `{name}` (letters, digits and `_`, \
                 not starting with a digit)"
            ),
        ));
    }
    Ok(())
}

/// A Level-1 `.model` card: polarity plus whatever parameters the card
/// sets (unset ones fall back to the process defaults).
#[derive(Debug, Clone, Default)]
struct MosModel {
    pmos: bool,
    params: HashMap<String, f64>,
}

/// A resolved `.model` card of any supported kind. MOS geometry stays
/// deferred (instance `W=`/`L=` override the model); diode and BJT
/// cards resolve to full parameter sets immediately (unset keys fall
/// back to the signal defaults).
#[derive(Debug, Clone)]
enum ModelCard {
    Mos(MosModel),
    Diode(DiodeParams),
    Bjt { pnp: bool, params: BjtParams },
}

impl ModelCard {
    /// The type keyword family, for "wrong model kind" diagnostics.
    fn kind_name(&self) -> &'static str {
        match self {
            ModelCard::Mos(_) => "nmos/pmos",
            ModelCard::Diode(_) => "d",
            ModelCard::Bjt { .. } => "npn/pnp",
        }
    }
}

/// A `.subckt` definition: ports, parameter defaults (raw expression
/// text, evaluated per instantiation), body lines.
struct Subckt<'a> {
    ports: Vec<String>,
    /// (lowercased name, original spelling, raw expression text).
    defaults: Vec<(String, String, String)>,
    lines: Vec<&'a Line>,
}

struct LowerCtx<'a> {
    models: HashMap<String, (ModelCard, usize)>,
    subckts: HashMap<String, Subckt<'a>>,
    /// The resolved global `.param` scope.
    globals: HashMap<String, f64>,
}

/// Parses a deck into a lowered circuit.
///
/// # Errors
///
/// [`NetlistError::Parse`] (with line and column) for malformed text,
/// [`NetlistError::Netlist`] (with line) for cards that parse but do
/// not lower (duplicate names, missing models, invalid element values).
pub fn parse_deck(text: &str) -> Result<Deck, NetlistError> {
    parse_deck_with_params(text, &[])
}

/// [`parse_deck`] with external parameter overrides (the CLI's
/// `--param NAME=VALUE`): same-named deck `.param` definitions are
/// shadowed by the given values, and names the deck never defines are
/// added to the global scope.
///
/// # Errors
///
/// As for [`parse_deck`], plus `.param` resolution errors (undefined
/// references, reference cycles, malformed expressions).
pub fn parse_deck_with_params(
    text: &str,
    overrides: &[(String, f64)],
) -> Result<Deck, NetlistError> {
    let lines = logical_lines(text)?;

    // Pass 1: structure. `.param` definitions and `.model` cards are
    // deck-global (models are deferred until parameters resolve, so
    // their values may be expressions); subcircuit bodies are collected
    // for flattening; everything else is a top-level card.
    let mut params = ParamTable::default();
    let mut model_lines: Vec<&Line> = Vec::new();
    let mut model_names: HashSet<String> = HashSet::new();
    let mut subckts: HashMap<String, Subckt<'_>> = HashMap::new();
    let mut top: Vec<&Line> = Vec::new();
    let mut title: Option<String> = None;
    let mut open_sub: Option<(String, Subckt<'_>, usize)> = None;
    for line in &lines {
        let toks = tokenize(&line.text);
        let Some(first) = toks.first() else { continue };
        let head = first.text.to_ascii_lowercase();
        if !head.starts_with('.') {
            match &mut open_sub {
                Some((_, sub, _)) => sub.lines.push(line),
                None => top.push(line),
            }
            continue;
        }
        // Dot-cards are deck-global; inside a .subckt body only device
        // and X cards belong. Rejecting the rest loudly beats silently
        // hoisting a subckt-local .model (locally scoped in some SPICE
        // dialects) to global scope.
        if open_sub.is_some() && head != ".ends" {
            return Err(NetlistError::parse(
                line.no,
                first.col,
                format!("`{head}` is not supported inside a .subckt body"),
            ));
        }
        match head.as_str() {
            ".title" => {
                let rest = line.text[first.text.len()..].trim();
                title = Some(rest.to_string());
            }
            ".end" => break,
            ".param" => {
                for (spelling, rhs) in parse_param_card(&toks, line.no)? {
                    params.define(ParamDef {
                        name: spelling.to_ascii_lowercase(),
                        spelling,
                        rhs,
                        line: line.no,
                    })?;
                }
            }
            ".subckt" => {
                // Nested definitions are rejected by the in-body guard
                // above.
                let (name, sub) = parse_subckt_card(&toks, line.no)?;
                open_sub = Some((name, sub, line.no));
            }
            ".ends" => match open_sub.take() {
                Some((name, sub, _)) => {
                    if let Some(given) = toks.get(1) {
                        if !given.text.eq_ignore_ascii_case(&name) {
                            return Err(NetlistError::parse(
                                line.no,
                                given.col,
                                format!(".ends `{}` does not match .subckt `{name}`", given.text),
                            ));
                        }
                    }
                    if subckts.insert(name.clone(), sub).is_some() {
                        return Err(NetlistError::parse(
                            line.no,
                            first.col,
                            format!("duplicate .subckt `{name}`"),
                        ));
                    }
                }
                None => {
                    return Err(NetlistError::parse(line.no, first.col, ".ends without .subckt"))
                }
            },
            ".model" => {
                if let Some(nt) = toks.get(1) {
                    if !model_names.insert(nt.text.to_ascii_lowercase()) {
                        return Err(NetlistError::parse(
                            line.no,
                            first.col,
                            format!("duplicate .model `{}`", nt.text.to_ascii_lowercase()),
                        ));
                    }
                }
                model_lines.push(line);
            }
            ".nodeorder" => top.push(line),
            other => {
                return Err(NetlistError::parse(
                    line.no,
                    first.col,
                    format!("unknown directive `{other}`"),
                ))
            }
        }
    }
    if let Some((name, _, line_no)) = open_sub {
        return Err(NetlistError::parse(line_no, 1, format!(".subckt `{name}` never closed")));
    }

    // Resolution phase: evaluate every `.param` (lazily, so forward
    // references work; cycles and undefined names error here), then the
    // deferred `.model` cards against the resolved scope.
    let (globals, params_report) = params.resolve(overrides)?;
    let mut models = HashMap::new();
    for line in &model_lines {
        let toks = tokenize(&line.text);
        let (name, model) = parse_model_card(&toks, line.no, &globals)?;
        models.insert(name, (model, line.no));
    }
    let ctx = LowerCtx { models, subckts, globals };

    // Pass 2: lower top-level cards in order, flattening X instances.
    let mut lowerer = Lowerer { circuit: Circuit::new(), node_case: HashMap::new() };
    let no_ports = HashMap::new();
    for line in top {
        lower_card(&mut lowerer, line, "", &no_ports, 0, &ctx, &ctx.globals)?;
    }
    Ok(Deck { title, params: params_report, circuit: lowerer.circuit })
}

/// Parses `.param name=value …` into raw (spelling, expression-text)
/// pairs; values may be `{expr}` or bare literals.
fn parse_param_card(
    toks: &[Tok<'_>],
    line_no: usize,
) -> Result<Vec<(String, String)>, NetlistError> {
    if toks.len() == 1 {
        return Err(NetlistError::parse(line_no, toks[0].col, ".param needs `name=value`"));
    }
    let mut out = Vec::new();
    let mut i = 1usize;
    while i < toks.len() {
        let nt = &toks[i];
        check_param_name(nt.text, line_no, nt.col)?;
        if toks.get(i + 1).map(|t| t.text) != Some("=") {
            return Err(NetlistError::parse(
                line_no,
                nt.col,
                format!("expected `{} = value`", nt.text),
            ));
        }
        let vt = toks.get(i + 2).ok_or_else(|| {
            NetlistError::parse(line_no, nt.col, format!("`{}=` without a value", nt.text))
        })?;
        out.push((nt.text.to_string(), raw_expr_text(vt, line_no)?));
        i += 3;
    }
    Ok(out)
}

/// Parses a `.subckt name ports… [param=default …]` header. Ports run
/// until the first `name=value` default.
fn parse_subckt_card<'a>(
    toks: &[Tok<'_>],
    line_no: usize,
) -> Result<(String, Subckt<'a>), NetlistError> {
    if toks.len() < 2 {
        return Err(NetlistError::parse(line_no, toks[0].col, ".subckt needs a name"));
    }
    let name = toks[1].text.to_ascii_lowercase();
    let port_end = match toks.iter().position(|t| t.text == "=") {
        // The first default's name sits just before the first `=`; it
        // must come after the subckt name (index ≥ 2).
        Some(j) if j >= 3 => j - 1,
        Some(j) => {
            return Err(NetlistError::parse(
                line_no,
                toks[j].col,
                "misplaced `=` (defaults are `name=value` after the ports)",
            ))
        }
        None => toks.len(),
    };
    let mut ports = Vec::with_capacity(port_end.saturating_sub(2));
    for t in &toks[2..port_end] {
        if t.text.starts_with('{') || t.text == "(" || t.text == ")" {
            return Err(NetlistError::parse(
                line_no,
                t.col,
                format!("invalid port name `{}`", t.text),
            ));
        }
        ports.push(t.text.to_ascii_lowercase());
    }
    let mut defaults: Vec<(String, String, String)> = Vec::new();
    let mut i = port_end;
    while i < toks.len() {
        let nt = &toks[i];
        check_param_name(nt.text, line_no, nt.col)?;
        if toks.get(i + 1).map(|t| t.text) != Some("=") {
            return Err(NetlistError::parse(
                line_no,
                nt.col,
                format!("expected `{} = value`", nt.text),
            ));
        }
        let vt = toks.get(i + 2).ok_or_else(|| {
            NetlistError::parse(line_no, nt.col, format!("`{}=` without a value", nt.text))
        })?;
        let lower = nt.text.to_ascii_lowercase();
        if defaults.iter().any(|(l, _, _)| *l == lower) {
            return Err(NetlistError::parse(
                line_no,
                nt.col,
                format!("duplicate parameter default `{}`", nt.text),
            ));
        }
        defaults.push((lower, nt.text.to_string(), raw_expr_text(vt, line_no)?));
        i += 3;
    }
    Ok((name, Subckt { ports, defaults, lines: Vec::new() }))
}

/// Lowering state: the circuit under construction plus the
/// case-canonicalization table for net names (SPICE identifiers are
/// case-insensitive; the first spelling of a net wins and later
/// spellings alias to it, so `VDD` and `vdd` are one net).
struct Lowerer {
    circuit: Circuit,
    /// lowercase net name → the canonical (first-seen) spelling.
    node_case: HashMap<String, String>,
}

impl Lowerer {
    /// Canonicalizes a resolved (port-mapped, prefixed) net name.
    fn canonical(&mut self, name: String) -> String {
        match self.node_case.entry(name.to_ascii_lowercase()) {
            std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(name.clone());
                name
            }
        }
    }

    /// Interns a net by its resolved name, case-insensitively.
    fn node(&mut self, name: String) -> castg_spice::NodeId {
        if name == "0" {
            return Circuit::GROUND;
        }
        let canonical = self.canonical(name);
        self.circuit.node(&canonical)
    }
}

/// Parses `.model name nmos|pmos|d|npn|pnp (k=v ...)` (parens
/// optional).
fn parse_model_card(
    toks: &[Tok<'_>],
    line_no: usize,
    scope: &HashMap<String, f64>,
) -> Result<(String, ModelCard), NetlistError> {
    if toks.len() < 3 {
        return Err(NetlistError::parse(
            line_no,
            toks.first().map_or(1, |t| t.col),
            ".model needs a name and a type",
        ));
    }
    let name = toks[1].text.to_ascii_lowercase();
    let assignments = parse_assignments(&toks[3..], line_no, scope)?;
    let card = match toks[2].text.to_ascii_lowercase().as_str() {
        kind @ ("nmos" | "pmos") => {
            let mut model = MosModel { pmos: kind == "pmos", params: HashMap::new() };
            for (key, value) in assignments {
                let k = key.to_ascii_lowercase();
                match k.as_str() {
                    "vto" | "vt0" | "kp" | "lambda" | "gamma" | "phi" | "cox" | "cgso" | "w"
                    | "l" => {
                        let canonical = if k == "vt0" { "vto".to_string() } else { k };
                        model.params.insert(canonical, value);
                    }
                    other => {
                        return Err(NetlistError::parse(
                            line_no,
                            1,
                            format!("unknown model parameter `{other}`"),
                        ))
                    }
                }
            }
            ModelCard::Mos(model)
        }
        "d" => {
            let mut params = DiodeParams::signal_default();
            for (key, value) in assignments {
                match key.to_ascii_lowercase().as_str() {
                    "is" => params.is_sat = value,
                    "n" => params.n = value,
                    "rs" => params.rs = value,
                    "cjo" | "cj0" => params.cj0 = value,
                    other => {
                        return Err(NetlistError::parse(
                            line_no,
                            1,
                            format!("unknown diode model parameter `{other}`"),
                        ))
                    }
                }
            }
            ModelCard::Diode(params)
        }
        kind @ ("npn" | "pnp") => {
            let mut params = BjtParams::signal_default();
            for (key, value) in assignments {
                match key.to_ascii_lowercase().as_str() {
                    "is" => params.is_sat = value,
                    "bf" => params.bf = value,
                    "br" => params.br = value,
                    "cje" => params.cje = value,
                    "cjc" => params.cjc = value,
                    other => {
                        return Err(NetlistError::parse(
                            line_no,
                            1,
                            format!("unknown BJT model parameter `{other}`"),
                        ))
                    }
                }
            }
            ModelCard::Bjt { pnp: kind == "pnp", params }
        }
        other => {
            return Err(NetlistError::parse(
                line_no,
                toks[2].col,
                format!("unsupported model type `{other}` (need nmos, pmos, d, npn or pnp)"),
            ))
        }
    };
    Ok((name, card))
}

/// Parses a `k=v k=v …` tail (optionally wrapped in parentheses);
/// values may be `{expr}` tokens.
fn parse_assignments(
    toks: &[Tok<'_>],
    line_no: usize,
    scope: &HashMap<String, f64>,
) -> Result<Vec<(String, f64)>, NetlistError> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].text {
            "(" => {
                depth += 1;
                i += 1;
            }
            ")" => {
                if depth == 0 {
                    return Err(NetlistError::parse(line_no, toks[i].col, "unbalanced `)`"));
                }
                depth -= 1;
                i += 1;
            }
            key => {
                if toks.get(i + 1).map(|t| t.text) != Some("=") {
                    return Err(NetlistError::parse(
                        line_no,
                        toks[i].col,
                        format!("expected `{key} = value`"),
                    ));
                }
                let vt = toks.get(i + 2).ok_or_else(|| {
                    NetlistError::parse(line_no, toks[i].col, format!("`{key}=` without a value"))
                })?;
                let value = eval_value_tok(vt, line_no, scope)?;
                out.push((key.to_string(), value));
                i += 3;
            }
        }
    }
    if depth != 0 {
        return Err(NetlistError::parse(line_no, 1, "unbalanced `(`"));
    }
    Ok(out)
}

/// Resolves a node token to its flattened node *name*: ground aliases
/// pass through, subcircuit ports map to the caller's nets, internal
/// nets gain the instance prefix.
fn resolve_node_name(tok: &str, prefix: &str, ports: &HashMap<String, String>) -> String {
    if tok == "0" || tok.eq_ignore_ascii_case("gnd") {
        return "0".to_string();
    }
    if let Some(outer) = ports.get(&tok.to_ascii_lowercase()) {
        return outer.clone();
    }
    if prefix.is_empty() {
        tok.to_string()
    } else {
        format!("{prefix}{tok}")
    }
}

/// Rejects `{expr}` tokens where a node name is required.
fn check_node_tok(t: &Tok<'_>, line_no: usize) -> Result<(), NetlistError> {
    if t.text.starts_with('{') {
        return Err(NetlistError::parse(
            line_no,
            t.col,
            format!("expected a node name, got expression `{}`", t.text),
        ));
    }
    Ok(())
}

/// Lowers one card (device or `.nodeorder` / `X` instantiation) into
/// the circuit, evaluating `{expr}` value tokens against `scope`.
fn lower_card(
    lowerer: &mut Lowerer,
    line: &Line,
    prefix: &str,
    ports: &HashMap<String, String>,
    depth: usize,
    ctx: &LowerCtx<'_>,
    scope: &HashMap<String, f64>,
) -> Result<(), NetlistError> {
    let toks = tokenize(&line.text);
    let Some(first) = toks.first() else { return Ok(()) };

    if first.text.eq_ignore_ascii_case(".nodeorder") {
        for t in &toks[1..] {
            check_node_tok(t, line.no)?;
            let name = resolve_node_name(t.text, prefix, ports);
            lowerer.node(name);
        }
        return Ok(());
    }

    let name_tok = first;
    let kind = name_tok
        .text
        .chars()
        .next()
        .map(|c| c.to_ascii_lowercase())
        .filter(char::is_ascii_alphabetic)
        .ok_or_else(|| {
            NetlistError::parse(
                line.no,
                name_tok.col,
                format!("expected a device card, got `{}`", name_tok.text),
            )
        })?;
    let dev_name = format!("{prefix}{}", name_tok.text);

    // Helpers over the token tail.
    let node_tok = |i: usize, what: &str| -> Result<&Tok<'_>, NetlistError> {
        let t = toks.get(i).ok_or_else(|| {
            NetlistError::parse(
                line.no,
                name_tok.col,
                format!("`{}` is missing its {what} node", name_tok.text),
            )
        })?;
        check_node_tok(t, line.no)?;
        Ok(t)
    };
    let num_tok = |i: usize, what: &str| -> Result<f64, NetlistError> {
        let t = toks.get(i).ok_or_else(|| {
            NetlistError::parse(
                line.no,
                name_tok.col,
                format!("`{}` is missing its {what}", name_tok.text),
            )
        })?;
        eval_value_tok(t, line.no, scope)
    };
    let no_extra = |i: usize| -> Result<(), NetlistError> {
        match toks.get(i) {
            Some(t) => Err(NetlistError::parse(
                line.no,
                t.col,
                format!("unexpected trailing token `{}`", t.text),
            )),
            None => Ok(()),
        }
    };
    let node = |lowerer: &mut Lowerer, t: &Tok<'_>| {
        let name = resolve_node_name(t.text, prefix, ports);
        lowerer.node(name)
    };
    let lowered = |e: castg_spice::SpiceError| NetlistError::netlist(line.no, e.to_string());

    match kind {
        'r' | 'c' | 'l' => {
            let (ta, tb) = (node_tok(1, "first")?, node_tok(2, "second")?);
            let value = num_tok(3, "value")?;
            no_extra(4)?;
            let a = node(lowerer, ta);
            let b = node(lowerer, tb);
            match kind {
                'r' => lowerer.circuit.add_resistor(&dev_name, a, b, value).map_err(lowered)?,
                'c' => lowerer.circuit.add_capacitor(&dev_name, a, b, value).map_err(lowered)?,
                _ => lowerer.circuit.add_inductor(&dev_name, a, b, value).map_err(lowered)?,
            }
        }
        'v' | 'i' => {
            let (tp, tn) = (node_tok(1, "positive")?, node_tok(2, "negative")?);
            let wave = parse_waveform(&toks[3..], line.no, &dev_name, scope)?;
            let p = node(lowerer, tp);
            let n = node(lowerer, tn);
            if kind == 'v' {
                lowerer.circuit.add_vsource(&dev_name, p, n, wave).map_err(lowered)?;
            } else {
                // SPICE convention: positive current flows from the
                // first node through the source into the second.
                lowerer.circuit.add_isource(&dev_name, p, n, wave).map_err(lowered)?;
            }
        }
        'm' => {
            let (td, tg, ts, tb) = (
                node_tok(1, "drain")?,
                node_tok(2, "gate")?,
                node_tok(3, "source")?,
                node_tok(4, "bulk")?,
            );
            let model_tok = toks.get(5).ok_or_else(|| {
                NetlistError::parse(
                    line.no,
                    name_tok.col,
                    format!("`{}` is missing its model name", name_tok.text),
                )
            })?;
            let (card, _) = ctx
                .models
                .get(&model_tok.text.to_ascii_lowercase())
                .ok_or_else(|| {
                    NetlistError::netlist(
                        line.no,
                        format!("unknown model `{}` (no matching .model card)", model_tok.text),
                    )
                })?;
            let ModelCard::Mos(model) = card else {
                return Err(NetlistError::netlist(
                    line.no,
                    format!(
                        "model `{}` is a {} model, but `{}` needs nmos/pmos",
                        model_tok.text,
                        card.kind_name(),
                        name_tok.text
                    ),
                ));
            };
            let mut overrides: HashMap<String, f64> = HashMap::new();
            for (k, v) in parse_assignments(&toks[6..], line.no, scope)? {
                let k = k.to_ascii_lowercase();
                if k != "w" && k != "l" {
                    return Err(NetlistError::parse(
                        line.no,
                        name_tok.col,
                        format!("unknown instance parameter `{k}` (only W and L)"),
                    ));
                }
                overrides.insert(k, v);
            }
            let geometry = |key: &str| -> Result<f64, NetlistError> {
                overrides
                    .get(key)
                    .or_else(|| model.params.get(key))
                    .copied()
                    .ok_or_else(|| {
                        NetlistError::netlist(
                            line.no,
                            format!(
                                "`{}` has no {} (set {}= on the instance or the model)",
                                name_tok.text,
                                key.to_ascii_uppercase(),
                                key.to_ascii_uppercase()
                            ),
                        )
                    })
            };
            let (w, l) = (geometry("w")?, geometry("l")?);
            let (polarity, mut params) = if model.pmos {
                (MosPolarity::Pmos, MosParams::pmos_default(w, l))
            } else {
                (MosPolarity::Nmos, MosParams::nmos_default(w, l))
            };
            for (k, v) in &model.params {
                match k.as_str() {
                    "vto" => params.vt0 = *v,
                    "kp" => params.kp = *v,
                    "lambda" => params.lambda = *v,
                    "gamma" => params.gamma = *v,
                    "phi" => params.phi = *v,
                    "cox" => params.cox = *v,
                    "cgso" => params.cgso = *v,
                    // Geometry already applied (instance overrides win).
                    "w" | "l" => {}
                    _ => unreachable!("model card parser admits only known keys"),
                }
            }
            let (d, g, s, b) =
                (node(lowerer, td), node(lowerer, tg), node(lowerer, ts), node(lowerer, tb));
            lowerer.circuit.add_mosfet(&dev_name, d, g, s, b, polarity, params).map_err(lowered)?;
        }
        'e' => {
            let (tp, tn, tcp, tcn) = (
                node_tok(1, "positive")?,
                node_tok(2, "negative")?,
                node_tok(3, "positive controlling")?,
                node_tok(4, "negative controlling")?,
            );
            let gain = num_tok(5, "gain")?;
            no_extra(6)?;
            let (p, n) = (node(lowerer, tp), node(lowerer, tn));
            let (cp, cn) = (node(lowerer, tcp), node(lowerer, tcn));
            lowerer.circuit.add_vcvs(&dev_name, p, n, cp, cn, gain).map_err(lowered)?;
        }
        'd' => {
            let (ta, tk) = (node_tok(1, "anode")?, node_tok(2, "cathode")?);
            let model_tok = toks.get(3).ok_or_else(|| {
                NetlistError::parse(
                    line.no,
                    name_tok.col,
                    format!("`{}` is missing its model name", name_tok.text),
                )
            })?;
            no_extra(4)?;
            let (card, _) = ctx
                .models
                .get(&model_tok.text.to_ascii_lowercase())
                .ok_or_else(|| {
                    NetlistError::netlist(
                        line.no,
                        format!("unknown model `{}` (no matching .model card)", model_tok.text),
                    )
                })?;
            let ModelCard::Diode(params) = card else {
                return Err(NetlistError::netlist(
                    line.no,
                    format!(
                        "model `{}` is a {} model, but `{}` needs d",
                        model_tok.text,
                        card.kind_name(),
                        name_tok.text
                    ),
                ));
            };
            let (a, k) = (node(lowerer, ta), node(lowerer, tk));
            lowerer.circuit.add_diode(&dev_name, a, k, *params).map_err(lowered)?;
        }
        'q' => {
            let (tc, tb, te) = (
                node_tok(1, "collector")?,
                node_tok(2, "base")?,
                node_tok(3, "emitter")?,
            );
            let model_tok = toks.get(4).ok_or_else(|| {
                NetlistError::parse(
                    line.no,
                    name_tok.col,
                    format!("`{}` is missing its model name", name_tok.text),
                )
            })?;
            no_extra(5)?;
            let (card, _) = ctx
                .models
                .get(&model_tok.text.to_ascii_lowercase())
                .ok_or_else(|| {
                    NetlistError::netlist(
                        line.no,
                        format!("unknown model `{}` (no matching .model card)", model_tok.text),
                    )
                })?;
            let ModelCard::Bjt { pnp, params } = card else {
                return Err(NetlistError::netlist(
                    line.no,
                    format!(
                        "model `{}` is a {} model, but `{}` needs npn/pnp",
                        model_tok.text,
                        card.kind_name(),
                        name_tok.text
                    ),
                ));
            };
            let polarity = if *pnp { BjtPolarity::Pnp } else { BjtPolarity::Npn };
            let (c, b, e) = (node(lowerer, tc), node(lowerer, tb), node(lowerer, te));
            lowerer.circuit.add_bjt(&dev_name, c, b, e, polarity, *params).map_err(lowered)?;
        }
        'g' => {
            let (tp, tn, tcp, tcn) = (
                node_tok(1, "positive")?,
                node_tok(2, "negative")?,
                node_tok(3, "positive controlling")?,
                node_tok(4, "negative controlling")?,
            );
            let gm = num_tok(5, "transconductance")?;
            no_extra(6)?;
            let (p, n) = (node(lowerer, tp), node(lowerer, tn));
            let (cp, cn) = (node(lowerer, tcp), node(lowerer, tcn));
            lowerer.circuit.add_vccs(&dev_name, p, n, cp, cn, gm).map_err(lowered)?;
        }
        'f' | 'h' => {
            let (tp, tn) = (node_tok(1, "positive")?, node_tok(2, "negative")?);
            let tctrl = toks.get(3).ok_or_else(|| {
                NetlistError::parse(
                    line.no,
                    name_tok.col,
                    format!("`{}` is missing its controlling device name", name_tok.text),
                )
            })?;
            if tctrl.text.starts_with('{') {
                return Err(NetlistError::parse(
                    line.no,
                    tctrl.col,
                    format!("expected a device name, got expression `{}`", tctrl.text),
                ));
            }
            let value = num_tok(4, if kind == 'f' { "gain" } else { "transresistance" })?;
            no_extra(5)?;
            // The controller must already exist (the card dialect, like
            // Circuit::add, requires the controlling V/E/H/L card to
            // precede its F/H dependents). Device names are stored
            // case-sensitively; deck references are case-insensitive
            // like the rest of the dialect, so fall back to a unique
            // case-insensitive match before letting Circuit::add report
            // the miss.
            let ctrl_name = {
                let wanted = format!("{prefix}{}", tctrl.text);
                if lowerer.circuit.device(&wanted).is_some() {
                    wanted
                } else {
                    let mut hits = lowerer
                        .circuit
                        .devices()
                        .iter()
                        .filter(|d| d.name().eq_ignore_ascii_case(&wanted));
                    match (hits.next(), hits.next()) {
                        (Some(d), None) => d.name().to_string(),
                        _ => wanted,
                    }
                }
            };
            let (p, n) = (node(lowerer, tp), node(lowerer, tn));
            if kind == 'f' {
                lowerer.circuit.add_cccs(&dev_name, p, n, &ctrl_name, value).map_err(lowered)?;
            } else {
                lowerer.circuit.add_ccvs(&dev_name, p, n, &ctrl_name, value).map_err(lowered)?;
            }
        }
        'x' => {
            if depth >= MAX_SUBCKT_DEPTH {
                return Err(NetlistError::netlist(
                    line.no,
                    format!(
                        "subcircuit nesting exceeds {MAX_SUBCKT_DEPTH} levels \
                         (recursive definition?)"
                    ),
                ));
            }
            // Instance parameters are `name=value` pairs after the
            // subcircuit name; the name itself sits just before the
            // first assignment (or last on the line without one).
            let (sub_idx, assign_toks) = match toks.iter().position(|t| t.text == "=") {
                Some(j) if j >= 3 => (j - 2, &toks[j - 1..]),
                Some(j) => {
                    return Err(NetlistError::parse(
                        line.no,
                        toks[j].col,
                        "misplaced `=` (instance parameters are `name=value` \
                         after the subcircuit name)",
                    ))
                }
                None => (toks.len() - 1, &toks[toks.len()..]),
            };
            if sub_idx == 0 {
                return Err(NetlistError::parse(
                    line.no,
                    name_tok.col,
                    format!("`{}` needs nodes and a subcircuit name", name_tok.text),
                ));
            }
            let sub_tok = &toks[sub_idx];
            let sub = ctx.subckts.get(&sub_tok.text.to_ascii_lowercase()).ok_or_else(|| {
                NetlistError::netlist(
                    line.no,
                    format!("unknown subcircuit `{}` (no matching .subckt)", sub_tok.text),
                )
            })?;
            let args = &toks[1..sub_idx];
            if args.len() != sub.ports.len() {
                return Err(NetlistError::netlist(
                    line.no,
                    format!(
                        "`{}` connects {} nodes but `{}` declares {} ports",
                        name_tok.text,
                        args.len(),
                        sub_tok.text,
                        sub.ports.len()
                    ),
                ));
            }
            // The child scope: globals, shadowed by instance overrides
            // (evaluated in the caller's scope), then un-overridden
            // defaults in declaration order (evaluated in the child
            // scope built so far, so a default may reference globals,
            // overridden values and earlier defaults).
            let mut child_scope = ctx.globals.clone();
            let mut overridden: HashSet<String> = HashSet::new();
            let mut i = 0usize;
            while i < assign_toks.len() {
                let nt = &assign_toks[i];
                if assign_toks.get(i + 1).map(|t| t.text) != Some("=") {
                    return Err(NetlistError::parse(
                        line.no,
                        nt.col,
                        format!("expected `{} = value`", nt.text),
                    ));
                }
                let vt = assign_toks.get(i + 2).ok_or_else(|| {
                    NetlistError::parse(
                        line.no,
                        nt.col,
                        format!("`{}=` without a value", nt.text),
                    )
                })?;
                let lower = nt.text.to_ascii_lowercase();
                if !sub.defaults.iter().any(|(l, _, _)| *l == lower) {
                    return Err(NetlistError::netlist(
                        line.no,
                        format!(
                            "`{}` sets `{}` but `{}` declares no such parameter",
                            name_tok.text, nt.text, sub_tok.text
                        ),
                    ));
                }
                if !overridden.insert(lower.clone()) {
                    return Err(NetlistError::parse(
                        line.no,
                        nt.col,
                        format!("duplicate instance parameter `{}`", nt.text),
                    ));
                }
                let v = eval_value_tok(vt, line.no, scope)?;
                child_scope.insert(lower, v);
                i += 3;
            }
            for (lower, spelling, rhs) in &sub.defaults {
                if overridden.contains(lower) {
                    continue;
                }
                let v = expr::eval(rhs, &mut &child_scope).map_err(|msg| {
                    NetlistError::netlist(
                        line.no,
                        format!("`{}` default `{spelling}`: {msg}", sub_tok.text),
                    )
                })?;
                child_scope.insert(lower.clone(), v);
            }
            let mut inner_ports: HashMap<String, String> = HashMap::with_capacity(args.len());
            for (port, arg) in sub.ports.iter().zip(args) {
                check_node_tok(arg, line.no)?;
                inner_ports.insert(port.clone(), resolve_node_name(arg.text, prefix, ports));
            }
            let inner_prefix = format!("{dev_name}.");
            for inner in &sub.lines {
                lower_card(lowerer, inner, &inner_prefix, &inner_ports, depth + 1, ctx, &child_scope)?;
            }
        }
        other => {
            return Err(NetlistError::parse(
                line.no,
                name_tok.col,
                format!("unknown device card `{other}` (supported: R C L V I M D Q E F G H X)"),
            ))
        }
    }
    Ok(())
}

/// Parses an independent-source value: `DC v`, a bare number or
/// `{expr}`, or a functional form `SIN(..)`, `PULSE(..)`, `PWL(..)`,
/// `STEP(..)`.
fn parse_waveform(
    toks: &[Tok<'_>],
    line_no: usize,
    dev: &str,
    scope: &HashMap<String, f64>,
) -> Result<Waveform, NetlistError> {
    let Some(first) = toks.first() else {
        return Err(NetlistError::parse(line_no, 1, format!("`{dev}` is missing its value")));
    };
    let head = first.text.to_ascii_lowercase();

    // Bare number or `{expr}` → DC.
    if first.text.starts_with('{') || parse_number(first.text).is_some() {
        let v = eval_value_tok(first, line_no, scope)?;
        return match toks.get(1) {
            Some(t) => Err(NetlistError::parse(
                line_no,
                t.col,
                format!("unexpected trailing token `{}`", t.text),
            )),
            None => Ok(Waveform::dc(v)),
        };
    }

    if head == "dc" {
        let t = toks.get(1).ok_or_else(|| {
            NetlistError::parse(line_no, first.col, format!("`{dev}`: DC needs a value"))
        })?;
        let v = eval_value_tok(t, line_no, scope)?;
        return match toks.get(2) {
            Some(t) => Err(NetlistError::parse(
                line_no,
                t.col,
                format!("unexpected trailing token `{}`", t.text),
            )),
            None => Ok(Waveform::dc(v)),
        };
    }

    // Functional forms: head ( numbers ).
    let args = paren_numbers(&toks[1..], line_no, &head, scope)?;
    let arity = |lo: usize, hi: usize| -> Result<(), NetlistError> {
        if args.len() < lo || args.len() > hi {
            return Err(NetlistError::parse(
                line_no,
                first.col,
                format!("`{head}` takes {lo}..={hi} arguments, got {}", args.len()),
            ));
        }
        Ok(())
    };
    let get = |i: usize| args.get(i).copied().unwrap_or(0.0);
    match head.as_str() {
        "sin" | "sine" => {
            // SIN(VO VA FREQ [TD [PHASE]]) — phase in radians; the
            // classic THETA damping slot is not modeled.
            arity(3, 5)?;
            Ok(Waveform::Sine {
                offset: get(0),
                amplitude: get(1),
                freq: get(2),
                delay: get(3),
                phase: get(4),
            })
        }
        "pulse" => {
            // PULSE(V1 V2 [TD [TR [TF [PW [PER]]]]]).
            arity(2, 7)?;
            Ok(Waveform::Pulse {
                low: get(0),
                high: get(1),
                delay: get(2),
                rise: get(3),
                fall: get(4),
                width: get(5),
                period: get(6),
            })
        }
        "pwl" => {
            if args.len() < 2 || args.len() % 2 != 0 {
                return Err(NetlistError::parse(
                    line_no,
                    first.col,
                    format!("`pwl` needs an even number of values (t v …), got {}", args.len()),
                ));
            }
            let points: Vec<(f64, f64)> =
                args.chunks_exact(2).map(|p| (p[0], p[1])).collect();
            if points.windows(2).any(|w| w[1].0 < w[0].0) {
                return Err(NetlistError::parse(
                    line_no,
                    first.col,
                    "`pwl` time points must be non-decreasing",
                ));
            }
            Ok(Waveform::Pwl(points))
        }
        // castg extension mirroring the paper's ramped step template.
        "step" => {
            arity(2, 4)?;
            Ok(Waveform::Step { base: get(0), elev: get(1), t_step: get(2), t_rise: get(3) })
        }
        other => Err(NetlistError::parse(
            line_no,
            first.col,
            format!("unknown source value `{other}` (DC, SIN, PULSE, PWL, STEP)"),
        )),
    }
}

/// Consumes `( n n n )` and returns the numbers (each a literal or an
/// `{expr}` token); everything must be inside one balanced pair of
/// parentheses.
fn paren_numbers(
    toks: &[Tok<'_>],
    line_no: usize,
    head: &str,
    scope: &HashMap<String, f64>,
) -> Result<Vec<f64>, NetlistError> {
    let mut it = toks.iter();
    match it.next() {
        Some(t) if t.text == "(" => {}
        Some(t) => {
            return Err(NetlistError::parse(
                line_no,
                t.col,
                format!("expected `(` after `{head}`"),
            ))
        }
        None => {
            return Err(NetlistError::parse(line_no, 1, format!("expected `(` after `{head}`")))
        }
    }
    let mut out = Vec::new();
    for t in it {
        match t.text {
            ")" => {
                return Ok(out);
            }
            _ => out.push(eval_value_tok(t, line_no, scope)?),
        }
    }
    Err(NetlistError::parse(line_no, 1, format!("`{head}(` never closed")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use castg_spice::{DcAnalysis, DeviceKind};

    #[test]
    fn divider_deck_lowers_and_solves() {
        let deck = parse_deck(
            "* a divider\n\
             .title tiny divider\n\
             V1 vin 0 DC 6\n\
             R1 vin mid 1k\n\
             R2 mid 0 1k ; lower leg\n",
        )
        .unwrap();
        assert_eq!(deck.title.as_deref(), Some("tiny divider"));
        let c = deck.circuit();
        assert_eq!(c.node_count(), 3);
        let sol = DcAnalysis::new(c).solve().unwrap();
        let mid = c.find_node("mid").unwrap();
        assert!((sol.voltage(mid) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn continuations_and_suffixes() {
        let deck = parse_deck(
            "R1 a b\n\
             + 10k\n\
             C1 b 0 1.5pF\n\
             L1 a b 2u\n",
        )
        .unwrap();
        let c = deck.circuit();
        match c.device("R1").unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 10e3),
            k => panic!("{k:?}"),
        }
        match c.device("C1").unwrap().kind() {
            DeviceKind::Capacitor { farads, .. } => assert_eq!(*farads, 1.5e-12),
            k => panic!("{k:?}"),
        }
        match c.device("L1").unwrap().kind() {
            DeviceKind::Inductor { henries, .. } => assert_eq!(*henries, 2e-6),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn waveform_forms() {
        let deck = parse_deck(
            "V1 a 0 5\n\
             V2 b 0 DC -2.5\n\
             V3 c 0 SIN(1 0.5 1k)\n\
             V4 d 0 PULSE(0 1 1u 10n 10n 1u 2u)\n\
             V5 e 0 PWL(0 0 1u 1 2u 1)\n\
             I1 f 0 STEP(0 20u 0.5u 10n)\n",
        )
        .unwrap();
        let c = deck.circuit();
        let wave = |name: &str| match c.device(name).unwrap().kind() {
            DeviceKind::Vsource { wave, .. } | DeviceKind::Isource { wave, .. } => wave.clone(),
            k => panic!("{k:?}"),
        };
        assert_eq!(wave("V1"), Waveform::dc(5.0));
        assert_eq!(wave("V2"), Waveform::dc(-2.5));
        assert_eq!(wave("V3"), Waveform::sine(1.0, 0.5, 1e3));
        assert_eq!(
            wave("V4"),
            Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-6,
                rise: 10e-9,
                fall: 10e-9,
                width: 1e-6,
                period: 2e-6,
            }
        );
        assert_eq!(wave("V5"), Waveform::Pwl(vec![(0.0, 0.0), (1e-6, 1.0), (2e-6, 1.0)]));
        assert_eq!(wave("I1"), Waveform::step(0.0, 20e-6, 0.5e-6, 10e-9));
    }

    #[test]
    fn mosfet_with_model_card() {
        let deck = parse_deck(
            ".model nch nmos (vto=0.8 kp=100u lambda=0.03 gamma=0.4 phi=0.7)\n\
             VD d 0 3\n\
             VG g 0 2\n\
             M1 d g 0 0 nch W=10u L=1u\n",
        )
        .unwrap();
        let c = deck.circuit();
        match c.device("M1").unwrap().kind() {
            DeviceKind::Mosfet { polarity, params, .. } => {
                assert_eq!(*polarity, MosPolarity::Nmos);
                assert_eq!(params.vt0, 0.8);
                assert_eq!(params.kp, 100e-6);
                assert_eq!(params.lambda, 0.03);
                assert_eq!(params.w, 10e-6);
                assert_eq!(params.l, 1e-6);
                // Unset parameters fall back to process defaults.
                assert_eq!(params.cox, MosParams::nmos_default(1.0, 1.0).cox);
            }
            k => panic!("{k:?}"),
        }
        let sol = DcAnalysis::new(c).solve().unwrap();
        assert!(sol.source_current("VD").unwrap().abs() > 1e-6);
    }

    #[test]
    fn subckt_flattening_prefixes_internals() {
        let deck = parse_deck(
            ".subckt pair top bot\n\
             Rtop top m 1k\n\
             Rbot m bot 1k\n\
             .ends pair\n\
             V1 in 0 4\n\
             X1 in out pair\n\
             X2 out 0 pair\n",
        )
        .unwrap();
        let c = deck.circuit();
        assert!(c.device("X1.Rtop").is_some());
        assert!(c.device("X2.Rbot").is_some());
        assert!(c.find_node("X1.m").is_some());
        assert!(c.find_node("X2.m").is_some());
        let sol = DcAnalysis::new(c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        assert!((sol.voltage(out) - 2.0).abs() < 1e-6, "v(out) = {}", sol.voltage(out));
    }

    #[test]
    fn nested_instantiation_flattens_recursively() {
        let deck = parse_deck(
            ".subckt leg a b\n\
             R1 a b 2k\n\
             .ends\n\
             .subckt pair top bot\n\
             Xup top mid leg\n\
             Xdn mid bot leg\n\
             .ends\n\
             V1 in 0 8\n\
             X1 in 0 pair\n",
        )
        .unwrap();
        let c = deck.circuit();
        assert!(c.device("X1.Xup.R1").is_some());
        assert!(c.find_node("X1.mid").is_some());
        let sol = DcAnalysis::new(c).solve().unwrap();
        let mid = c.find_node("X1.mid").unwrap();
        assert!((sol.voltage(mid) - 4.0).abs() < 1e-6);
    }

    /// Dot-cards inside a .subckt body are rejected loudly — a locally
    /// scoped `.model` must not silently hoist to deck scope.
    #[test]
    fn dot_cards_inside_subckt_bodies_are_rejected() {
        for card in [
            ".model m nmos (vto=0.7)",
            ".title sneaky",
            ".nodeorder a b",
            ".subckt q a",
            ".param x=1",
        ] {
            let text = format!(".subckt p a b\n{card}\nR1 a b 1k\n.ends\n");
            let e = parse_deck(&text).unwrap_err();
            assert!(
                e.to_string().contains("inside a .subckt body"),
                "{card}: {e}"
            );
        }
    }

    #[test]
    fn recursive_subckt_is_an_error_not_a_hang() {
        let e = parse_deck(
            ".subckt loop a b\n\
             Xinner a b loop\n\
             .ends\n\
             X1 in 0 loop\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("recursive"), "{e}");
    }

    #[test]
    fn nodeorder_pre_interns_nodes() {
        let deck = parse_deck(
            ".nodeorder zz aa mm\n\
             V1 aa 0 1\n\
             R1 aa mm 1k\n\
             R2 mm zz 1k\n\
             R3 zz 0 1k\n",
        )
        .unwrap();
        let c = deck.circuit();
        // Interning order follows .nodeorder, not first device use.
        assert_eq!(c.find_node("zz").unwrap().index(), 1);
        assert_eq!(c.find_node("aa").unwrap().index(), 2);
        assert_eq!(c.find_node("mm").unwrap().index(), 3);
    }

    /// SPICE identifiers are case-insensitive: differently-cased
    /// spellings of one net must resolve to a single node (first
    /// spelling wins), not silently split the net in two.
    #[test]
    fn mixed_case_net_names_are_one_net() {
        let deck = parse_deck(
            "V1 VDD 0 DC 5\n\
             R1 vdd out 1k\n\
             R2 OUT 0 1k\n",
        )
        .unwrap();
        let c = deck.circuit();
        assert_eq!(c.node_count(), 3, "VDD/vdd and out/OUT each merge into one net");
        assert!(c.find_node("VDD").is_some(), "first spelling is canonical");
        assert!(c.find_node("out").is_some());
        let sol = DcAnalysis::new(c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        assert!((sol.voltage(out) - 2.5).abs() < 1e-6, "v(out) = {}", sol.voltage(out));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let cases: [(&str, usize); 7] = [
            ("R1 a b notanumber\n", 1),
            ("V1 a 0 DC 5\nR1 a b\n", 2),
            ("+ orphan continuation\n", 1),
            ("Y1 a b c\n", 1),
            ("Q1 a b c\n", 1), // BJT card without its model name
            ("R1 a b 1k extra\n", 1),
            (".bogus x\n", 1),
        ];
        for (text, want_line) in cases {
            match parse_deck(text).unwrap_err() {
                NetlistError::Parse { line, col, .. } => {
                    assert_eq!(line, want_line, "{text:?}");
                    assert!(col >= 1);
                }
                other => panic!("{text:?} → {other:?}"),
            }
        }
    }

    /// Columns are char positions, not byte offsets: on a line with
    /// multibyte UTF-8 the diagnostic must still point at the offending
    /// token as the user sees it.
    #[test]
    fn error_columns_are_char_positions_not_bytes() {
        // "R1 αβ b 1k extra": `extra` starts at char column 12 (byte
        // offset 14 — α and β are 2 bytes each).
        match parse_deck("R1 αβ b 1k extra\n").unwrap_err() {
            NetlistError::Parse { line, col, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("extra"), "{reason}");
                assert_eq!(col, 12, "char column, not byte offset");
            }
            other => panic!("{other:?}"),
        }
        // Same structure, ASCII: the column must agree.
        match parse_deck("R1 ab b 1k extra\n").unwrap_err() {
            NetlistError::Parse { col, .. } => assert_eq!(col, 12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lowering_errors_carry_line() {
        let cases = [
            "R1 a b 1k\nR1 a b 2k\n",                   // duplicate name
            "M1 d g 0 0 nomodel W=1u L=1u\n",           // missing model
            "X1 a b nosub\n",                           // missing subckt
            ".subckt p a b\nR1 a b 1\n.ends\nX1 a p\n", // port arity
            "R1 a b -5\n",                              // invalid value
        ];
        for text in cases {
            match parse_deck(text).unwrap_err() {
                NetlistError::Netlist { line, .. } => assert!(line >= 1, "{text:?}"),
                other => panic!("{text:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn dollar_and_semicolon_comments() {
        let deck = parse_deck("R1 a b 1k $ trailing\nR2 b 0 2k ; also\n").unwrap();
        assert_eq!(deck.circuit().devices().len(), 2);
    }

    /// `.title` is exempt from comment stripping — real SPICE titles
    /// may contain `;` and `$`.
    #[test]
    fn title_keeps_comment_characters() {
        let deck = parse_deck(".title 50% $duty; cycle $ clk\nR1 a 0 1k\n").unwrap();
        assert_eq!(deck.title.as_deref(), Some("50% $duty; cycle $ clk"));
        assert_eq!(deck.circuit().devices().len(), 1);
    }

    #[test]
    fn end_card_stops_parsing() {
        let deck = parse_deck("R1 a 0 1k\n.end\ngarbage beyond the end\n").unwrap();
        assert_eq!(deck.circuit().devices().len(), 1);
    }

    #[test]
    fn vcvs_card() {
        let deck = parse_deck("V1 a 0 1\nE1 out 0 a 0 -3\nRL out 0 1k\n").unwrap();
        let sol = DcAnalysis::new(deck.circuit()).solve().unwrap();
        let out = deck.circuit().find_node("out").unwrap();
        assert!((sol.voltage(out) + 3.0).abs() < 1e-6);
    }

    #[test]
    fn diode_card_with_model() {
        let deck = parse_deck(
            ".model dsig d (is=1e-14 n=1.2 rs=2.5 cjo=3p)\n\
             V1 in 0 5\n\
             D1 in out dsig\n\
             RL out 0 1k\n",
        )
        .unwrap();
        let c = deck.circuit();
        match c.device("D1").unwrap().kind() {
            DeviceKind::Diode { params, .. } => {
                assert_eq!(params.is_sat, 1e-14);
                assert_eq!(params.n, 1.2);
                assert_eq!(params.rs, 2.5);
                assert_eq!(params.cj0, 3e-12);
            }
            k => panic!("{k:?}"),
        }
        let sol = DcAnalysis::new(c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        // Forward drop of roughly a junction; the rest lands on RL.
        assert!(sol.voltage(out) > 3.5 && sol.voltage(out) < 5.0, "{}", sol.voltage(out));
    }

    #[test]
    fn bjt_card_with_model() {
        let deck = parse_deck(
            ".model qn npn (is=1e-15 bf=150)\n\
             .model qp pnp (is=2e-15 bf=80 br=4 cje=1p cjc=2p)\n\
             VCC vcc 0 5\n\
             RB vcc b 100k\n\
             RC vcc c 1k\n\
             Q1 c b 0 qn\n\
             Q2 0 c vcc qp\n",
        )
        .unwrap();
        let c = deck.circuit();
        match c.device("Q1").unwrap().kind() {
            DeviceKind::Bjt { polarity, params, .. } => {
                assert_eq!(*polarity, castg_spice::BjtPolarity::Npn);
                assert_eq!(params.bf, 150.0);
                // Unset keys keep the signal defaults.
                assert_eq!(params.br, castg_spice::BjtParams::signal_default().br);
            }
            k => panic!("{k:?}"),
        }
        match c.device("Q2").unwrap().kind() {
            DeviceKind::Bjt { polarity, params, .. } => {
                assert_eq!(*polarity, castg_spice::BjtPolarity::Pnp);
                assert_eq!(params.cjc, 2e-12);
            }
            k => panic!("{k:?}"),
        }
        let sol = DcAnalysis::new(c).solve().unwrap();
        let b = c.find_node("b").unwrap();
        // Forward-biased base-emitter junction.
        assert!(sol.voltage(b) > 0.4 && sol.voltage(b) < 1.0, "{}", sol.voltage(b));
    }

    #[test]
    fn controlled_source_cards() {
        let deck = parse_deck(
            "V1 in 0 2\n\
             R1 in 0 1k\n\
             G1 out1 0 in 0 -1e-3\n\
             RG out1 0 1k\n\
             F1 out2 0 V1 2\n\
             RF out2 0 1k\n\
             H1 out3 0 v1 500\n\
             RH out3 0 1k\n",
        )
        .unwrap();
        let c = deck.circuit();
        let sol = DcAnalysis::new(c).solve().unwrap();
        // G1: i = -1mS * 2V out of out1 → v(out1) = +2V across 1k.
        let v = |n: &str| sol.voltage(c.find_node(n).unwrap());
        assert!((v("out1") - 2.0).abs() < 1e-6, "{}", v("out1"));
        // V1 carries -2mA (into its + terminal from the divider), so
        // F1 pushes gain·i out of out2.
        let i_v1 = sol.source_current("V1").unwrap();
        assert!((v("out2") - (-2.0 * i_v1 * 1e3)).abs() < 1e-6, "{}", v("out2"));
        // H1 references `v1` case-insensitively:
        // v(out3) = ohms · i(V1) = 500 · (−2 mA) = −1 V.
        assert!((v("out3") - 500.0 * i_v1).abs() < 1e-6, "{}", v("out3"));
    }

    #[test]
    fn wrong_model_kind_is_a_loud_error() {
        let e = parse_deck(".model nch nmos (vto=0.7)\nD1 a 0 nch\n").unwrap_err();
        assert!(e.to_string().contains("needs d"), "{e}");
        let e = parse_deck(".model dsig d (is=1e-14)\nM1 d g 0 0 dsig W=1u L=1u\n").unwrap_err();
        assert!(e.to_string().contains("needs nmos/pmos"), "{e}");
        let e = parse_deck(".model dsig d (is=1e-14)\nQ1 c b 0 dsig\n").unwrap_err();
        assert!(e.to_string().contains("needs npn/pnp"), "{e}");
    }

    #[test]
    fn cccs_before_its_controller_is_an_error() {
        let e = parse_deck("F1 out 0 V1 2\nV1 in 0 1\nRL out 0 1k\n").unwrap_err();
        assert!(e.to_string().contains("not found"), "{e}");
    }

    #[test]
    fn params_and_expressions_on_cards() {
        let deck = parse_deck(
            ".param rtot={2*rhalf}\n\
             .param rhalf=1k vdd=6\n\
             V1 vin 0 DC {vdd}\n\
             R1 vin mid {rtot/2}\n\
             R2 mid 0 {rhalf}\n\
             C1 mid 0 {10p}\n",
        )
        .unwrap();
        assert_eq!(
            deck.params,
            vec![
                ("rtot".to_string(), 2e3),
                ("rhalf".to_string(), 1e3),
                ("vdd".to_string(), 6.0)
            ],
            "forward reference resolves; deck order kept"
        );
        let c = deck.circuit();
        match c.device("R1").unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 1e3),
            k => panic!("{k:?}"),
        }
        match c.device("C1").unwrap().kind() {
            DeviceKind::Capacitor { farads, .. } => {
                assert_eq!(farads.to_bits(), 10e-12f64.to_bits())
            }
            k => panic!("{k:?}"),
        }
        let sol = DcAnalysis::new(c).solve().unwrap();
        let mid = c.find_node("mid").unwrap();
        assert!((sol.voltage(mid) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn params_reach_models_and_waveforms() {
        let deck = parse_deck(
            ".param vt=0.8 wbase=5u amp=2\n\
             .model nch nmos (vto={vt} kp=100u)\n\
             VD d 0 {amp+1}\n\
             VG g 0 SIN({amp/2} {amp} 1k)\n\
             M1 d g 0 0 nch W={2*wbase} L=1u\n",
        )
        .unwrap();
        let c = deck.circuit();
        match c.device("M1").unwrap().kind() {
            DeviceKind::Mosfet { params, .. } => {
                assert_eq!(params.vt0, 0.8);
                assert_eq!(params.w, 10e-6);
            }
            k => panic!("{k:?}"),
        }
        match c.device("VG").unwrap().kind() {
            DeviceKind::Vsource { wave, .. } => {
                assert_eq!(*wave, Waveform::sine(1.0, 2.0, 1e3));
            }
            k => panic!("{k:?}"),
        }
        match c.device("VD").unwrap().kind() {
            DeviceKind::Vsource { wave, .. } => assert_eq!(*wave, Waveform::dc(3.0)),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn parameterized_subckt_defaults_and_overrides() {
        let deck = parse_deck(
            ".param scale=2\n\
             .subckt leg a b r=1k rr={2*r}\n\
             R1 a m {r}\n\
             R2 m b {rr*scale/scale}\n\
             .ends\n\
             V1 in 0 9\n\
             X1 in mid leg\n\
             X2 mid 0 leg r={500*scale} rr=1k\n",
        )
        .unwrap();
        let c = deck.circuit();
        let ohms = |name: &str| match c.device(name).unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => *ohms,
            k => panic!("{k:?}"),
        };
        // X1: defaults — r=1k, rr=2*r=2k.
        assert_eq!(ohms("X1.R1"), 1e3);
        assert_eq!(ohms("X1.R2"), 2e3);
        // X2: r overridden (in the caller's scope: 500*scale=1k), and
        // rr overridden directly — the rr default never evaluates.
        assert_eq!(ohms("X2.R1"), 1e3);
        assert_eq!(ohms("X2.R2"), 1e3);
    }

    #[test]
    fn instance_overrides_shadow_globals() {
        // `w` is both a global .param and a subckt parameter: the
        // subckt body must see the instance value, not the global.
        let deck = parse_deck(
            ".param w=1k\n\
             .subckt cell a b w={w}\n\
             R1 a b {w}\n\
             .ends\n\
             V1 in 0 1\n\
             X1 in 0 cell w=2k\n\
             X2 in 0 cell\n",
        )
        .unwrap();
        let c = deck.circuit();
        let ohms = |name: &str| match c.device(name).unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => *ohms,
            k => panic!("{k:?}"),
        };
        assert_eq!(ohms("X1.R1"), 2e3, "instance override shadows the global");
        assert_eq!(ohms("X2.R1"), 1e3, "default falls back to the global");
    }

    #[test]
    fn param_error_paths() {
        // Reference cycle.
        let e = parse_deck(".param a={b} b={a}\nR1 x 0 1k\n").unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
        // Undefined reference.
        let e = parse_deck("R1 x 0 {nope}\n").unwrap_err();
        assert!(e.to_string().contains("undefined parameter"), "{e}");
        // Duplicate definition.
        let e = parse_deck(".param a=1\n.param A=2\n").unwrap_err();
        assert!(e.to_string().contains("duplicate .param"), "{e}");
        // Unterminated expression.
        let e = parse_deck("R1 x 0 {1k\n").unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
        // Unknown instance parameter.
        let e = parse_deck(".subckt s a\nR1 a 0 1k\n.ends\nX1 x s q=1\n").unwrap_err();
        assert!(e.to_string().contains("no such parameter"), "{e}");
        // Expression where a node is required.
        let e = parse_deck("R1 {1} 0 1k\n").unwrap_err();
        assert!(e.to_string().contains("expected a node name"), "{e}");
        // Malformed .param card.
        assert!(parse_deck(".param\n").is_err());
        assert!(parse_deck(".param x\n").is_err());
        assert!(parse_deck(".param 1x=2\n").is_err());
    }

    #[test]
    fn external_overrides_shadow_deck_params() {
        let text = ".param n=2 r={1k*n}\nV1 in 0 5\nR1 in 0 {r}\n";
        let deck = parse_deck_with_params(
            text,
            &[("N".to_string(), 4.0), ("extra".to_string(), 1.0)],
        )
        .unwrap();
        match deck.circuit().device("R1").unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 4e3),
            k => panic!("{k:?}"),
        }
        assert_eq!(
            deck.params,
            vec![
                ("n".to_string(), 4.0),
                ("r".to_string(), 4e3),
                ("extra".to_string(), 1.0)
            ]
        );
    }
}
