//! SPICE-deck parsing and lowering into [`castg_spice::Circuit`].
//!
//! The accepted dialect (documented in the crate docs) covers classic
//! device cards `R`/`C`/`L`/`V`/`I`/`M`/`E`, subcircuits
//! (`.subckt`/`.ends` with `X` instantiation, flattened with
//! `<instance>.<name>` prefixes), `.model` cards with Level-1
//! parameters, `.title`, `.end`, scale suffixes, line continuations
//! (`+`) and comments (`*` lines, `;` and ` $` trailers). One `castg`
//! extension: `.nodeorder`, emitted by the deck writer, pre-interns
//! nodes so a written-and-reparsed circuit reproduces the original node
//! table exactly.

use std::collections::HashMap;

use castg_spice::{Circuit, MosParams, MosPolarity, Waveform};

use crate::number::parse_number;
use crate::NetlistError;

/// How deep `X` instantiation may nest before the parser assumes a
/// recursive subcircuit definition and bails out.
const MAX_SUBCKT_DEPTH: usize = 32;

/// A parsed deck: the lowered circuit plus deck-level metadata.
#[derive(Debug, Clone)]
pub struct Deck {
    /// `.title` text, if present.
    pub title: Option<String>,
    circuit: Circuit,
}

impl Deck {
    /// The lowered circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Consumes the deck, returning the circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }
}

/// One logical input line (continuations joined), tagged with the
/// source line number of its first physical line.
struct Line {
    no: usize,
    text: String,
}

/// One token with its 1-based column in the logical line.
struct Tok<'a> {
    text: &'a str,
    col: usize,
}

/// Removes `;` and ` $` trailers.
fn strip_comment(raw: &str) -> &str {
    let upto = raw.find(';').unwrap_or(raw.len());
    let mut cut = upto;
    // `$` opens a comment at line start or after whitespace.
    for (i, c) in raw[..upto].char_indices() {
        if c == '$' && (i == 0 || raw[..i].ends_with(char::is_whitespace)) {
            cut = i;
            break;
        }
    }
    &raw[..cut]
}

/// Joins continuation lines and drops comments/blanks.
fn logical_lines(text: &str) -> Result<Vec<Line>, NetlistError> {
    let mut out: Vec<Line> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let no = i + 1;
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            match out.last_mut() {
                Some(prev) => {
                    prev.text.push(' ');
                    prev.text.push_str(rest.trim());
                }
                None => {
                    return Err(NetlistError::parse(
                        no,
                        1,
                        "continuation line with nothing to continue",
                    ))
                }
            }
            continue;
        }
        out.push(Line { no, text: trimmed.to_string() });
    }
    Ok(out)
}

/// Splits a logical line into tokens. Whitespace and `,` separate;
/// `(`, `)` and `=` are standalone tokens.
fn tokenize(line: &str) -> Vec<Tok<'_>> {
    fn flush<'a>(toks: &mut Vec<Tok<'a>>, line: &'a str, start: &mut Option<usize>, end: usize) {
        if let Some(s) = start.take() {
            toks.push(Tok { text: &line[s..end], col: s + 1 });
        }
    }
    let mut toks = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() || c == ',' {
            flush(&mut toks, line, &mut start, i);
        } else if c == '(' || c == ')' || c == '=' {
            flush(&mut toks, line, &mut start, i);
            toks.push(Tok { text: &line[i..i + c.len_utf8()], col: i + 1 });
        } else if start.is_none() {
            start = Some(i);
        }
    }
    flush(&mut toks, line, &mut start, line.len());
    toks
}

/// A Level-1 `.model` card: polarity plus whatever parameters the card
/// sets (unset ones fall back to the process defaults).
#[derive(Debug, Clone, Default)]
struct MosModel {
    pmos: bool,
    params: HashMap<String, f64>,
}

/// A `.subckt` definition.
struct Subckt<'a> {
    ports: Vec<String>,
    lines: Vec<&'a Line>,
}

struct LowerCtx<'a> {
    models: HashMap<String, (MosModel, usize)>,
    subckts: HashMap<String, Subckt<'a>>,
}

/// Parses a deck into a lowered circuit.
///
/// # Errors
///
/// [`NetlistError::Parse`] (with line and column) for malformed text,
/// [`NetlistError::Netlist`] (with line) for cards that parse but do
/// not lower (duplicate names, missing models, invalid element values).
pub fn parse_deck(text: &str) -> Result<Deck, NetlistError> {
    let lines = logical_lines(text)?;

    // Pass 1: structure. Model cards are global; subcircuit bodies are
    // collected for flattening; everything else is a top-level card.
    let mut ctx = LowerCtx { models: HashMap::new(), subckts: HashMap::new() };
    let mut top: Vec<&Line> = Vec::new();
    let mut title: Option<String> = None;
    let mut open_sub: Option<(String, Subckt<'_>, usize)> = None;
    for line in &lines {
        let toks = tokenize(&line.text);
        let Some(first) = toks.first() else { continue };
        let head = first.text.to_ascii_lowercase();
        if !head.starts_with('.') {
            match &mut open_sub {
                Some((_, sub, _)) => sub.lines.push(line),
                None => top.push(line),
            }
            continue;
        }
        // Dot-cards are deck-global; inside a .subckt body only device
        // and X cards belong. Rejecting the rest loudly beats silently
        // hoisting a subckt-local .model (locally scoped in some SPICE
        // dialects) to global scope.
        if open_sub.is_some() && head != ".ends" {
            return Err(NetlistError::parse(
                line.no,
                first.col,
                format!("`{head}` is not supported inside a .subckt body"),
            ));
        }
        match head.as_str() {
            ".title" => {
                let rest = line.text[first.text.len()..].trim();
                title = Some(rest.to_string());
            }
            ".end" => break,
            ".subckt" => {
                // Nested definitions are rejected by the in-body guard
                // above.
                if toks.len() < 2 {
                    return Err(NetlistError::parse(line.no, first.col, ".subckt needs a name"));
                }
                let name = toks[1].text.to_ascii_lowercase();
                let ports = toks[2..].iter().map(|t| t.text.to_ascii_lowercase()).collect();
                open_sub = Some((name, Subckt { ports, lines: Vec::new() }, line.no));
            }
            ".ends" => match open_sub.take() {
                Some((name, sub, _)) => {
                    if let Some(given) = toks.get(1) {
                        if !given.text.eq_ignore_ascii_case(&name) {
                            return Err(NetlistError::parse(
                                line.no,
                                given.col,
                                format!(".ends `{}` does not match .subckt `{name}`", given.text),
                            ));
                        }
                    }
                    if ctx.subckts.insert(name.clone(), sub).is_some() {
                        return Err(NetlistError::parse(
                            line.no,
                            first.col,
                            format!("duplicate .subckt `{name}`"),
                        ));
                    }
                }
                None => {
                    return Err(NetlistError::parse(line.no, first.col, ".ends without .subckt"))
                }
            },
            ".model" => {
                let (name, model) = parse_model_card(&toks, line.no)?;
                if ctx.models.insert(name.clone(), (model, line.no)).is_some() {
                    return Err(NetlistError::parse(
                        line.no,
                        first.col,
                        format!("duplicate .model `{name}`"),
                    ));
                }
            }
            ".nodeorder" => top.push(line),
            other => {
                return Err(NetlistError::parse(
                    line.no,
                    first.col,
                    format!("unknown directive `{other}`"),
                ))
            }
        }
    }
    if let Some((name, _, line_no)) = open_sub {
        return Err(NetlistError::parse(line_no, 1, format!(".subckt `{name}` never closed")));
    }

    // Pass 2: lower top-level cards in order, flattening X instances.
    let mut lowerer = Lowerer { circuit: Circuit::new(), node_case: HashMap::new() };
    let no_ports = HashMap::new();
    for line in top {
        lower_card(&mut lowerer, line, "", &no_ports, 0, &ctx)?;
    }
    Ok(Deck { title, circuit: lowerer.circuit })
}

/// Lowering state: the circuit under construction plus the
/// case-canonicalization table for net names (SPICE identifiers are
/// case-insensitive; the first spelling of a net wins and later
/// spellings alias to it, so `VDD` and `vdd` are one net).
struct Lowerer {
    circuit: Circuit,
    /// lowercase net name → the canonical (first-seen) spelling.
    node_case: HashMap<String, String>,
}

impl Lowerer {
    /// Canonicalizes a resolved (port-mapped, prefixed) net name.
    fn canonical(&mut self, name: String) -> String {
        match self.node_case.entry(name.to_ascii_lowercase()) {
            std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(name.clone());
                name
            }
        }
    }

    /// Interns a net by its resolved name, case-insensitively.
    fn node(&mut self, name: String) -> castg_spice::NodeId {
        if name == "0" {
            return Circuit::GROUND;
        }
        let canonical = self.canonical(name);
        self.circuit.node(&canonical)
    }
}

/// Parses `.model name nmos|pmos (k=v ...)` (parens optional).
fn parse_model_card(toks: &[Tok<'_>], line_no: usize) -> Result<(String, MosModel), NetlistError> {
    if toks.len() < 3 {
        return Err(NetlistError::parse(
            line_no,
            toks.first().map_or(1, |t| t.col),
            ".model needs a name and a type",
        ));
    }
    let name = toks[1].text.to_ascii_lowercase();
    let pmos = match toks[2].text.to_ascii_lowercase().as_str() {
        "nmos" => false,
        "pmos" => true,
        other => {
            return Err(NetlistError::parse(
                line_no,
                toks[2].col,
                format!("unsupported model type `{other}` (need nmos or pmos)"),
            ))
        }
    };
    let mut model = MosModel { pmos, params: HashMap::new() };
    for (key, value) in parse_assignments(&toks[3..], line_no)? {
        let k = key.to_ascii_lowercase();
        match k.as_str() {
            "vto" | "vt0" | "kp" | "lambda" | "gamma" | "phi" | "cox" | "cgso" | "w" | "l" => {
                let canonical = if k == "vt0" { "vto".to_string() } else { k };
                model.params.insert(canonical, value);
            }
            other => {
                return Err(NetlistError::parse(
                    line_no,
                    1,
                    format!("unknown model parameter `{other}`"),
                ))
            }
        }
    }
    Ok((name, model))
}

/// Parses a `k=v k=v …` tail (optionally wrapped in parentheses).
fn parse_assignments(
    toks: &[Tok<'_>],
    line_no: usize,
) -> Result<Vec<(String, f64)>, NetlistError> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].text {
            "(" => {
                depth += 1;
                i += 1;
            }
            ")" => {
                if depth == 0 {
                    return Err(NetlistError::parse(line_no, toks[i].col, "unbalanced `)`"));
                }
                depth -= 1;
                i += 1;
            }
            key => {
                if toks.get(i + 1).map(|t| t.text) != Some("=") {
                    return Err(NetlistError::parse(
                        line_no,
                        toks[i].col,
                        format!("expected `{key} = value`"),
                    ));
                }
                let vt = toks.get(i + 2).ok_or_else(|| {
                    NetlistError::parse(line_no, toks[i].col, format!("`{key}=` without a value"))
                })?;
                let value = parse_number(vt.text).ok_or_else(|| {
                    NetlistError::parse(line_no, vt.col, format!("bad number `{}`", vt.text))
                })?;
                out.push((key.to_string(), value));
                i += 3;
            }
        }
    }
    if depth != 0 {
        return Err(NetlistError::parse(line_no, 1, "unbalanced `(`"));
    }
    Ok(out)
}

/// Resolves a node token to its flattened node *name*: ground aliases
/// pass through, subcircuit ports map to the caller's nets, internal
/// nets gain the instance prefix.
fn resolve_node_name(tok: &str, prefix: &str, ports: &HashMap<String, String>) -> String {
    if tok == "0" || tok.eq_ignore_ascii_case("gnd") {
        return "0".to_string();
    }
    if let Some(outer) = ports.get(&tok.to_ascii_lowercase()) {
        return outer.clone();
    }
    if prefix.is_empty() {
        tok.to_string()
    } else {
        format!("{prefix}{tok}")
    }
}

/// Lowers one card (device or `.nodeorder` / `X` instantiation) into
/// the circuit.
fn lower_card(
    lowerer: &mut Lowerer,
    line: &Line,
    prefix: &str,
    ports: &HashMap<String, String>,
    depth: usize,
    ctx: &LowerCtx<'_>,
) -> Result<(), NetlistError> {
    let toks = tokenize(&line.text);
    let Some(first) = toks.first() else { return Ok(()) };

    if first.text.eq_ignore_ascii_case(".nodeorder") {
        for t in &toks[1..] {
            let name = resolve_node_name(t.text, prefix, ports);
            lowerer.node(name);
        }
        return Ok(());
    }

    let name_tok = first;
    let kind = name_tok
        .text
        .chars()
        .next()
        .map(|c| c.to_ascii_lowercase())
        .filter(char::is_ascii_alphabetic)
        .ok_or_else(|| {
            NetlistError::parse(
                line.no,
                name_tok.col,
                format!("expected a device card, got `{}`", name_tok.text),
            )
        })?;
    let dev_name = format!("{prefix}{}", name_tok.text);

    // Helpers over the token tail.
    let node_tok = |i: usize, what: &str| -> Result<&Tok<'_>, NetlistError> {
        toks.get(i).ok_or_else(|| {
            NetlistError::parse(
                line.no,
                name_tok.col,
                format!("`{}` is missing its {what} node", name_tok.text),
            )
        })
    };
    let num_tok = |i: usize, what: &str| -> Result<f64, NetlistError> {
        let t = toks.get(i).ok_or_else(|| {
            NetlistError::parse(
                line.no,
                name_tok.col,
                format!("`{}` is missing its {what}", name_tok.text),
            )
        })?;
        parse_number(t.text).ok_or_else(|| {
            NetlistError::parse(line.no, t.col, format!("bad number `{}`", t.text))
        })
    };
    let no_extra = |i: usize| -> Result<(), NetlistError> {
        match toks.get(i) {
            Some(t) => Err(NetlistError::parse(
                line.no,
                t.col,
                format!("unexpected trailing token `{}`", t.text),
            )),
            None => Ok(()),
        }
    };
    let node = |lowerer: &mut Lowerer, t: &Tok<'_>| {
        let name = resolve_node_name(t.text, prefix, ports);
        lowerer.node(name)
    };
    let lowered = |e: castg_spice::SpiceError| NetlistError::netlist(line.no, e.to_string());

    match kind {
        'r' | 'c' | 'l' => {
            let (ta, tb) = (node_tok(1, "first")?, node_tok(2, "second")?);
            let value = num_tok(3, "value")?;
            no_extra(4)?;
            let a = node(lowerer, ta);
            let b = node(lowerer, tb);
            match kind {
                'r' => lowerer.circuit.add_resistor(&dev_name, a, b, value).map_err(lowered)?,
                'c' => lowerer.circuit.add_capacitor(&dev_name, a, b, value).map_err(lowered)?,
                _ => lowerer.circuit.add_inductor(&dev_name, a, b, value).map_err(lowered)?,
            }
        }
        'v' | 'i' => {
            let (tp, tn) = (node_tok(1, "positive")?, node_tok(2, "negative")?);
            let wave = parse_waveform(&toks[3..], line.no, &dev_name)?;
            let p = node(lowerer, tp);
            let n = node(lowerer, tn);
            if kind == 'v' {
                lowerer.circuit.add_vsource(&dev_name, p, n, wave).map_err(lowered)?;
            } else {
                // SPICE convention: positive current flows from the
                // first node through the source into the second.
                lowerer.circuit.add_isource(&dev_name, p, n, wave).map_err(lowered)?;
            }
        }
        'm' => {
            let (td, tg, ts, tb) = (
                node_tok(1, "drain")?,
                node_tok(2, "gate")?,
                node_tok(3, "source")?,
                node_tok(4, "bulk")?,
            );
            let model_tok = toks.get(5).ok_or_else(|| {
                NetlistError::parse(
                    line.no,
                    name_tok.col,
                    format!("`{}` is missing its model name", name_tok.text),
                )
            })?;
            let (model, _) = ctx
                .models
                .get(&model_tok.text.to_ascii_lowercase())
                .ok_or_else(|| {
                    NetlistError::netlist(
                        line.no,
                        format!("unknown model `{}` (no matching .model card)", model_tok.text),
                    )
                })?;
            let mut overrides: HashMap<String, f64> = HashMap::new();
            for (k, v) in parse_assignments(&toks[6..], line.no)? {
                let k = k.to_ascii_lowercase();
                if k != "w" && k != "l" {
                    return Err(NetlistError::parse(
                        line.no,
                        name_tok.col,
                        format!("unknown instance parameter `{k}` (only W and L)"),
                    ));
                }
                overrides.insert(k, v);
            }
            let geometry = |key: &str| -> Result<f64, NetlistError> {
                overrides
                    .get(key)
                    .or_else(|| model.params.get(key))
                    .copied()
                    .ok_or_else(|| {
                        NetlistError::netlist(
                            line.no,
                            format!(
                                "`{}` has no {} (set {}= on the instance or the model)",
                                name_tok.text,
                                key.to_ascii_uppercase(),
                                key.to_ascii_uppercase()
                            ),
                        )
                    })
            };
            let (w, l) = (geometry("w")?, geometry("l")?);
            let (polarity, mut params) = if model.pmos {
                (MosPolarity::Pmos, MosParams::pmos_default(w, l))
            } else {
                (MosPolarity::Nmos, MosParams::nmos_default(w, l))
            };
            for (k, v) in &model.params {
                match k.as_str() {
                    "vto" => params.vt0 = *v,
                    "kp" => params.kp = *v,
                    "lambda" => params.lambda = *v,
                    "gamma" => params.gamma = *v,
                    "phi" => params.phi = *v,
                    "cox" => params.cox = *v,
                    "cgso" => params.cgso = *v,
                    // Geometry already applied (instance overrides win).
                    "w" | "l" => {}
                    _ => unreachable!("model card parser admits only known keys"),
                }
            }
            let (d, g, s, b) =
                (node(lowerer, td), node(lowerer, tg), node(lowerer, ts), node(lowerer, tb));
            lowerer.circuit.add_mosfet(&dev_name, d, g, s, b, polarity, params).map_err(lowered)?;
        }
        'e' => {
            let (tp, tn, tcp, tcn) = (
                node_tok(1, "positive")?,
                node_tok(2, "negative")?,
                node_tok(3, "positive controlling")?,
                node_tok(4, "negative controlling")?,
            );
            let gain = num_tok(5, "gain")?;
            no_extra(6)?;
            let (p, n) = (node(lowerer, tp), node(lowerer, tn));
            let (cp, cn) = (node(lowerer, tcp), node(lowerer, tcn));
            lowerer.circuit.add_vcvs(&dev_name, p, n, cp, cn, gain).map_err(lowered)?;
        }
        'x' => {
            if depth >= MAX_SUBCKT_DEPTH {
                return Err(NetlistError::netlist(
                    line.no,
                    format!(
                        "subcircuit nesting exceeds {MAX_SUBCKT_DEPTH} levels \
                         (recursive definition?)"
                    ),
                ));
            }
            let sub_tok = toks.last().filter(|t| t.col != name_tok.col).ok_or_else(|| {
                NetlistError::parse(
                    line.no,
                    name_tok.col,
                    format!("`{}` needs nodes and a subcircuit name", name_tok.text),
                )
            })?;
            let sub = ctx.subckts.get(&sub_tok.text.to_ascii_lowercase()).ok_or_else(|| {
                NetlistError::netlist(
                    line.no,
                    format!("unknown subcircuit `{}` (no matching .subckt)", sub_tok.text),
                )
            })?;
            let args = &toks[1..toks.len() - 1];
            if args.len() != sub.ports.len() {
                return Err(NetlistError::netlist(
                    line.no,
                    format!(
                        "`{}` connects {} nodes but `{}` declares {} ports",
                        name_tok.text,
                        args.len(),
                        sub_tok.text,
                        sub.ports.len()
                    ),
                ));
            }
            let mut inner_ports: HashMap<String, String> = HashMap::with_capacity(args.len());
            for (port, arg) in sub.ports.iter().zip(args) {
                inner_ports.insert(port.clone(), resolve_node_name(arg.text, prefix, ports));
            }
            let inner_prefix = format!("{dev_name}.");
            for inner in &sub.lines {
                lower_card(lowerer, inner, &inner_prefix, &inner_ports, depth + 1, ctx)?;
            }
        }
        other => {
            return Err(NetlistError::parse(
                line.no,
                name_tok.col,
                format!("unknown device card `{other}` (supported: R C L V I M E X)"),
            ))
        }
    }
    Ok(())
}

/// Parses an independent-source value: `DC v`, a bare number, or a
/// functional form `SIN(..)`, `PULSE(..)`, `PWL(..)`, `STEP(..)`.
fn parse_waveform(
    toks: &[Tok<'_>],
    line_no: usize,
    dev: &str,
) -> Result<Waveform, NetlistError> {
    let Some(first) = toks.first() else {
        return Err(NetlistError::parse(line_no, 1, format!("`{dev}` is missing its value")));
    };
    let head = first.text.to_ascii_lowercase();

    // Bare number → DC.
    if let Some(v) = parse_number(first.text) {
        return match toks.get(1) {
            Some(t) => Err(NetlistError::parse(
                line_no,
                t.col,
                format!("unexpected trailing token `{}`", t.text),
            )),
            None => Ok(Waveform::dc(v)),
        };
    }

    if head == "dc" {
        let t = toks.get(1).ok_or_else(|| {
            NetlistError::parse(line_no, first.col, format!("`{dev}`: DC needs a value"))
        })?;
        let v = parse_number(t.text).ok_or_else(|| {
            NetlistError::parse(line_no, t.col, format!("bad number `{}`", t.text))
        })?;
        return match toks.get(2) {
            Some(t) => Err(NetlistError::parse(
                line_no,
                t.col,
                format!("unexpected trailing token `{}`", t.text),
            )),
            None => Ok(Waveform::dc(v)),
        };
    }

    // Functional forms: head ( numbers ).
    let args = paren_numbers(&toks[1..], line_no, &head)?;
    let arity = |lo: usize, hi: usize| -> Result<(), NetlistError> {
        if args.len() < lo || args.len() > hi {
            return Err(NetlistError::parse(
                line_no,
                first.col,
                format!("`{head}` takes {lo}..={hi} arguments, got {}", args.len()),
            ));
        }
        Ok(())
    };
    let get = |i: usize| args.get(i).copied().unwrap_or(0.0);
    match head.as_str() {
        "sin" | "sine" => {
            // SIN(VO VA FREQ [TD [PHASE]]) — phase in radians; the
            // classic THETA damping slot is not modeled.
            arity(3, 5)?;
            Ok(Waveform::Sine {
                offset: get(0),
                amplitude: get(1),
                freq: get(2),
                delay: get(3),
                phase: get(4),
            })
        }
        "pulse" => {
            // PULSE(V1 V2 [TD [TR [TF [PW [PER]]]]]).
            arity(2, 7)?;
            Ok(Waveform::Pulse {
                low: get(0),
                high: get(1),
                delay: get(2),
                rise: get(3),
                fall: get(4),
                width: get(5),
                period: get(6),
            })
        }
        "pwl" => {
            if args.len() < 2 || args.len() % 2 != 0 {
                return Err(NetlistError::parse(
                    line_no,
                    first.col,
                    format!("`pwl` needs an even number of values (t v …), got {}", args.len()),
                ));
            }
            let points: Vec<(f64, f64)> =
                args.chunks_exact(2).map(|p| (p[0], p[1])).collect();
            if points.windows(2).any(|w| w[1].0 < w[0].0) {
                return Err(NetlistError::parse(
                    line_no,
                    first.col,
                    "`pwl` time points must be non-decreasing",
                ));
            }
            Ok(Waveform::Pwl(points))
        }
        // castg extension mirroring the paper's ramped step template.
        "step" => {
            arity(2, 4)?;
            Ok(Waveform::Step { base: get(0), elev: get(1), t_step: get(2), t_rise: get(3) })
        }
        other => Err(NetlistError::parse(
            line_no,
            first.col,
            format!("unknown source value `{other}` (DC, SIN, PULSE, PWL, STEP)"),
        )),
    }
}

/// Consumes `( n n n )` and returns the numbers; everything must be
/// inside one balanced pair of parentheses.
fn paren_numbers(toks: &[Tok<'_>], line_no: usize, head: &str) -> Result<Vec<f64>, NetlistError> {
    let mut it = toks.iter();
    match it.next() {
        Some(t) if t.text == "(" => {}
        Some(t) => {
            return Err(NetlistError::parse(
                line_no,
                t.col,
                format!("expected `(` after `{head}`"),
            ))
        }
        None => {
            return Err(NetlistError::parse(line_no, 1, format!("expected `(` after `{head}`")))
        }
    }
    let mut out = Vec::new();
    for t in it {
        match t.text {
            ")" => {
                return Ok(out);
            }
            other => {
                let v = parse_number(other).ok_or_else(|| {
                    NetlistError::parse(line_no, t.col, format!("bad number `{other}`"))
                })?;
                out.push(v);
            }
        }
    }
    Err(NetlistError::parse(line_no, 1, format!("`{head}(` never closed")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use castg_spice::{DcAnalysis, DeviceKind};

    #[test]
    fn divider_deck_lowers_and_solves() {
        let deck = parse_deck(
            "* a divider\n\
             .title tiny divider\n\
             V1 vin 0 DC 6\n\
             R1 vin mid 1k\n\
             R2 mid 0 1k ; lower leg\n",
        )
        .unwrap();
        assert_eq!(deck.title.as_deref(), Some("tiny divider"));
        let c = deck.circuit();
        assert_eq!(c.node_count(), 3);
        let sol = DcAnalysis::new(c).solve().unwrap();
        let mid = c.find_node("mid").unwrap();
        assert!((sol.voltage(mid) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn continuations_and_suffixes() {
        let deck = parse_deck(
            "R1 a b\n\
             + 10k\n\
             C1 b 0 1.5pF\n\
             L1 a b 2u\n",
        )
        .unwrap();
        let c = deck.circuit();
        match c.device("R1").unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 10e3),
            k => panic!("{k:?}"),
        }
        match c.device("C1").unwrap().kind() {
            DeviceKind::Capacitor { farads, .. } => assert_eq!(*farads, 1.5e-12),
            k => panic!("{k:?}"),
        }
        match c.device("L1").unwrap().kind() {
            DeviceKind::Inductor { henries, .. } => assert_eq!(*henries, 2e-6),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn waveform_forms() {
        let deck = parse_deck(
            "V1 a 0 5\n\
             V2 b 0 DC -2.5\n\
             V3 c 0 SIN(1 0.5 1k)\n\
             V4 d 0 PULSE(0 1 1u 10n 10n 1u 2u)\n\
             V5 e 0 PWL(0 0 1u 1 2u 1)\n\
             I1 f 0 STEP(0 20u 0.5u 10n)\n",
        )
        .unwrap();
        let c = deck.circuit();
        let wave = |name: &str| match c.device(name).unwrap().kind() {
            DeviceKind::Vsource { wave, .. } | DeviceKind::Isource { wave, .. } => wave.clone(),
            k => panic!("{k:?}"),
        };
        assert_eq!(wave("V1"), Waveform::dc(5.0));
        assert_eq!(wave("V2"), Waveform::dc(-2.5));
        assert_eq!(wave("V3"), Waveform::sine(1.0, 0.5, 1e3));
        assert_eq!(
            wave("V4"),
            Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-6,
                rise: 10e-9,
                fall: 10e-9,
                width: 1e-6,
                period: 2e-6,
            }
        );
        assert_eq!(wave("V5"), Waveform::Pwl(vec![(0.0, 0.0), (1e-6, 1.0), (2e-6, 1.0)]));
        assert_eq!(wave("I1"), Waveform::step(0.0, 20e-6, 0.5e-6, 10e-9));
    }

    #[test]
    fn mosfet_with_model_card() {
        let deck = parse_deck(
            ".model nch nmos (vto=0.8 kp=100u lambda=0.03 gamma=0.4 phi=0.7)\n\
             VD d 0 3\n\
             VG g 0 2\n\
             M1 d g 0 0 nch W=10u L=1u\n",
        )
        .unwrap();
        let c = deck.circuit();
        match c.device("M1").unwrap().kind() {
            DeviceKind::Mosfet { polarity, params, .. } => {
                assert_eq!(*polarity, MosPolarity::Nmos);
                assert_eq!(params.vt0, 0.8);
                assert_eq!(params.kp, 100e-6);
                assert_eq!(params.lambda, 0.03);
                assert_eq!(params.w, 10e-6);
                assert_eq!(params.l, 1e-6);
                // Unset parameters fall back to process defaults.
                assert_eq!(params.cox, MosParams::nmos_default(1.0, 1.0).cox);
            }
            k => panic!("{k:?}"),
        }
        let sol = DcAnalysis::new(c).solve().unwrap();
        assert!(sol.source_current("VD").unwrap().abs() > 1e-6);
    }

    #[test]
    fn subckt_flattening_prefixes_internals() {
        let deck = parse_deck(
            ".subckt pair top bot\n\
             Rtop top m 1k\n\
             Rbot m bot 1k\n\
             .ends pair\n\
             V1 in 0 4\n\
             X1 in out pair\n\
             X2 out 0 pair\n",
        )
        .unwrap();
        let c = deck.circuit();
        assert!(c.device("X1.Rtop").is_some());
        assert!(c.device("X2.Rbot").is_some());
        assert!(c.find_node("X1.m").is_some());
        assert!(c.find_node("X2.m").is_some());
        let sol = DcAnalysis::new(c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        assert!((sol.voltage(out) - 2.0).abs() < 1e-6, "v(out) = {}", sol.voltage(out));
    }

    #[test]
    fn nested_instantiation_flattens_recursively() {
        let deck = parse_deck(
            ".subckt leg a b\n\
             R1 a b 2k\n\
             .ends\n\
             .subckt pair top bot\n\
             Xup top mid leg\n\
             Xdn mid bot leg\n\
             .ends\n\
             V1 in 0 8\n\
             X1 in 0 pair\n",
        )
        .unwrap();
        let c = deck.circuit();
        assert!(c.device("X1.Xup.R1").is_some());
        assert!(c.find_node("X1.mid").is_some());
        let sol = DcAnalysis::new(c).solve().unwrap();
        let mid = c.find_node("X1.mid").unwrap();
        assert!((sol.voltage(mid) - 4.0).abs() < 1e-6);
    }

    /// Dot-cards inside a .subckt body are rejected loudly — a locally
    /// scoped `.model` must not silently hoist to deck scope.
    #[test]
    fn dot_cards_inside_subckt_bodies_are_rejected() {
        for card in [".model m nmos (vto=0.7)", ".title sneaky", ".nodeorder a b", ".subckt q a"] {
            let text = format!(".subckt p a b\n{card}\nR1 a b 1k\n.ends\n");
            let e = parse_deck(&text).unwrap_err();
            assert!(
                e.to_string().contains("inside a .subckt body"),
                "{card}: {e}"
            );
        }
    }

    #[test]
    fn recursive_subckt_is_an_error_not_a_hang() {
        let e = parse_deck(
            ".subckt loop a b\n\
             Xinner a b loop\n\
             .ends\n\
             X1 in 0 loop\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("recursive"), "{e}");
    }

    #[test]
    fn nodeorder_pre_interns_nodes() {
        let deck = parse_deck(
            ".nodeorder zz aa mm\n\
             V1 aa 0 1\n\
             R1 aa mm 1k\n\
             R2 mm zz 1k\n\
             R3 zz 0 1k\n",
        )
        .unwrap();
        let c = deck.circuit();
        // Interning order follows .nodeorder, not first device use.
        assert_eq!(c.find_node("zz").unwrap().index(), 1);
        assert_eq!(c.find_node("aa").unwrap().index(), 2);
        assert_eq!(c.find_node("mm").unwrap().index(), 3);
    }

    /// SPICE identifiers are case-insensitive: differently-cased
    /// spellings of one net must resolve to a single node (first
    /// spelling wins), not silently split the net in two.
    #[test]
    fn mixed_case_net_names_are_one_net() {
        let deck = parse_deck(
            "V1 VDD 0 DC 5\n\
             R1 vdd out 1k\n\
             R2 OUT 0 1k\n",
        )
        .unwrap();
        let c = deck.circuit();
        assert_eq!(c.node_count(), 3, "VDD/vdd and out/OUT each merge into one net");
        assert!(c.find_node("VDD").is_some(), "first spelling is canonical");
        assert!(c.find_node("out").is_some());
        let sol = DcAnalysis::new(c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        assert!((sol.voltage(out) - 2.5).abs() < 1e-6, "v(out) = {}", sol.voltage(out));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let cases: [(&str, usize); 6] = [
            ("R1 a b notanumber\n", 1),
            ("V1 a 0 DC 5\nR1 a b\n", 2),
            ("+ orphan continuation\n", 1),
            ("Q1 a b c\n", 1),
            ("R1 a b 1k extra\n", 1),
            (".bogus x\n", 1),
        ];
        for (text, want_line) in cases {
            match parse_deck(text).unwrap_err() {
                NetlistError::Parse { line, col, .. } => {
                    assert_eq!(line, want_line, "{text:?}");
                    assert!(col >= 1);
                }
                other => panic!("{text:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn lowering_errors_carry_line() {
        let cases = [
            "R1 a b 1k\nR1 a b 2k\n",                   // duplicate name
            "M1 d g 0 0 nomodel W=1u L=1u\n",           // missing model
            "X1 a b nosub\n",                           // missing subckt
            ".subckt p a b\nR1 a b 1\n.ends\nX1 a p\n", // port arity
            "R1 a b -5\n",                              // invalid value
        ];
        for text in cases {
            match parse_deck(text).unwrap_err() {
                NetlistError::Netlist { line, .. } => assert!(line >= 1, "{text:?}"),
                other => panic!("{text:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn dollar_and_semicolon_comments() {
        let deck = parse_deck("R1 a b 1k $ trailing\nR2 b 0 2k ; also\n").unwrap();
        assert_eq!(deck.circuit().devices().len(), 2);
    }

    #[test]
    fn end_card_stops_parsing() {
        let deck = parse_deck("R1 a 0 1k\n.end\ngarbage beyond the end\n").unwrap();
        assert_eq!(deck.circuit().devices().len(), 1);
    }

    #[test]
    fn vcvs_card() {
        let deck = parse_deck("V1 a 0 1\nE1 out 0 a 0 -3\nRL out 0 1k\n").unwrap();
        let sol = DcAnalysis::new(deck.circuit()).solve().unwrap();
        let out = deck.circuit().find_node("out").unwrap();
        assert!((sol.voltage(out) + 3.0).abs() < 1e-6);
    }
}
