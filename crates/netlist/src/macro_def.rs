//! [`NetlistMacro`]: a parsed deck paired with description-file test
//! configurations and a topology-derived fault dictionary — the bridge
//! that lets any SPICE netlist enter the generate → compact → evaluate
//! pipeline with zero Rust code.

use std::path::Path;
use std::sync::Arc;

use castg_core::{AnalogMacro, DescribedConfig, TestConfiguration};
use castg_spice::{OrderingKind, SolverKind};
use castg_faults::{derive_fault_dictionary, fault_site_nets, BridgeDerivation, FaultDictionary};
use castg_spice::Circuit;

use crate::parser::{parse_deck, Deck};
use crate::NetlistError;

/// Fault-derivation knobs for a parsed-deck macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistMacroOptions {
    /// Which node pairs the derived bridge list covers.
    pub derivation: BridgeDerivation,
    /// Dictionary resistance of derived bridge faults (the paper's
    /// 10 kΩ).
    pub bridge_ohms: f64,
    /// Dictionary shunt of derived pinhole faults (the paper's 2 kΩ).
    pub pinhole_ohms: f64,
}

impl Default for NetlistMacroOptions {
    fn default() -> Self {
        NetlistMacroOptions {
            derivation: BridgeDerivation::Exhaustive,
            bridge_ohms: 10e3,
            pinhole_ohms: 2e3,
        }
    }
}

/// An [`AnalogMacro`] backed by a parsed SPICE deck.
///
/// The netlist comes from deck text or a `.sp` file, the fault
/// dictionary is derived from circuit topology
/// ([`castg_faults::derive_fault_dictionary`]: bridges over the
/// non-ground nets, a pinhole at every MOS gate), and the test
/// configurations are textual [`ConfigDescription`] files interpreted
/// by [`DescribedConfig`]. The nominal circuit's compiled stamp plan is
/// shared by every clone [`nominal_circuit`](AnalogMacro::nominal_circuit)
/// hands out, so parsed macros ride the same structure-sharing campaign
/// fast path as the hand-coded ones.
///
/// [`ConfigDescription`]: castg_core::ConfigDescription
///
/// # Example
///
/// ```
/// use castg_netlist::NetlistMacro;
/// use castg_core::AnalogMacro;
///
/// let deck = "\
/// V1 vin 0 DC 5
/// R1 vin mid 1k
/// R2 mid out 1k
/// R3 out 0 2k
/// ";
/// let mac = NetlistMacro::from_deck_text("divider", deck)?;
/// assert_eq!(mac.fault_site_nodes(), vec!["vin", "mid", "out"]);
/// assert_eq!(mac.fault_dictionary().len(), 3); // C(3,2) bridges
/// # Ok::<(), castg_netlist::NetlistError>(())
/// ```
pub struct NetlistMacro {
    name: String,
    macro_type: String,
    title: Option<String>,
    params: Vec<(String, f64)>,
    circuit: Circuit,
    fault_sites: Vec<String>,
    dictionary: FaultDictionary,
    configs: Vec<Arc<dyn TestConfiguration>>,
}

impl NetlistMacro {
    /// Builds a macro from deck text with default fault derivation and
    /// no configurations (attach them with
    /// [`with_configurations`](NetlistMacro::with_configurations) or
    /// load everything at once with
    /// [`from_files`](NetlistMacro::from_files)).
    ///
    /// # Errors
    ///
    /// Deck parse/lowering errors; [`NetlistError::Netlist`] when the
    /// deck holds no devices.
    pub fn from_deck_text(name: impl Into<String>, deck: &str) -> Result<Self, NetlistError> {
        Self::from_deck_text_with(name, deck, NetlistMacroOptions::default())
    }

    /// [`from_deck_text`](NetlistMacro::from_deck_text) with explicit
    /// fault-derivation options.
    ///
    /// # Errors
    ///
    /// As for [`from_deck_text`](NetlistMacro::from_deck_text).
    pub fn from_deck_text_with(
        name: impl Into<String>,
        deck: &str,
        options: NetlistMacroOptions,
    ) -> Result<Self, NetlistError> {
        let parsed = parse_deck(deck)?;
        Self::from_deck_with(name, parsed, options)
    }

    /// [`from_deck_text_with`](NetlistMacro::from_deck_text_with) with
    /// external parameter overrides (the `castg --param NAME=VALUE`
    /// flag): each pair shadows a deck `.param` of the same name or
    /// defines a new one before any card is lowered.
    ///
    /// # Errors
    ///
    /// As for [`from_deck_text`](NetlistMacro::from_deck_text).
    pub fn from_deck_text_with_params(
        name: impl Into<String>,
        deck: &str,
        options: NetlistMacroOptions,
        overrides: &[(String, f64)],
    ) -> Result<Self, NetlistError> {
        let parsed = crate::parser::parse_deck_with_params(deck, overrides)?;
        Self::from_deck_with(name, parsed, options)
    }

    /// Builds a macro from an already-parsed [`Deck`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::Netlist`] when the deck holds no devices.
    pub fn from_deck_with(
        name: impl Into<String>,
        deck: Deck,
        options: NetlistMacroOptions,
    ) -> Result<Self, NetlistError> {
        let title = deck.title.clone();
        let params = deck.params.clone();
        let circuit = deck.into_circuit();
        if circuit.devices().is_empty() {
            return Err(NetlistError::netlist(1, "deck holds no devices"));
        }
        let fault_sites = fault_site_nets(&circuit);
        let dictionary = derive_fault_dictionary(
            &circuit,
            options.derivation,
            options.bridge_ohms,
            options.pinhole_ohms,
        );
        // Compile the assembly schedule up front: every clone the
        // campaign engine takes then shares it (delta-patched fault
        // injection, one symbolic analysis per variant).
        circuit.compile_plan();
        Ok(NetlistMacro {
            name: name.into(),
            macro_type: title.clone().unwrap_or_else(|| "netlist".to_string()),
            title,
            params,
            circuit,
            fault_sites,
            dictionary,
            configs: Vec::new(),
        })
    }

    /// Loads a macro from a deck file plus a directory of configuration
    /// description files (`*.cfg` / `*.txt`, ids assigned in file-name
    /// order). The macro name is the deck file's stem.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Io`] for unreadable files, parse errors from the
    /// deck, [`NetlistError::Config`] for missing or uninterpretable
    /// descriptions.
    pub fn from_files(
        deck_path: &Path,
        configs_dir: &Path,
        options: NetlistMacroOptions,
    ) -> Result<Self, NetlistError> {
        Self::from_files_with_params(deck_path, configs_dir, options, &[])
    }

    /// [`from_files`](NetlistMacro::from_files) with external parameter
    /// overrides (the `castg --param NAME=VALUE` flag).
    ///
    /// # Errors
    ///
    /// As for [`from_files`](NetlistMacro::from_files).
    pub fn from_files_with_params(
        deck_path: &Path,
        configs_dir: &Path,
        options: NetlistMacroOptions,
        overrides: &[(String, f64)],
    ) -> Result<Self, NetlistError> {
        let text = std::fs::read_to_string(deck_path).map_err(|e| NetlistError::Io {
            path: deck_path.display().to_string(),
            reason: e.to_string(),
        })?;
        let name = deck_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("netlist")
            .to_string();
        let mac = Self::from_deck_text_with_params(name, &text, options, overrides)?;
        let configs = DescribedConfig::load_dir(configs_dir)
            .map_err(|e| NetlistError::Config { reason: e.to_string() })?;
        Ok(mac.with_configurations(configs))
    }

    /// Attaches test configurations. The macro type is taken from the
    /// first configuration's description (falling back to the deck
    /// title, then `"netlist"`).
    pub fn with_configurations(mut self, configs: Vec<Arc<dyn TestConfiguration>>) -> Self {
        if let Some(first) = configs.first() {
            let t = first.description().macro_type;
            if !t.is_empty() {
                self.macro_type = t;
            }
        }
        self.configs = configs;
        self
    }

    /// Forces the solver/ordering path every attached configuration's
    /// measurements dispatch through, by re-interpreting each
    /// configuration's description with the pair applied. `Auto`/`Auto`
    /// (the default) keeps the per-circuit heuristics; this is what the
    /// `castg --ordering` flag plumbs down to.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Config`] when a configuration's description does
    /// not round-trip through the interpreter (impossible for
    /// configurations produced by [`from_files`](NetlistMacro::from_files)).
    pub fn with_solver(
        mut self,
        solver: SolverKind,
        ordering: OrderingKind,
    ) -> Result<Self, NetlistError> {
        let mut configs: Vec<Arc<dyn TestConfiguration>> = Vec::with_capacity(self.configs.len());
        for cfg in &self.configs {
            let rebuilt = DescribedConfig::new(cfg.id(), cfg.description())
                .map_err(|e| NetlistError::Config { reason: e.to_string() })?
                .with_solver(solver, ordering);
            configs.push(Arc::new(rebuilt));
        }
        self.configs = configs;
        Ok(self)
    }

    /// Builds a macro around an **already-lowered** circuit (plus the
    /// deck metadata that normally rides along from the parser). This
    /// is the plan-cache entry point for `castg-serve`: a daemon that
    /// has seen a deck's canonical bytes before hands the cached
    /// circuit back in here, and because [`Circuit`] clones share the
    /// compiled stamp plan and its symbolic analyses, the new macro
    /// skips compile + symbolic analysis entirely — only fault-site
    /// derivation and dictionary construction run again.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Netlist`] when the circuit holds no devices.
    pub fn from_parts(
        name: impl Into<String>,
        circuit: Circuit,
        title: Option<String>,
        params: Vec<(String, f64)>,
        options: NetlistMacroOptions,
    ) -> Result<Self, NetlistError> {
        if circuit.devices().is_empty() {
            return Err(NetlistError::netlist(1, "deck holds no devices"));
        }
        let fault_sites = fault_site_nets(&circuit);
        let dictionary = derive_fault_dictionary(
            &circuit,
            options.derivation,
            options.bridge_ohms,
            options.pinhole_ohms,
        );
        // No-op when the handed-in circuit already carries a compiled
        // plan (the plan cache's whole point); compiles it otherwise.
        circuit.compile_plan();
        Ok(NetlistMacro {
            name: name.into(),
            macro_type: title.clone().unwrap_or_else(|| "netlist".to_string()),
            title,
            params,
            circuit,
            fault_sites,
            dictionary,
            configs: Vec::new(),
        })
    }

    /// The canonical deck bytes of this macro: its circuit serialized
    /// back through the exact round-trip writer
    /// ([`crate::write_deck_with_title`]), which normalizes away
    /// whitespace, comments, `.param` indirection and number
    /// formatting while preserving node interning order, device order,
    /// bit-exact values and identifier spellings (net-name case is
    /// semantic — fault names in reports carry the deck's first
    /// spelling of each net). Two decks differing only in formatting
    /// produce identical canonical bytes; any semantic change (a
    /// value, a node, a device, an identifier spelling) changes them.
    ///
    /// This is the cache-key normalization `castg serve` uses: the
    /// content-addressed result cache and the process-wide plan cache
    /// both key on these bytes (hashed), and `castg check` prints the
    /// digest so clients can predict cache keys offline.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Unrepresentable`] when the circuit cannot be
    /// written as a deck (e.g. flattened `.subckt` internals whose
    /// `<instance>.<name>` device names break the card-letter rule);
    /// callers fall back to keying on the raw deck text.
    pub fn canonical_bytes(&self) -> Result<Vec<u8>, NetlistError> {
        crate::writer::write_deck_with_title(&self.circuit, self.title.as_deref())
            .map(String::into_bytes)
    }

    /// The parsed circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The deck's `.title`, if it had one.
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// The resolved global parameters, deck `.param` definitions first
    /// (in deck order, overrides applied), then override-only names.
    pub fn params(&self) -> &[(String, f64)] {
        &self.params
    }
}

impl AnalogMacro for NetlistMacro {
    fn name(&self) -> &str {
        &self.name
    }

    fn macro_type(&self) -> &str {
        &self.macro_type
    }

    fn nominal_circuit(&self) -> Circuit {
        // Clones share node/device name `Arc`s and the compiled plan.
        self.circuit.clone()
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        self.fault_sites.clone()
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        self.dictionary.clone()
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        self.configs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castg_core::{ConfigDescription, NominalCache};

    const DIVIDER_DECK: &str = "\
.title R-divider
V1 vin 0 DC 5
R1 vin mid 1k
R2 mid out 1k
R3 out 0 2k
C1 out 0 1n
";

    const DC_CFG: &str = "\
macro type: R-divider
test configuration: DC output
control vin: dc(lev)
observe out: dc()
return: dV(out)
parameter lev: 1 .. 8
variable box_rel: 0.05
variable box_gain: 0.5
variable box_floor: 1e-3
seed lev: 5
";

    fn described(id: usize, text: &str) -> Arc<dyn TestConfiguration> {
        Arc::new(DescribedConfig::new(id, ConfigDescription::parse(text).unwrap()).unwrap())
    }

    #[test]
    fn macro_contract_is_satisfied() {
        let mac = NetlistMacro::from_deck_text("divider", DIVIDER_DECK)
            .unwrap()
            .with_configurations(vec![described(1, DC_CFG)]);
        assert_eq!(mac.name(), "divider");
        assert_eq!(mac.macro_type(), "R-divider");
        assert_eq!(mac.title(), Some("R-divider"));
        let c = mac.nominal_circuit();
        assert_eq!(c.node_count(), 4);
        for f in mac.fault_dictionary().iter() {
            f.inject(&c).unwrap();
        }
        assert_eq!(mac.configurations().len(), 1);
    }

    #[test]
    fn parsed_macro_generates_a_detecting_test() {
        use castg_core::Generator;
        let mac = NetlistMacro::from_deck_text("divider", DIVIDER_DECK)
            .unwrap()
            .with_configurations(vec![described(1, DC_CFG)]);
        let cache = NominalCache::new();
        let generator = Generator::new(&mac, &cache);
        let fault = castg_faults::Fault::bridge("out", "0", 10e3);
        let best = generator.generate_for_fault(&fault).unwrap();
        assert!(best.detected_at_dictionary, "bridge(out,0) must be detectable");
    }

    #[test]
    fn empty_deck_is_rejected() {
        assert!(matches!(
            NetlistMacro::from_deck_text("empty", "* nothing here\n"),
            Err(NetlistError::Netlist { .. })
        ));
    }

    #[test]
    fn adjacent_derivation_shrinks_the_dictionary() {
        let opts = NetlistMacroOptions {
            derivation: BridgeDerivation::Adjacent,
            ..NetlistMacroOptions::default()
        };
        let adjacent =
            NetlistMacro::from_deck_text_with("divider", DIVIDER_DECK, opts).unwrap();
        let exhaustive = NetlistMacro::from_deck_text("divider", DIVIDER_DECK).unwrap();
        // Exhaustive: C(3,2) = 3 (no ground pairs). Adjacent: vin–gnd,
        // vin–mid, mid–out, out–gnd — 4, including ground pairs, but
        // never the non-adjacent vin–out.
        assert_eq!(exhaustive.fault_dictionary().len(), 3);
        assert_eq!(adjacent.fault_dictionary().len(), 4);
        assert!(adjacent.fault_dictionary().by_name("bridge(vin,out)").is_none());
    }

    #[test]
    fn param_overrides_reach_the_lowered_circuit() {
        let deck = "\
.param rload=2k
V1 vin 0 DC 5
R1 vin out 1k
R2 out 0 {rload}
";
        let overridden = NetlistMacro::from_deck_text_with_params(
            "div",
            deck,
            NetlistMacroOptions::default(),
            &[("rload".to_string(), 4e3)],
        )
        .unwrap();
        assert_eq!(overridden.params(), &[("rload".to_string(), 4e3)]);
        let c = overridden.nominal_circuit();
        let r2 = c.device("R2").unwrap();
        match r2.kind() {
            castg_spice::DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 4e3),
            other => panic!("R2 should be a resistor, got {other:?}"),
        }
    }

    #[test]
    fn trait_object_compatible() {
        let mac = NetlistMacro::from_deck_text("divider", DIVIDER_DECK).unwrap();
        fn takes_dyn(_m: &dyn AnalogMacro) {}
        takes_dyn(&mac);
    }
}
