//! Deck writing: serializes a [`Circuit`] back into the deck dialect
//! the parser reads, such that `parse(write(c))` reproduces `c`
//! **exactly** — same node table (via the `.nodeorder` extension card),
//! same devices in the same order, bit-identical values (floats are
//! printed with Rust's shortest round-trip formatting).
//!
//! This is the regeneration path for the committed deck fixtures:
//! `tests/fixtures/iv_converter.sp` is `write_deck` of the hand-built
//! `IvConverter` circuit, which is what makes the netlist-vs-compiled
//! differential test bit-exact.

use std::fmt::Write as _;

use castg_spice::{
    BjtParams, BjtPolarity, Circuit, DeviceKind, DiodeParams, MosParams, MosPolarity, Waveform,
};

use crate::NetlistError;

/// Formats a float with Rust's shortest round-trip representation
/// (`{:?}`), which [`crate::parse_number`] reads back bit-exactly.
fn num(v: f64) -> String {
    format!("{v:?}")
}

/// A name is deck-representable when it survives tokenization intact.
fn check_name(kind: &str, name: &str) -> Result<(), NetlistError> {
    let bad = name.is_empty()
        || name.chars().any(|c| {
            c.is_whitespace() || matches!(c, ',' | '(' | ')' | '=' | ';' | '$' | '*' | '{' | '}')
        })
        || name.starts_with('+')
        || name.starts_with('.');
    if bad {
        return Err(NetlistError::Unrepresentable {
            reason: format!("{kind} name `{name}` cannot be written as a deck token"),
        });
    }
    Ok(())
}

/// Checks that a device name's leading letter matches its card type.
fn check_card_letter(name: &str, letter: char) -> Result<(), NetlistError> {
    match name.chars().next() {
        Some(c) if c.to_ascii_lowercase() == letter => Ok(()),
        _ => Err(NetlistError::Unrepresentable {
            reason: format!(
                "device `{name}` must start with `{}` to be written as that card",
                letter.to_ascii_uppercase()
            ),
        }),
    }
}

fn wave_str(wave: &Waveform) -> String {
    match wave {
        Waveform::Dc(v) => format!("DC {}", num(*v)),
        Waveform::Sine { offset, amplitude, freq, phase, delay } => format!(
            "SIN({} {} {} {} {})",
            num(*offset),
            num(*amplitude),
            num(*freq),
            num(*delay),
            num(*phase)
        ),
        Waveform::Pulse { low, high, delay, rise, fall, width, period } => format!(
            "PULSE({} {} {} {} {} {} {})",
            num(*low),
            num(*high),
            num(*delay),
            num(*rise),
            num(*fall),
            num(*width),
            num(*period)
        ),
        Waveform::Step { base, elev, t_step, t_rise } => {
            format!("STEP({} {} {} {})", num(*base), num(*elev), num(*t_step), num(*t_rise))
        }
        Waveform::Pwl(points) => {
            let mut s = String::from("PWL(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{} {}", num(*t), num(*v));
            }
            s.push(')');
            s
        }
    }
}

/// The diode model parameters a `.model … d` card carries, used as the
/// deduplication key (bit-exact).
fn diode_model_key(p: &DiodeParams) -> [u64; 4] {
    [p.is_sat.to_bits(), p.n.to_bits(), p.rs.to_bits(), p.cj0.to_bits()]
}

/// The BJT model parameters a `.model … npn/pnp` card carries, used as
/// the deduplication key (bit-exact).
fn bjt_model_key(polarity: BjtPolarity, p: &BjtParams) -> (bool, [u64; 5]) {
    (
        polarity == BjtPolarity::Pnp,
        [p.is_sat.to_bits(), p.bf.to_bits(), p.br.to_bits(), p.cje.to_bits(), p.cjc.to_bits()],
    )
}

/// The non-geometry model parameters a `.model` card carries, used as
/// the deduplication key (bit-exact).
fn model_key(polarity: MosPolarity, p: &MosParams) -> (bool, [u64; 7]) {
    (
        polarity == MosPolarity::Pmos,
        [
            p.vt0.to_bits(),
            p.kp.to_bits(),
            p.lambda.to_bits(),
            p.gamma.to_bits(),
            p.phi.to_bits(),
            p.cox.to_bits(),
            p.cgso.to_bits(),
        ],
    )
}

/// Serializes a circuit as a deck.
///
/// # Errors
///
/// [`NetlistError::Unrepresentable`] when a device or node name cannot
/// survive the card format — a name with whitespace/separator
/// characters, or a device whose name does not start with its card's
/// type letter (faulted circuits' injected `F_*` devices, flattened
/// `x…`-prefixed internals).
///
/// # Example
///
/// ```
/// use castg_netlist::{parse_deck, write_deck};
/// use castg_spice::{Circuit, Waveform};
///
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0))?;
/// c.add_resistor("R1", a, Circuit::GROUND, 10e3)?;
/// let deck = write_deck(&c)?;
/// assert_eq!(parse_deck(&deck)?.circuit(), &c);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_deck(circuit: &Circuit) -> Result<String, NetlistError> {
    write_deck_with_title(circuit, None)
}

/// The canonical bytes of a parsed [`Deck`](crate::Deck): its lowered
/// circuit and `.title` serialized back through the exact round-trip
/// writer. Whitespace, comments, case spellings, card continuations,
/// `.param` indirection and number formatting are all normalized away;
/// node interning order, device order and bit-exact values survive. Two
/// decks differing only in formatting therefore canonicalize to
/// identical bytes, and any semantic change produces different bytes —
/// which is what makes these bytes a sound content-address for
/// `castg serve`'s result and plan caches.
///
/// # Errors
///
/// [`NetlistError::Unrepresentable`] when the lowered circuit cannot be
/// written back as a deck (e.g. flattened `.subckt` internals whose
/// `<instance>.<name>` device names break the card-letter rule);
/// callers should fall back to keying on the raw deck text.
pub fn canonical_deck_bytes(deck: &crate::Deck) -> Result<Vec<u8>, NetlistError> {
    write_deck_with_title(deck.circuit(), deck.title.as_deref()).map(String::into_bytes)
}

/// [`write_deck`] with a `.title` card. The title survives the
/// round-trip verbatim — including `;` and `$`, which the parser
/// exempts from comment stripping on `.title` lines only.
///
/// # Errors
///
/// As for [`write_deck`], plus [`NetlistError::Unrepresentable`] for
/// titles a `.title` card cannot carry back: embedded line breaks, or
/// leading/trailing whitespace (the parser trims the title text).
pub fn write_deck_with_title(
    circuit: &Circuit,
    title: Option<&str>,
) -> Result<String, NetlistError> {
    let mut out = String::from("* castg netlist (regenerate with castg_netlist::write_deck)\n");
    if let Some(t) = title {
        if t.contains(['\n', '\r']) {
            return Err(NetlistError::Unrepresentable {
                reason: "title contains a line break".to_string(),
            });
        }
        if t.trim() != t {
            return Err(NetlistError::Unrepresentable {
                reason: format!(
                    "title `{t}` has leading/trailing whitespace, which a .title card loses"
                ),
            });
        }
        let _ = writeln!(out, ".title {t}");
    }

    // Node table, so the parser reproduces interning order exactly.
    let nodes: Vec<&str> =
        circuit.non_ground_nodes().map(|id| circuit.node_name(id)).collect();
    let mut lowercased = std::collections::HashSet::with_capacity(nodes.len());
    for n in &nodes {
        check_name("node", n)?;
        // The parser treats net names case-insensitively (SPICE rules),
        // so two nodes differing only by case would merge on re-parse.
        if !lowercased.insert(n.to_ascii_lowercase()) {
            return Err(NetlistError::Unrepresentable {
                reason: format!(
                    "node `{n}` collides case-insensitively with another node \
                     (deck net names are case-insensitive)"
                ),
            });
        }
    }
    if !nodes.is_empty() {
        let _ = writeln!(out, ".nodeorder {}", nodes.join(" "));
    }

    // Model cards for every distinct (polarity, non-geometry params).
    let mut models: Vec<((bool, [u64; 7]), MosPolarity, MosParams)> = Vec::new();
    for dev in circuit.devices() {
        if let DeviceKind::Mosfet { polarity, params, .. } = dev.kind() {
            let key = model_key(*polarity, params);
            if !models.iter().any(|(k, _, _)| *k == key) {
                models.push((key, *polarity, *params));
            }
        }
    }
    for (i, (_, polarity, p)) in models.iter().enumerate() {
        let kind = match polarity {
            MosPolarity::Nmos => "nmos",
            MosPolarity::Pmos => "pmos",
        };
        let _ = writeln!(
            out,
            ".model castg_m{i} {kind} (vto={} kp={} lambda={} gamma={} phi={} cox={} cgso={})",
            num(p.vt0),
            num(p.kp),
            num(p.lambda),
            num(p.gamma),
            num(p.phi),
            num(p.cox),
            num(p.cgso),
        );
    }

    // Diode and BJT model tables, deduplicated the same bit-exact way.
    let mut dmodels: Vec<([u64; 4], DiodeParams)> = Vec::new();
    let mut qmodels: Vec<((bool, [u64; 5]), BjtPolarity, BjtParams)> = Vec::new();
    for dev in circuit.devices() {
        match dev.kind() {
            DeviceKind::Diode { params, .. } => {
                let key = diode_model_key(params);
                if !dmodels.iter().any(|(k, _)| *k == key) {
                    dmodels.push((key, *params));
                }
            }
            DeviceKind::Bjt { polarity, params, .. } => {
                let key = bjt_model_key(*polarity, params);
                if !qmodels.iter().any(|(k, _, _)| *k == key) {
                    qmodels.push((key, *polarity, *params));
                }
            }
            _ => {}
        }
    }
    for (i, (_, p)) in dmodels.iter().enumerate() {
        let _ = writeln!(
            out,
            ".model castg_d{i} d (is={} n={} rs={} cjo={})",
            num(p.is_sat),
            num(p.n),
            num(p.rs),
            num(p.cj0),
        );
    }
    for (i, (_, polarity, p)) in qmodels.iter().enumerate() {
        let kind = match polarity {
            BjtPolarity::Npn => "npn",
            BjtPolarity::Pnp => "pnp",
        };
        let _ = writeln!(
            out,
            ".model castg_q{i} {kind} (is={} bf={} br={} cje={} cjc={})",
            num(p.is_sat),
            num(p.bf),
            num(p.br),
            num(p.cje),
            num(p.cjc),
        );
    }

    let node_name = |id: castg_spice::NodeId| -> &str {
        if id.is_ground() {
            "0"
        } else {
            circuit.node_name(id)
        }
    };

    for dev in circuit.devices() {
        let name = dev.name();
        check_name("device", name)?;
        match dev.kind() {
            DeviceKind::Resistor { a, b, ohms } => {
                check_card_letter(name, 'r')?;
                let _ =
                    writeln!(out, "{name} {} {} {}", node_name(*a), node_name(*b), num(*ohms));
            }
            DeviceKind::Capacitor { a, b, farads } => {
                check_card_letter(name, 'c')?;
                let _ =
                    writeln!(out, "{name} {} {} {}", node_name(*a), node_name(*b), num(*farads));
            }
            DeviceKind::Inductor { a, b, henries } => {
                check_card_letter(name, 'l')?;
                let _ =
                    writeln!(out, "{name} {} {} {}", node_name(*a), node_name(*b), num(*henries));
            }
            DeviceKind::Vsource { pos, neg, wave } => {
                check_card_letter(name, 'v')?;
                let _ = writeln!(
                    out,
                    "{name} {} {} {}",
                    node_name(*pos),
                    node_name(*neg),
                    wave_str(wave)
                );
            }
            DeviceKind::Isource { from, to, wave } => {
                check_card_letter(name, 'i')?;
                let _ = writeln!(
                    out,
                    "{name} {} {} {}",
                    node_name(*from),
                    node_name(*to),
                    wave_str(wave)
                );
            }
            DeviceKind::Mosfet { d, g, s, b, polarity, params } => {
                check_card_letter(name, 'm')?;
                let key = model_key(*polarity, params);
                let idx = models
                    .iter()
                    .position(|(k, _, _)| *k == key)
                    .expect("model table covers every MOSFET");
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {} castg_m{idx} W={} L={}",
                    node_name(*d),
                    node_name(*g),
                    node_name(*s),
                    node_name(*b),
                    num(params.w),
                    num(params.l),
                );
            }
            DeviceKind::Vcvs { pos, neg, cp, cn, gain } => {
                check_card_letter(name, 'e')?;
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {} {}",
                    node_name(*pos),
                    node_name(*neg),
                    node_name(*cp),
                    node_name(*cn),
                    num(*gain)
                );
            }
            DeviceKind::Diode { a, k, params } => {
                check_card_letter(name, 'd')?;
                let key = diode_model_key(params);
                let idx = dmodels
                    .iter()
                    .position(|(k2, _)| *k2 == key)
                    .expect("model table covers every diode");
                let _ = writeln!(
                    out,
                    "{name} {} {} castg_d{idx}",
                    node_name(*a),
                    node_name(*k)
                );
            }
            DeviceKind::Bjt { c, b, e, polarity, params } => {
                check_card_letter(name, 'q')?;
                let key = bjt_model_key(*polarity, params);
                let idx = qmodels
                    .iter()
                    .position(|(k2, _, _)| *k2 == key)
                    .expect("model table covers every BJT");
                let _ = writeln!(
                    out,
                    "{name} {} {} {} castg_q{idx}",
                    node_name(*c),
                    node_name(*b),
                    node_name(*e)
                );
            }
            DeviceKind::Vccs { pos, neg, cp, cn, gm } => {
                check_card_letter(name, 'g')?;
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {} {}",
                    node_name(*pos),
                    node_name(*neg),
                    node_name(*cp),
                    node_name(*cn),
                    num(*gm)
                );
            }
            DeviceKind::Cccs { pos, neg, ctrl, gain } => {
                check_card_letter(name, 'f')?;
                // The controller is a device in this circuit, written by
                // its own card in an earlier loop iteration (Circuit::add
                // enforces definition order), so its name is checked there.
                let _ = writeln!(
                    out,
                    "{name} {} {} {ctrl} {}",
                    node_name(*pos),
                    node_name(*neg),
                    num(*gain)
                );
            }
            DeviceKind::Ccvs { pos, neg, ctrl, ohms } => {
                check_card_letter(name, 'h')?;
                let _ = writeln!(
                    out,
                    "{name} {} {} {ctrl} {}",
                    node_name(*pos),
                    node_name(*neg),
                    num(*ohms)
                );
            }
        }
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_deck;
    use castg_spice::Waveform;

    /// A circuit touching every device kind and every waveform form.
    fn kitchen_sink() -> Circuit {
        let mut c = Circuit::new();
        // Intern a node *before* any device references it, in an order
        // first-use interning would not reproduce — .nodeorder must.
        let z = c.node("zlast");
        let a = c.node("a");
        let b = c.node("b");
        let d = c.node("d");
        let g = c.node("g");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_vsource(
            "V2",
            b,
            Circuit::GROUND,
            Waveform::Sine { offset: 1.0, amplitude: 0.5, freq: 997.0, phase: 0.25, delay: 1e-6 },
        )
        .unwrap();
        c.add_isource("I1", a, b, Waveform::step(0.0, 2e-5, 0.5e-6, 1e-8)).unwrap();
        c.add_isource(
            "I2",
            Circuit::GROUND,
            d,
            Waveform::Pulse {
                low: 0.0,
                high: 1e-3,
                delay: 1e-7,
                rise: 1e-8,
                fall: 2e-8,
                width: 5e-7,
                period: 2e-6,
            },
        )
        .unwrap();
        c.add_vsource("V3", g, Circuit::GROUND, Waveform::Pwl(vec![(0.0, 0.0), (1e-6, 2.0)]))
            .unwrap();
        c.add_resistor("R1", a, b, 1.0 / 3.0).unwrap();
        c.add_capacitor("C1", b, z, 1.5e-12).unwrap();
        c.add_inductor("L1", z, Circuit::GROUND, 2.2e-6).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            castg_spice::MosPolarity::Nmos,
            castg_spice::MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        c.add_mosfet(
            "M2",
            d,
            g,
            a,
            a,
            castg_spice::MosPolarity::Pmos,
            castg_spice::MosParams::pmos_default(40e-6, 2e-6),
        )
        .unwrap();
        c.add_vcvs("E1", d, Circuit::GROUND, a, b, -2.5).unwrap();
        c.add_diode("D1", a, b, castg_spice::DiodeParams::signal_default()).unwrap();
        c.add_diode(
            "D2",
            b,
            Circuit::GROUND,
            castg_spice::DiodeParams { rs: 0.0, ..castg_spice::DiodeParams::signal_default() },
        )
        .unwrap();
        c.add_bjt(
            "Q1",
            d,
            g,
            Circuit::GROUND,
            castg_spice::BjtPolarity::Npn,
            castg_spice::BjtParams::signal_default(),
        )
        .unwrap();
        c.add_bjt(
            "Q2",
            g,
            d,
            a,
            castg_spice::BjtPolarity::Pnp,
            castg_spice::BjtParams::signal_default(),
        )
        .unwrap();
        c.add_vccs("G1", a, Circuit::GROUND, d, g, 1.25e-3).unwrap();
        c.add_cccs("F1", b, Circuit::GROUND, "V1", 2.0).unwrap();
        c.add_ccvs("H1", z, d, "L1", 47.5).unwrap();
        c
    }

    #[test]
    fn round_trip_is_exact() {
        let c = kitchen_sink();
        let deck = write_deck(&c).unwrap();
        let reparsed = parse_deck(&deck).unwrap();
        assert_eq!(reparsed.circuit(), &c);
    }

    #[test]
    fn unrepresentable_names_are_rejected() {
        // A faulted circuit's injected bridge (`F_…`) is a resistor
        // whose name does not start with R.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("F_bridge", a, Circuit::GROUND, 1e3).unwrap();
        assert!(matches!(write_deck(&c), Err(NetlistError::Unrepresentable { .. })));

        let mut c = Circuit::new();
        let a = c.node("has space");
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        assert!(matches!(write_deck(&c), Err(NetlistError::Unrepresentable { .. })));

        // Case-colliding net names would merge on re-parse (the parser
        // follows SPICE's case-insensitive identifier rules).
        let mut c = Circuit::new();
        let a = c.node("In");
        let b = c.node("in");
        c.add_resistor("R1", a, b, 1e3).unwrap();
        assert!(matches!(write_deck(&c), Err(NetlistError::Unrepresentable { .. })));
    }

    #[test]
    fn models_are_deduplicated() {
        let c = kitchen_sink();
        let deck = write_deck(&c).unwrap();
        let model_lines = deck.lines().filter(|l| l.starts_with(".model")).count();
        // One NMOS, one PMOS, two diode flavors (rs differs), one NPN,
        // one PNP — Q1/Q2 share params but not polarity.
        assert_eq!(model_lines, 6);
    }

    #[test]
    fn title_round_trips_with_comment_characters() {
        let c = kitchen_sink();
        for title in ["plain", "50% $duty; cycle", "; leading $ trailing ;", ""] {
            let deck = write_deck_with_title(&c, Some(title)).unwrap();
            let reparsed = parse_deck(&deck).unwrap();
            assert_eq!(reparsed.title.as_deref(), Some(title), "{title:?}");
            assert_eq!(reparsed.circuit(), &c, "{title:?}");
        }
        // No title → none on re-parse.
        let deck = write_deck(&c).unwrap();
        assert_eq!(parse_deck(&deck).unwrap().title, None);
    }

    #[test]
    fn unrepresentable_titles_are_rejected() {
        let c = Circuit::new();
        for bad in ["two\nlines", "cr\rhere", " padded", "padded "] {
            assert!(
                matches!(
                    write_deck_with_title(&c, Some(bad)),
                    Err(NetlistError::Unrepresentable { .. })
                ),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn brace_names_are_rejected() {
        // `{…}` is an expression token on re-parse, so a node named
        // with braces cannot survive the round trip.
        let mut c = Circuit::new();
        let a = c.node("{x}");
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        assert!(matches!(write_deck(&c), Err(NetlistError::Unrepresentable { .. })));
    }

    #[test]
    fn empty_circuit_writes_and_reparses() {
        let c = Circuit::new();
        let deck = write_deck(&c).unwrap();
        assert_eq!(parse_deck(&deck).unwrap().circuit(), &c);
    }
}
