//! Property-based tests of the deck frontend.
//!
//! * **Round-trip**: `parse(write(c)) == c` — exactly, including node
//!   interning order and bit-identical element values — over the
//!   synthetic macro families (ladder, OTA chain, mesh, crossbar,
//!   divider), the hand-built IV-converter, and randomly generated RC
//!   networks with random waveforms.
//! * **Robustness**: the parser returns `Err` (never panics, never
//!   loops) on arbitrary byte soup and on random mutations of valid
//!   decks, and every error carries a 1-based line/column.
//! * **Parameters**: `{…}` expression evaluation is deterministic (two
//!   parses of the same deck agree bit for bit, and match the same
//!   arithmetic done in Rust), `.title` text survives a write → parse
//!   round-trip even when it contains comment characters, and written
//!   decks are always *resolved* — no `.param` cards or `{` expressions
//!   ever appear in writer output, so a written deck round-trips
//!   without any parameter machinery.

use castg_core::synthetic::{CrossbarMacro, DividerMacro, LadderMacro, MeshMacro, OtaChainMacro};
use castg_core::AnalogMacro;
use castg_macros::IvConverter;
use castg_netlist::{parse_deck, write_deck, write_deck_with_title, NetlistError};
use castg_spice::{Circuit, Waveform};
use proptest::prelude::*;

fn assert_round_trip(c: &Circuit) {
    let deck = write_deck(c).expect("nominal circuits are deck-representable");
    let reparsed = parse_deck(&deck).expect("written decks parse");
    assert_eq!(reparsed.circuit(), c, "round-trip diverged:\n{deck}");
}

#[test]
fn synthetic_families_round_trip_exactly() {
    assert_round_trip(&DividerMacro::new().nominal_circuit());
    assert_round_trip(&IvConverter::with_analytic_boxes().nominal_circuit());
    for sections in [2, 7, 40] {
        assert_round_trip(&LadderMacro::new(sections).nominal_circuit());
    }
    for stages in [2, 5] {
        assert_round_trip(&OtaChainMacro::new(stages).nominal_circuit());
    }
    assert_round_trip(&MeshMacro::new(4, 6).nominal_circuit());
    assert_round_trip(&CrossbarMacro::new(3, 3).nominal_circuit());
}

/// Error → its (line, col); panics if the variant has none.
fn location(e: &NetlistError) -> (usize, usize) {
    match e {
        NetlistError::Parse { line, col, .. } => (*line, *col),
        NetlistError::Netlist { line, .. } => (*line, 1),
        other => panic!("unexpected error variant: {other:?}"),
    }
}

const VALID_DECK: &str = "\
.title mutation fodder
.model nch nmos (vto=0.75 kp=110u)
.subckt cell a b
Rc a m 1k
Cc m b 1p
.ends cell
V1 in 0 DC 5
I1 0 g SIN(1u 0.5u 10k)
Rg g 0 200k
M1 d g 0 0 nch W=10u L=1u
Rd in d 50k
L1 d out 1m
X1 out 0 cell
.end
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary byte soup never panics or loops; failures carry a
    /// valid location.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(0usize..256, 0..400)) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_deck(&text) {
            let (line, col) = location(&e);
            prop_assert!(line >= 1 && col >= 1, "bad location in {e}");
        }
    }

    /// Random single-byte mutations of a valid deck parse or fail
    /// cleanly — never panic.
    #[test]
    fn mutated_decks_never_panic(
        positions in prop::collection::vec(0usize..VALID_DECK.len(), 1..6),
        replacements in prop::collection::vec(0usize..256, 1..6),
    ) {
        let mut bytes = VALID_DECK.as_bytes().to_vec();
        for (p, r) in positions.iter().zip(&replacements) {
            bytes[*p] = *r as u8;
        }
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_deck(&text) {
            let (line, col) = location(&e);
            prop_assert!(line >= 1 && col >= 1, "bad location in {e}");
        }
    }

    /// Random line deletions and duplications also parse or fail
    /// cleanly.
    #[test]
    fn line_shuffles_never_panic(
        drop_at in 0usize..14,
        dup_at in 0usize..14,
    ) {
        let lines: Vec<&str> = VALID_DECK.lines().collect();
        let mut mutated: Vec<&str> = Vec::new();
        for (i, l) in lines.iter().enumerate() {
            if i == drop_at {
                continue;
            }
            mutated.push(l);
            if i == dup_at {
                mutated.push(l);
            }
        }
        let text = mutated.join("\n");
        let _ = parse_deck(&text); // must simply not panic / not hang
    }

    /// Randomly generated RC ladders with random element values and a
    /// random source waveform round-trip exactly.
    #[test]
    fn random_rc_networks_round_trip(
        values in prop::collection::vec(1e-12f64..1e9, 2..24),
        wave_kind in 0usize..5,
        wave_vals in prop::collection::vec(-10.0f64..10.0, 7usize),
    ) {
        let mut c = Circuit::new();
        let top = c.node("n0");
        let w = |i: usize| wave_vals[i];
        let wave = match wave_kind {
            0 => Waveform::dc(w(0)),
            1 => Waveform::sine(w(0), w(1), w(2).abs() + 1.0),
            2 => Waveform::step(w(0), w(1), w(2).abs(), w(3).abs()),
            3 => Waveform::Pulse {
                low: w(0), high: w(1), delay: w(2).abs(), rise: w(3).abs(),
                fall: w(4).abs(), width: w(5).abs(), period: w(6).abs(),
            },
            _ => {
                let mut t = 0.0;
                Waveform::Pwl(wave_vals.iter().map(|v| {
                    t += v.abs();
                    (t, *v)
                }).collect())
            }
        };
        c.add_vsource("V1", top, Circuit::GROUND, wave).unwrap();
        let mut prev = top;
        for (i, v) in values.iter().enumerate() {
            let next = c.node(&format!("n{}", i + 1));
            if i % 3 == 2 {
                c.add_capacitor(&format!("C{i}"), prev, next, *v).unwrap();
            } else if i % 3 == 1 {
                c.add_inductor(&format!("L{i}"), prev, next, *v).unwrap();
            } else {
                c.add_resistor(&format!("R{i}"), prev, next, *v).unwrap();
            }
            prev = next;
        }
        let deck = write_deck(&c).unwrap();
        let reparsed = parse_deck(&deck).unwrap();
        prop_assert_eq!(reparsed.circuit(), &c);
    }

    /// `.title` text round-trips through the writer even when it holds
    /// the comment characters (`;`, ` $`, `*`) that would be stripped
    /// anywhere else in the deck.
    #[test]
    fn titles_round_trip_through_the_writer(
        codes in prop::collection::vec(32usize..127, 0..40),
    ) {
        let title: String = codes.iter().map(|&c| c as u8 as char).collect();
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let trimmed = title.trim();
        match write_deck_with_title(&c, Some(&title)) {
            Ok(deck) => {
                // Writable titles are exactly the trim-stable ones.
                prop_assert_eq!(trimmed, title.as_str());
                let reparsed = parse_deck(&deck).unwrap();
                prop_assert_eq!(reparsed.title.as_deref(), Some(title.as_str()));
                prop_assert_eq!(reparsed.circuit(), &c);
            }
            Err(_) => prop_assert!(trimmed != title, "trim-stable title rejected: {:?}", title),
        }
    }

    /// Expression evaluation is deterministic and matches the same
    /// arithmetic done directly in Rust, bit for bit.
    #[test]
    fn expressions_evaluate_deterministically(
        a in -1e6f64..1e6,
        b in -1e3f64..1e3,
    ) {
        let deck = format!(
            ".param a={a:?} b={b:?}\n\
             V1 x 0 DC {{(a*b+a)/(b*b+1)-b}}\n\
             R1 x 0 1k\n"
        );
        let first = parse_deck(&deck).unwrap();
        let second = parse_deck(&deck).unwrap();
        prop_assert_eq!(first.circuit(), second.circuit());
        let expected = (a * b + a) / (b * b + 1.0) - b;
        let v1 = first.circuit().device("V1").unwrap();
        match v1.kind() {
            castg_spice::DeviceKind::Vsource { wave: Waveform::Dc(v), .. } => {
                prop_assert_eq!(v.to_bits(), expected.to_bits(), "{} vs {}", v, expected);
            }
            other => prop_assert!(false, "V1 should be a DC source, got {:?}", other),
        }
    }

    /// Writer output is always resolved: no `.param` card and no `{`
    /// expression survives, so the written deck round-trips with no
    /// parameter machinery in play.
    #[test]
    fn written_decks_are_fully_resolved(
        r in 1.0f64..1e6,
        ratio in 1.0f64..100.0,
    ) {
        let deck = format!(
            ".param rbase={r:?} ratio={ratio:?}\n\
             .param rtot={{rbase*ratio}}\n\
             V1 x 0 DC {{ratio}}\n\
             R1 x y {{rbase}}\n\
             R2 y 0 {{rtot}}\n"
        );
        let parsed = parse_deck(&deck).unwrap();
        let written = write_deck(parsed.circuit()).unwrap();
        prop_assert!(!written.contains(".param"), "unresolved writer output:\n{}", written);
        prop_assert!(!written.contains('{'), "unresolved writer output:\n{}", written);
        let reparsed = parse_deck(&written).unwrap();
        prop_assert!(reparsed.params.is_empty());
        prop_assert_eq!(reparsed.circuit(), parsed.circuit());
    }
}
