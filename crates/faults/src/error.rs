use std::error::Error;
use std::fmt;

use castg_spice::SpiceError;

/// Errors produced while injecting faults into netlists.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A bridge endpoint names a node absent from the target circuit.
    UnknownNode {
        /// The missing node name.
        name: String,
    },
    /// A pinhole fault targets a device absent from the circuit.
    UnknownDevice {
        /// The missing device name.
        name: String,
    },
    /// A pinhole fault targets a device that is not a MOSFET.
    NotAMosfet {
        /// The offending device name.
        name: String,
    },
    /// A junction pinhole targets a device that does not have the
    /// requested pn junction (wrong device kind, or a BJT junction
    /// asked of a diode and vice versa).
    NoSuchJunction {
        /// The offending device name.
        name: String,
        /// The requested junction label (`ak`, `be`, `bc`).
        junction: String,
    },
    /// A bridge fault's two endpoints are the same node.
    DegenerateBridge {
        /// The node name given for both endpoints.
        name: String,
    },
    /// An underlying netlist error while building the faulty circuit
    /// (duplicate device names, invalid values).
    Netlist(SpiceError),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnknownNode { name } => {
                write!(f, "fault references unknown node `{name}`")
            }
            FaultError::UnknownDevice { name } => {
                write!(f, "fault references unknown device `{name}`")
            }
            FaultError::NotAMosfet { name } => {
                write!(f, "pinhole fault target `{name}` is not a mosfet")
            }
            FaultError::NoSuchJunction { name, junction } => {
                write!(f, "device `{name}` has no `{junction}` junction")
            }
            FaultError::DegenerateBridge { name } => {
                write!(f, "bridge fault endpoints are both `{name}`")
            }
            FaultError::Netlist(e) => write!(f, "netlist error during injection: {e}"),
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for FaultError {
    fn from(e: SpiceError) -> Self {
        FaultError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        assert!(FaultError::UnknownNode { name: "x".into() }.to_string().contains("`x`"));
        assert!(FaultError::NotAMosfet { name: "R1".into() }.to_string().contains("`R1`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultError>();
    }
}
