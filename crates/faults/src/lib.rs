//! Structural analog fault models for `castg`.
//!
//! The paper's experiment uses an exhaustive dictionary of two fault
//! types on the IV-converter macro (§3.4):
//!
//! * **Bridging faults** — a resistor between two circuit nodes, 45 of
//!   them (every pair of the macro's 10 fault-site nodes), initial
//!   impact 10 kΩ;
//! * **Pinhole faults** — a gate-oxide short, modeled per Eckersall et
//!   al. by splitting the transistor channel and shunting the gate to
//!   the split point through a resistance, positioned at 25 % of the
//!   channel length from the drain; 10 of them (one per transistor),
//!   initial shunt 2 kΩ.
//!
//! Both models carry a single *impact* parameter — a resistance — that
//! the generation algorithm tunes: **weakening** a fault raises the
//! resistance (a smaller physical defect), **intensifying** lowers it.
//! [`Fault::with_impact_scale`] expresses this as a multiplicative scale
//! on the dictionary resistance, which is what the critical-impact
//! search of the paper's Fig. 6 manipulates.
//!
//! # Example
//!
//! ```
//! use castg_faults::Fault;
//! use castg_spice::{Circuit, Waveform};
//!
//! let mut c = Circuit::new();
//! let a = c.node("a");
//! let b = c.node("b");
//! c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0))?;
//! c.add_resistor("R1", a, b, 1e3)?;
//! c.add_resistor("R2", b, Circuit::GROUND, 1e3)?;
//!
//! let fault = Fault::bridge("a", "b", 10e3);
//! let faulty = fault.inject(&c)?;
//! assert_eq!(faulty.devices().len(), c.devices().len() + 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod list;
mod model;
mod topology;

pub use error::FaultError;
pub use list::{exhaustive_bridge_faults, exhaustive_pinhole_faults, FaultDictionary};
pub use model::{Fault, FaultKind, Junction, PINHOLE_POSITION_FROM_DRAIN};
pub use topology::{
    adjacent_bridge_faults, derive_fault_dictionary, fault_site_nets, topology_pinhole_faults,
    BridgeDerivation,
};
