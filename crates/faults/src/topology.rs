//! Dictionary-from-topology constructors: derive a fault dictionary
//! from a netlist alone.
//!
//! The hand-coded macros enumerate their dictionaries explicitly; a
//! macro that arrives as a *parsed deck* (the `castg-netlist` frontend)
//! has no Rust code to do that, so these constructors mirror what the
//! hand-coded macros ship, derived purely from circuit structure:
//!
//! * bridge faults between nets — either **exhaustively** over every
//!   pair of non-ground nets (the paper's §3.4 enumeration, which is
//!   what the IV-converter's hand-coded dictionary does over its ten
//!   fault-site nodes), or restricted to **topologically adjacent**
//!   nets (nets sharing at least one device — physically plausible
//!   shorts between neighboring layout wires);
//! * pinhole faults at **every MOS gate** (one per transistor, the
//!   paper's rule).
//!
//! Both derivations are deterministic: nets are ordered by circuit
//! interning order and transistors by device insertion order, so a deck
//! written and re-parsed by the netlist round-trip produces the same
//! dictionary as the circuit it came from.

use castg_spice::Circuit;

use crate::{
    exhaustive_bridge_faults, exhaustive_pinhole_faults, Fault, FaultDictionary, Junction,
};

/// Which node pairs the derived bridge list covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BridgeDerivation {
    /// Every pair of non-ground nets: `C(n, 2)` bridges, mirroring the
    /// paper's exhaustive enumeration over the fault-site nodes.
    #[default]
    Exhaustive,
    /// Only pairs of nets sharing at least one device (including pairs
    /// with ground) — shorts between wires that plausibly neighbor each
    /// other in layout.
    Adjacent,
}

/// The non-ground nets of a circuit, in interning order — the derived
/// fault-site list of a parsed-deck macro.
pub fn fault_site_nets(circuit: &Circuit) -> Vec<String> {
    circuit.non_ground_nodes().map(|n| circuit.node_name(n).to_string()).collect()
}

/// Bridge faults between topologically adjacent nets: every unordered
/// pair of *distinct* nets (ground included) that appear together on
/// some device's terminal list, each at dictionary resistance
/// `base_ohms`. Pairs are emitted ordered by (first, second) net
/// interning order; each pair appears once.
pub fn adjacent_bridge_faults(circuit: &Circuit, base_ohms: f64) -> Vec<Fault> {
    let n = circuit.node_count();
    let mut seen = vec![false; n * n];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for dev in circuit.devices() {
        let nodes = dev.nodes();
        for (k, a) in nodes.iter().enumerate() {
            for b in &nodes[k + 1..] {
                let (lo, hi) = if a.index() <= b.index() {
                    (a.index(), b.index())
                } else {
                    (b.index(), a.index())
                };
                if lo == hi || seen[lo * n + hi] {
                    continue;
                }
                seen[lo * n + hi] = true;
                pairs.push((lo, hi));
            }
        }
    }
    pairs.sort_unstable();
    // Node ids are not constructible outside `castg-spice`; build an
    // index → name table through the node iterator instead.
    let mut names: Vec<&str> = vec!["0"; n];
    for id in circuit.non_ground_nodes() {
        names[id.index()] = circuit.node_name(id);
    }
    pairs
        .into_iter()
        .map(|(lo, hi)| Fault::bridge(names[lo], names[hi], base_ohms))
        .collect()
}

/// One pinhole fault per pn structure in the circuit: every MOSFET gate
/// (the paper's rule, device insertion order), then every diode's
/// anode–cathode junction, then both junctions (base–emitter, then
/// base–collector) of every BJT — all with dictionary shunt
/// `base_ohms`. Circuits without diodes or BJTs get exactly the
/// MOS-only list the original derivation produced, so the paper's
/// 55-fault IV-converter dictionary is unchanged.
pub fn topology_pinhole_faults(circuit: &Circuit, base_ohms: f64) -> Vec<Fault> {
    let mut faults = exhaustive_pinhole_faults(&circuit.mosfet_names(), base_ohms);
    for name in circuit.diode_names() {
        faults.push(Fault::junction_pinhole(name, Junction::AnodeCathode, base_ohms));
    }
    for name in circuit.bjt_names() {
        faults.push(Fault::junction_pinhole(name.clone(), Junction::BaseEmitter, base_ohms));
        faults.push(Fault::junction_pinhole(name, Junction::BaseCollector, base_ohms));
    }
    faults
}

/// Derives a full dictionary from circuit topology: bridges per
/// `derivation` at `bridge_ohms`, plus a pinhole at every MOS gate at
/// `pinhole_ohms`.
///
/// With [`BridgeDerivation::Exhaustive`] on the IV-converter netlist
/// this reproduces the paper's 55-fault dictionary (45 bridges over the
/// 10 non-ground nets + 10 pinholes) exactly, in the same order as the
/// hand-coded [`IvConverter`] enumeration.
///
/// [`IvConverter`]: https://docs.rs/castg-macros
pub fn derive_fault_dictionary(
    circuit: &Circuit,
    derivation: BridgeDerivation,
    bridge_ohms: f64,
    pinhole_ohms: f64,
) -> FaultDictionary {
    let mut faults = match derivation {
        BridgeDerivation::Exhaustive => {
            let nets = fault_site_nets(circuit);
            let refs: Vec<&str> = nets.iter().map(String::as_str).collect();
            exhaustive_bridge_faults(&refs, bridge_ohms)
        }
        BridgeDerivation::Adjacent => adjacent_bridge_faults(circuit, bridge_ohms),
    };
    faults.extend(topology_pinhole_faults(circuit, pinhole_ohms));
    FaultDictionary::new(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castg_spice::{Circuit, MosParams, MosPolarity, Waveform};

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_resistor("R1", vin, mid, 1e3).unwrap();
        c.add_resistor("R2", mid, out, 1e3).unwrap();
        c.add_resistor("R3", out, Circuit::GROUND, 2e3).unwrap();
        c
    }

    #[test]
    fn sites_are_non_ground_nets_in_order() {
        assert_eq!(fault_site_nets(&divider()), vec!["vin", "mid", "out"]);
    }

    #[test]
    fn exhaustive_derivation_is_choose_two_plus_pinholes() {
        let mut c = divider();
        let g = c.node("g");
        c.add_resistor("RG", g, Circuit::GROUND, 1e6).unwrap();
        c.add_mosfet(
            "M1",
            c.find_node("out").unwrap(),
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        let dict = derive_fault_dictionary(&c, BridgeDerivation::Exhaustive, 10e3, 2e3);
        // C(4,2) bridges + 1 pinhole.
        assert_eq!(dict.len(), 6 + 1);
        assert_eq!(dict.count(crate::FaultKind::Bridge), 6);
        assert_eq!(dict.count(crate::FaultKind::Pinhole), 1);
        assert!(dict.by_name("pinhole(M1)").is_some());
        // Every derived fault injects into the circuit it came from.
        for f in dict.iter() {
            f.inject(&c).unwrap();
        }
    }

    #[test]
    fn derived_pinholes_cover_diode_and_bjt_junctions() {
        let mut c = divider();
        let (vin, mid, out) =
            (c.find_node("vin").unwrap(), c.find_node("mid").unwrap(), c.find_node("out").unwrap());
        c.add_diode("D1", vin, mid, castg_spice::DiodeParams::signal_default()).unwrap();
        c.add_bjt(
            "Q1",
            vin,
            mid,
            out,
            castg_spice::BjtPolarity::Npn,
            castg_spice::BjtParams::signal_default(),
        )
        .unwrap();
        let faults = topology_pinhole_faults(&c, 2e3);
        let names: Vec<String> = faults.iter().map(Fault::name).collect();
        assert_eq!(names, vec!["pinhole(D1)", "pinhole(Q1:be)", "pinhole(Q1:bc)"]);
        // Every derived junction pinhole injects into its own circuit.
        for f in &faults {
            f.inject(&c).unwrap();
        }
        // Bridges enumerate the new devices' terminal adjacencies too.
        let bridges = adjacent_bridge_faults(&c, 10e3);
        let bnames: Vec<String> = bridges.iter().map(Fault::name).collect();
        assert!(bnames.contains(&"bridge(vin,out)".to_string()), "{bnames:?}");
    }

    #[test]
    fn adjacent_derivation_only_pairs_sharing_a_device() {
        let faults = adjacent_bridge_faults(&divider(), 10e3);
        let names: Vec<String> = faults.iter().map(Fault::name).collect();
        // vin–gnd (V1), vin–mid (R1), mid–out (R2), out–gnd (R3) — but
        // never vin–out (no shared device). Ground-inclusive pairs are
        // named with the "0" net.
        assert!(names.contains(&"bridge(0,vin)".to_string()));
        assert!(names.contains(&"bridge(vin,mid)".to_string()));
        assert!(names.contains(&"bridge(mid,out)".to_string()));
        assert!(names.contains(&"bridge(0,out)".to_string()));
        assert!(!names.iter().any(|n| n == "bridge(vin,out)"));
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn adjacent_derivation_dedupes_parallel_devices() {
        let mut c = divider();
        // A second device across vin–mid must not duplicate the pair.
        let (vin, mid) = (c.find_node("vin").unwrap(), c.find_node("mid").unwrap());
        c.add_capacitor("C1", vin, mid, 1e-12).unwrap();
        let faults = adjacent_bridge_faults(&c, 10e3);
        let n_vin_mid =
            faults.iter().filter(|f| f.name() == "bridge(vin,mid)").count();
        assert_eq!(n_vin_mid, 1);
    }

    #[test]
    fn degenerate_self_pairs_are_skipped() {
        let mut c = Circuit::new();
        let d = c.node("d");
        // Diode-connected MOSFET: d appears twice in the terminal list.
        c.add_isource("IB", Circuit::GROUND, d, Waveform::dc(1e-5)).unwrap();
        c.add_mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 1e-6),
        )
        .unwrap();
        let faults = adjacent_bridge_faults(&c, 10e3);
        assert!(faults.iter().all(|f| !f.name().contains("bridge(d,d)")));
    }
}
