use std::fmt;

use castg_spice::{Circuit, DeviceKind};

use crate::FaultError;

/// Fraction of the channel length from the drain at which the pinhole
/// defect sits. The paper adopts Eckersall's observation that defects
/// near the drain have low detectability and fixes the position at 25 %
/// of the channel length from the drain (§3.4).
pub const PINHOLE_POSITION_FROM_DRAIN: f64 = 0.25;

/// The two fault classes of the paper's dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Resistive short between two nodes.
    Bridge,
    /// Gate-oxide pinhole short into the channel.
    Pinhole,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Bridge => write!(f, "bridge"),
            FaultKind::Pinhole => write!(f, "pinhole"),
        }
    }
}

/// Which pn junction of a diode or BJT a junction pinhole shorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Junction {
    /// The diode's anode–cathode junction.
    AnodeCathode,
    /// A BJT's base–emitter junction.
    BaseEmitter,
    /// A BJT's base–collector junction.
    BaseCollector,
}

impl fmt::Display for Junction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Junction::AnodeCathode => write!(f, "ak"),
            Junction::BaseEmitter => write!(f, "be"),
            Junction::BaseCollector => write!(f, "bc"),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Descriptor {
    Bridge { node_a: String, node_b: String, base_ohms: f64 },
    Pinhole { device: String, position: f64, base_ohms: f64 },
    JunctionPinhole { device: String, junction: Junction, base_ohms: f64 },
}

/// One modeled fault: a location, a fault type, a dictionary ("initial
/// impact") resistance, and a multiplicative impact scale.
///
/// The *impact* of a fault reflects the physical size of the defect
/// (§2.2). For both models a **larger resistance means a weaker fault**:
/// scale > 1 weakens the dictionary fault, scale < 1 intensifies it.
/// Locations are recorded as node/device *names* so a fault can be
/// injected into any circuit variant of the same macro (nominal, process
/// Monte-Carlo samples, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    descriptor: Descriptor,
    impact_scale: f64,
}

impl Fault {
    /// A bridging fault between two named nodes with the dictionary
    /// resistance `base_ohms`.
    pub fn bridge(node_a: impl Into<String>, node_b: impl Into<String>, base_ohms: f64) -> Self {
        Fault {
            descriptor: Descriptor::Bridge {
                node_a: node_a.into(),
                node_b: node_b.into(),
                base_ohms,
            },
            impact_scale: 1.0,
        }
    }

    /// A pinhole fault in the named MOSFET with dictionary shunt
    /// `base_ohms`, at the paper's standard position
    /// ([`PINHOLE_POSITION_FROM_DRAIN`]).
    pub fn pinhole(device: impl Into<String>, base_ohms: f64) -> Self {
        Fault {
            descriptor: Descriptor::Pinhole {
                device: device.into(),
                position: PINHOLE_POSITION_FROM_DRAIN,
                base_ohms,
            },
            impact_scale: 1.0,
        }
    }

    /// A pinhole fault at an explicit channel position (fraction of the
    /// channel length from the drain, in `(0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `position` is outside the open interval `(0, 1)`.
    pub fn pinhole_at(device: impl Into<String>, base_ohms: f64, position: f64) -> Self {
        assert!(
            position > 0.0 && position < 1.0,
            "pinhole position must be in (0, 1), got {position}"
        );
        Fault {
            descriptor: Descriptor::Pinhole { device: device.into(), position, base_ohms },
            impact_scale: 1.0,
        }
    }

    /// A pinhole defect through a pn junction of the named diode or
    /// BJT: a resistive short across the junction's two terminals with
    /// dictionary resistance `base_ohms`. Diodes take
    /// [`Junction::AnodeCathode`]; BJTs take [`Junction::BaseEmitter`]
    /// or [`Junction::BaseCollector`].
    pub fn junction_pinhole(
        device: impl Into<String>,
        junction: Junction,
        base_ohms: f64,
    ) -> Self {
        Fault {
            descriptor: Descriptor::JunctionPinhole {
                device: device.into(),
                junction,
                base_ohms,
            },
            impact_scale: 1.0,
        }
    }

    /// The fault class.
    pub fn kind(&self) -> FaultKind {
        match self.descriptor {
            Descriptor::Bridge { .. } => FaultKind::Bridge,
            Descriptor::Pinhole { .. } | Descriptor::JunctionPinhole { .. } => FaultKind::Pinhole,
        }
    }

    /// A stable human-readable name, e.g. `bridge(out,inn)`,
    /// `pinhole(M3)` or `pinhole(Q1:be)`.
    pub fn name(&self) -> String {
        match &self.descriptor {
            Descriptor::Bridge { node_a, node_b, .. } => format!("bridge({node_a},{node_b})"),
            Descriptor::Pinhole { device, .. } => format!("pinhole({device})"),
            Descriptor::JunctionPinhole { device, junction, .. } => {
                match junction {
                    // A diode has one junction; the label would be noise.
                    Junction::AnodeCathode => format!("pinhole({device})"),
                    _ => format!("pinhole({device}:{junction})"),
                }
            }
        }
    }

    /// The dictionary (scale = 1) model resistance in ohms.
    pub fn base_resistance(&self) -> f64 {
        match &self.descriptor {
            Descriptor::Bridge { base_ohms, .. }
            | Descriptor::Pinhole { base_ohms, .. }
            | Descriptor::JunctionPinhole { base_ohms, .. } => *base_ohms,
        }
    }

    /// The current impact scale (1 = dictionary impact; larger = weaker).
    pub fn impact_scale(&self) -> f64 {
        self.impact_scale
    }

    /// Returns a copy of the fault with the given impact scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_impact_scale(&self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "impact scale must be positive, got {scale}");
        Fault { descriptor: self.descriptor.clone(), impact_scale: scale }
    }

    /// Returns a weakened copy (impact scale multiplied by `factor > 1`).
    pub fn weakened(&self, factor: f64) -> Self {
        self.with_impact_scale(self.impact_scale * factor)
    }

    /// Returns an intensified copy (impact scale divided by `factor > 1`).
    pub fn intensified(&self, factor: f64) -> Self {
        self.with_impact_scale(self.impact_scale / factor)
    }

    /// The effective model resistance: `base · scale`.
    pub fn effective_resistance(&self) -> f64 {
        self.base_resistance() * self.impact_scale
    }

    /// Builds a faulty copy of `circuit` with this fault's model inserted.
    ///
    /// * Bridge: adds resistor `F_bridge` between the two named nodes.
    /// * Junction pinhole: adds resistor `F_pinhole` across the named
    ///   diode/BJT junction's terminals — a pure additive patch, like a
    ///   bridge.
    /// * Pinhole: replaces the target MOSFET `M` by two series segments
    ///   (`M__d` of length `position·L` on the drain side, `M__s` of
    ///   length `(1−position)·L` on the source side, joined at new node
    ///   `M__ph`) and shunts the gate to the joint through `F_pinhole`
    ///   (the Eckersall model of the paper's Fig. 7).
    ///
    /// # Delta injection
    ///
    /// When `circuit` carries a compiled assembly schedule (see
    /// [`Circuit::compile_plan`]), the variant *shares and patches* it
    /// instead of recompiling: a **bridge** is a pure delta-stamp —
    /// four conductance ops appended to the nominal plan, no netlist
    /// walk, no sparse-pattern re-analysis beyond the template rebuild
    /// its new slots force. A **pinhole** is structural (it interns the
    /// mid-channel node, shifting every branch row), so its variant
    /// recompiles once — amortized across all tests of a campaign. The
    /// patched and recompiled variants are bit-identical; the campaign
    /// differential harness pins this against
    /// [`inject_rebuilt`](Fault::inject_rebuilt).
    ///
    /// # Errors
    ///
    /// [`FaultError::UnknownNode`] / [`FaultError::UnknownDevice`] /
    /// [`FaultError::NotAMosfet`] / [`FaultError::DegenerateBridge`] when
    /// the fault does not apply to this circuit, and
    /// [`FaultError::Netlist`] if injected names collide with existing
    /// devices.
    pub fn inject(&self, circuit: &Circuit) -> Result<Circuit, FaultError> {
        let mut faulty = circuit.clone();
        match &self.descriptor {
            Descriptor::Bridge { node_a, node_b, .. } => {
                let a = faulty
                    .find_node(node_a)
                    .ok_or_else(|| FaultError::UnknownNode { name: node_a.clone() })?;
                let b = faulty
                    .find_node(node_b)
                    .ok_or_else(|| FaultError::UnknownNode { name: node_b.clone() })?;
                if a == b {
                    return Err(FaultError::DegenerateBridge { name: node_a.clone() });
                }
                faulty.add_resistor("F_bridge", a, b, self.effective_resistance())?;
            }
            Descriptor::JunctionPinhole { device, junction, .. } => {
                let dev = faulty
                    .device(device)
                    .ok_or_else(|| FaultError::UnknownDevice { name: device.clone() })?;
                let (a, b) = match (dev.kind(), junction) {
                    (DeviceKind::Diode { a, k, .. }, Junction::AnodeCathode) => (*a, *k),
                    (DeviceKind::Bjt { b, e, .. }, Junction::BaseEmitter) => (*b, *e),
                    (DeviceKind::Bjt { c, b, .. }, Junction::BaseCollector) => (*b, *c),
                    _ => {
                        return Err(FaultError::NoSuchJunction {
                            name: device.clone(),
                            junction: junction.to_string(),
                        })
                    }
                };
                faulty.add_resistor("F_pinhole", a, b, self.effective_resistance())?;
            }
            Descriptor::Pinhole { device, position, .. } => {
                let dev = faulty
                    .device(device)
                    .ok_or_else(|| FaultError::UnknownDevice { name: device.clone() })?;
                let (d, g, s, b, polarity, params) = match dev.kind() {
                    DeviceKind::Mosfet { d, g, s, b, polarity, params } => {
                        (*d, *g, *s, *b, *polarity, *params)
                    }
                    _ => return Err(FaultError::NotAMosfet { name: device.clone() }),
                };
                faulty.remove(device)?;
                let mid = faulty.node(&format!("{device}__ph"));
                // Drain-side segment: `position` of the channel length.
                let mut p_drain = params;
                p_drain.l = params.l * position;
                let mut p_source = params;
                p_source.l = params.l * (1.0 - position);
                faulty.add_mosfet(&format!("{device}__d"), d, g, mid, b, polarity, p_drain)?;
                faulty.add_mosfet(&format!("{device}__s"), mid, g, s, b, polarity, p_source)?;
                faulty.add_resistor("F_pinhole", g, mid, self.effective_resistance())?;
            }
        }
        Ok(faulty)
    }

    /// [`inject`](Fault::inject) through the recompile-from-netlist
    /// path: the faulted copy drops any (patched) compiled plan, so its
    /// first analysis rebuilds plan, sparse template and symbolic
    /// analysis from the mutated netlist.
    ///
    /// This is the reference arm of the campaign differential harness —
    /// the delta-injection fast path must match it bit for bit. There
    /// is no other reason to prefer it.
    ///
    /// # Errors
    ///
    /// As for [`inject`](Fault::inject).
    pub fn inject_rebuilt(&self, circuit: &Circuit) -> Result<Circuit, FaultError> {
        let mut faulty = self.inject(circuit)?;
        faulty.drop_compiled_plan();
        Ok(faulty)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [R = {:.3e} Ω, scale = {:.3}]",
            self.name(),
            self.effective_resistance(),
            self.impact_scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castg_spice::{DcAnalysis, MosParams, MosPolarity, Waveform};

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        c
    }

    #[test]
    fn bridge_changes_operating_point() {
        let c = divider();
        let fault = Fault::bridge("b", "0", 1e3); // halves the lower leg
        let faulty = fault.inject(&c).unwrap();
        let v_nom = DcAnalysis::new(&c).solve().unwrap().voltage(c.find_node("b").unwrap());
        let v_flt =
            DcAnalysis::new(&faulty).solve().unwrap().voltage(faulty.find_node("b").unwrap());
        assert!((v_nom - 1.0).abs() < 1e-6);
        assert!((v_flt - 2.0 / 3.0).abs() < 1e-6, "v_flt {v_flt}");
    }

    #[test]
    fn bridge_validates_nodes() {
        let c = divider();
        assert!(matches!(
            Fault::bridge("nope", "b", 1e3).inject(&c),
            Err(FaultError::UnknownNode { .. })
        ));
        assert!(matches!(
            Fault::bridge("b", "b", 1e3).inject(&c),
            Err(FaultError::DegenerateBridge { .. })
        ));
    }

    #[test]
    fn impact_scaling_multiplies_resistance() {
        let f = Fault::bridge("a", "b", 10e3);
        assert_eq!(f.effective_resistance(), 10e3);
        assert_eq!(f.weakened(4.0).effective_resistance(), 40e3);
        assert_eq!(f.intensified(2.0).effective_resistance(), 5e3);
        assert_eq!(f.with_impact_scale(0.1).effective_resistance(), 1e3);
        // The original is unchanged (copies are returned).
        assert_eq!(f.impact_scale(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn impact_scale_must_be_positive() {
        Fault::bridge("a", "b", 1e3).with_impact_scale(0.0);
    }

    #[test]
    fn pinhole_splits_transistor_and_adds_shunt() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add_vsource("VD", d, Circuit::GROUND, Waveform::dc(3.0)).unwrap();
        c.add_vsource("VG", g, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 2e-6),
        )
        .unwrap();

        let faulty = Fault::pinhole("M1", 2e3).inject(&c).unwrap();
        assert!(faulty.device("M1").is_none());
        assert!(faulty.device("M1__d").is_some());
        assert!(faulty.device("M1__s").is_some());
        assert!(faulty.device("F_pinhole").is_some());
        assert!(faulty.find_node("M1__ph").is_some());
        // Channel lengths: 25 % on the drain side, 75 % on the source side.
        match faulty.device("M1__d").unwrap().kind() {
            DeviceKind::Mosfet { params, .. } => assert!((params.l - 0.5e-6).abs() < 1e-12),
            k => panic!("unexpected {k:?}"),
        }
        match faulty.device("M1__s").unwrap().kind() {
            DeviceKind::Mosfet { params, .. } => assert!((params.l - 1.5e-6).abs() < 1e-12),
            k => panic!("unexpected {k:?}"),
        }
        // The faulty circuit must still solve.
        let sol = DcAnalysis::new(&faulty).solve().unwrap();
        // The pinhole pulls gate current: VG's branch current is nonzero.
        let ig = sol.source_current("VG").unwrap();
        assert!(ig.abs() > 1e-9, "gate current {ig}");
    }

    #[test]
    fn junction_pinhole_shorts_the_right_terminals() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        let cb = c.node("cb");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_diode("D1", vin, out, castg_spice::DiodeParams::signal_default()).unwrap();
        c.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        c.add_resistor("RB", vin, cb, 100e3).unwrap();
        c.add_bjt(
            "Q1",
            vin,
            cb,
            Circuit::GROUND,
            castg_spice::BjtPolarity::Npn,
            castg_spice::BjtParams::signal_default(),
        )
        .unwrap();

        // Diode a–k short: out rises toward vin through the 2k shunt.
        let f = Fault::junction_pinhole("D1", Junction::AnodeCathode, 2e3);
        assert_eq!(f.name(), "pinhole(D1)");
        assert_eq!(f.kind(), FaultKind::Pinhole);
        let faulty = f.inject(&c).unwrap();
        let dev = faulty.device("F_pinhole").unwrap();
        assert_eq!(dev.nodes(), c.device("D1").unwrap().nodes());

        // BJT b–e short drags the base to ground through 2k.
        let f_be = Fault::junction_pinhole("Q1", Junction::BaseEmitter, 2e3);
        assert_eq!(f_be.name(), "pinhole(Q1:be)");
        let v_nom = DcAnalysis::new(&c).solve().unwrap().voltage(c.find_node("cb").unwrap());
        let faulty = f_be.inject(&c).unwrap();
        let v_flt =
            DcAnalysis::new(&faulty).solve().unwrap().voltage(faulty.find_node("cb").unwrap());
        assert!(v_flt < v_nom, "b–e short must drop the base: {v_flt} vs {v_nom}");

        // BJT b–c junction names both terminals.
        let f_bc = Fault::junction_pinhole("Q1", Junction::BaseCollector, 2e3);
        assert_eq!(f_bc.name(), "pinhole(Q1:bc)");
        let faulty = f_bc.inject(&c).unwrap();
        let dev = faulty.device("F_pinhole").unwrap();
        assert!(dev.nodes().contains(&c.find_node("cb").unwrap()));
        assert!(dev.nodes().contains(&c.find_node("vin").unwrap()));
    }

    #[test]
    fn junction_pinhole_rejects_wrong_kinds() {
        let mut c = divider();
        let (a, b) = (c.find_node("a").unwrap(), c.find_node("b").unwrap());
        c.add_diode("D1", a, b, castg_spice::DiodeParams::signal_default()).unwrap();
        assert!(matches!(
            Fault::junction_pinhole("R1", Junction::AnodeCathode, 2e3).inject(&c),
            Err(FaultError::NoSuchJunction { .. })
        ));
        assert!(matches!(
            Fault::junction_pinhole("D1", Junction::BaseEmitter, 2e3).inject(&c),
            Err(FaultError::NoSuchJunction { .. })
        ));
        assert!(matches!(
            Fault::junction_pinhole("D9", Junction::AnodeCathode, 2e3).inject(&c),
            Err(FaultError::UnknownDevice { .. })
        ));
    }

    #[test]
    fn pinhole_rejects_non_mosfets_and_missing_devices() {
        let c = divider();
        assert!(matches!(
            Fault::pinhole("R1", 2e3).inject(&c),
            Err(FaultError::NotAMosfet { .. })
        ));
        assert!(matches!(
            Fault::pinhole("M9", 2e3).inject(&c),
            Err(FaultError::UnknownDevice { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "position")]
    fn pinhole_position_validated() {
        Fault::pinhole_at("M1", 2e3, 1.5);
    }

    #[test]
    fn names_and_display() {
        let f = Fault::bridge("out", "inn", 10e3);
        assert_eq!(f.name(), "bridge(out,inn)");
        assert_eq!(f.kind(), FaultKind::Bridge);
        assert!(f.to_string().contains("bridge(out,inn)"));
        let p = Fault::pinhole("M3", 2e3);
        assert_eq!(p.name(), "pinhole(M3)");
        assert_eq!(p.kind(), FaultKind::Pinhole);
        assert_eq!(format!("{}", FaultKind::Pinhole), "pinhole");
    }

    /// Delta injection (patched plan, the default when the base is
    /// compiled) must solve bit-identically to the recompile reference
    /// path, for both fault models.
    #[test]
    fn delta_injection_matches_rebuilt_bitwise() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add_vsource("VD", d, Circuit::GROUND, Waveform::dc(3.0)).unwrap();
        c.add_vsource("VG", g, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        c.add_resistor("RL", d, g, 50e3).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 2e-6),
        )
        .unwrap();
        c.compile_plan();

        for fault in [Fault::bridge("d", "g", 1e3), Fault::pinhole("M1", 2e3)] {
            let patched = fault.inject(&c).unwrap();
            let rebuilt = fault.inject_rebuilt(&c).unwrap();
            assert_eq!(patched, rebuilt, "{}: netlists must agree", fault.name());
            let sp = DcAnalysis::new(&patched).solve().unwrap();
            let sr = DcAnalysis::new(&rebuilt).solve().unwrap();
            for (a, b) in sp.state().iter().zip(sr.state()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", fault.name());
            }
        }
    }

    #[test]
    fn injection_does_not_mutate_original() {
        let c = divider();
        let before = c.clone();
        let _ = Fault::bridge("a", "b", 1e3).inject(&c).unwrap();
        assert_eq!(c, before);
    }
}
