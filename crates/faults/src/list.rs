//! Exhaustive fault-list generation and the fault dictionary.
//!
//! The paper constructs its dictionary exhaustively: "an exhaustive list
//! of bridging and pin-hole faults in the circuit … resulting in a fault
//! list containing 55 faults" — all 45 node pairs at 10 kΩ plus all 10
//! transistors at 2 kΩ (§3.4).

use crate::{Fault, FaultKind};

/// All `C(n, 2)` bridging faults over the given fault-site node names,
/// each with dictionary resistance `base_ohms`.
///
/// Pairs are emitted in lexicographic index order, matching the paper's
/// exhaustive enumeration.
pub fn exhaustive_bridge_faults(nodes: &[&str], base_ohms: f64) -> Vec<Fault> {
    let mut out = Vec::with_capacity(nodes.len() * nodes.len().saturating_sub(1) / 2);
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            out.push(Fault::bridge(nodes[i], nodes[j], base_ohms));
        }
    }
    out
}

/// One pinhole fault per named MOSFET, each with dictionary shunt
/// `base_ohms` at the paper's standard 25 %-from-drain position.
pub fn exhaustive_pinhole_faults(devices: &[String], base_ohms: f64) -> Vec<Fault> {
    devices.iter().map(|d| Fault::pinhole(d.clone(), base_ohms)).collect()
}

/// The modeled-fault dictionary driving test generation.
///
/// # Example
///
/// ```
/// use castg_faults::{exhaustive_bridge_faults, FaultDictionary, FaultKind};
///
/// let faults = exhaustive_bridge_faults(&["a", "b", "c"], 10e3);
/// let dict = FaultDictionary::new(faults);
/// assert_eq!(dict.len(), 3); // C(3,2)
/// assert_eq!(dict.count(FaultKind::Bridge), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultDictionary {
    faults: Vec<Fault>,
}

impl FaultDictionary {
    /// Wraps a list of faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultDictionary { faults }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> impl Iterator<Item = &Fault> {
        self.faults.iter()
    }

    /// Fault at index `i`.
    pub fn get(&self, i: usize) -> Option<&Fault> {
        self.faults.get(i)
    }

    /// Number of faults of a given kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.faults.iter().filter(|f| f.kind() == kind).count()
    }

    /// Appends more faults.
    pub fn extend(&mut self, faults: impl IntoIterator<Item = Fault>) {
        self.faults.extend(faults);
    }

    /// Looks a fault up by its [`Fault::name`].
    pub fn by_name(&self, name: &str) -> Option<&Fault> {
        self.faults.iter().find(|f| f.name() == name)
    }
}

impl FromIterator<Fault> for FaultDictionary {
    fn from_iter<T: IntoIterator<Item = Fault>>(iter: T) -> Self {
        FaultDictionary { faults: iter.into_iter().collect() }
    }
}

impl IntoIterator for FaultDictionary {
    type Item = Fault;
    type IntoIter = std::vec::IntoIter<Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_nodes_give_fortyfive_bridges() {
        let nodes: Vec<String> = (0..10).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let faults = exhaustive_bridge_faults(&refs, 10e3);
        assert_eq!(faults.len(), 45); // the paper's bridge count
        // All pairs distinct.
        let mut names: Vec<String> = faults.iter().map(Fault::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 45);
    }

    #[test]
    fn pinholes_one_per_device() {
        let devices: Vec<String> = (1..=10).map(|i| format!("M{i}")).collect();
        let faults = exhaustive_pinhole_faults(&devices, 2e3);
        assert_eq!(faults.len(), 10); // the paper's pinhole count
        assert!(faults.iter().all(|f| f.kind() == FaultKind::Pinhole));
        assert!(faults.iter().all(|f| f.base_resistance() == 2e3));
    }

    #[test]
    fn dictionary_counts_and_lookup() {
        let mut dict: FaultDictionary =
            exhaustive_bridge_faults(&["a", "b", "c"], 10e3).into_iter().collect();
        dict.extend(exhaustive_pinhole_faults(&["M1".into()], 2e3));
        assert_eq!(dict.len(), 4);
        assert_eq!(dict.count(FaultKind::Bridge), 3);
        assert_eq!(dict.count(FaultKind::Pinhole), 1);
        assert!(dict.by_name("bridge(a,b)").is_some());
        assert!(dict.by_name("bridge(b,a)").is_none());
        assert!(dict.get(3).is_some());
        assert!(dict.get(4).is_none());
        assert!(!dict.is_empty());
        assert_eq!(dict.iter().count(), 4);
    }

    #[test]
    fn empty_inputs_yield_empty_lists() {
        assert!(exhaustive_bridge_faults(&[], 1e3).is_empty());
        assert!(exhaustive_bridge_faults(&["only"], 1e3).is_empty());
        assert!(exhaustive_pinhole_faults(&[], 1e3).is_empty());
        assert!(FaultDictionary::default().is_empty());
    }
}
