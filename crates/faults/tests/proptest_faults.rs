//! Property-based tests of fault injection invariants.

use castg_faults::{exhaustive_bridge_faults, Fault};
use castg_spice::{Circuit, MosParams, MosPolarity, Waveform};
use proptest::prelude::*;

fn ladder(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let top = c.node("n0");
    c.add_vsource("V1", top, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
    let mut prev = top;
    for i in 1..n {
        let next = c.node(&format!("n{i}"));
        c.add_resistor(&format!("R{i}"), prev, next, 1e3).unwrap();
        prev = next;
    }
    c.add_resistor("Rend", prev, Circuit::GROUND, 1e3).unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exhaustive bridge enumeration has exactly C(n,2) members with
    /// unique names for any node count.
    #[test]
    fn bridge_count_is_choose_two(n in 2usize..12) {
        let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let faults = exhaustive_bridge_faults(&refs, 10e3);
        prop_assert_eq!(faults.len(), n * (n - 1) / 2);
        let mut unique: Vec<String> = faults.iter().map(Fault::name).collect();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(unique.len(), faults.len());
    }

    /// Injecting a bridge adds exactly one device and no nodes; the
    /// original circuit is untouched.
    #[test]
    fn bridge_injection_shape(n in 3usize..8, a in 0usize..8, b in 0usize..8) {
        prop_assume!(a < n && b < n && a != b);
        let c = ladder(n);
        let before_devices = c.devices().len();
        let before_nodes = c.node_count();
        let fault = Fault::bridge(format!("n{a}"), format!("n{b}"), 10e3);
        let faulty = fault.inject(&c).unwrap();
        prop_assert_eq!(faulty.devices().len(), before_devices + 1);
        prop_assert_eq!(faulty.node_count(), before_nodes);
        prop_assert_eq!(c.devices().len(), before_devices);
    }

    /// Pinhole injection conserves the channel: the two segment lengths
    /// sum to the original length for any position.
    #[test]
    fn pinhole_conserves_channel_length(pos in 0.05f64..0.95) {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add_vsource("VD", d, Circuit::GROUND, Waveform::dc(3.0)).unwrap();
        c.add_vsource("VG", g, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
        let l0 = 2e-6;
        c.add_mosfet(
            "M1", d, g, Circuit::GROUND, Circuit::GROUND,
            MosPolarity::Nmos, MosParams::nmos_default(10e-6, l0),
        ).unwrap();
        let faulty = Fault::pinhole_at("M1", 2e3, pos).inject(&c).unwrap();
        let seg = |name: &str| -> f64 {
            match faulty.device(name).unwrap().kind() {
                castg_spice::DeviceKind::Mosfet { params, .. } => params.l,
                _ => panic!("expected mosfet"),
            }
        };
        prop_assert!((seg("M1__d") + seg("M1__s") - l0).abs() < 1e-18);
        prop_assert!((seg("M1__d") - pos * l0).abs() < 1e-18);
    }

    /// Impact scaling commutes with injection: the injected bridge
    /// resistor equals base × scale.
    #[test]
    fn injected_resistance_matches_scale(scale in 0.01f64..100.0) {
        let c = ladder(3);
        let fault = Fault::bridge("n0", "n1", 10e3).with_impact_scale(scale);
        let faulty = fault.inject(&c).unwrap();
        match faulty.device("F_bridge").unwrap().kind() {
            castg_spice::DeviceKind::Resistor { ohms, .. } => {
                prop_assert!((ohms - 10e3 * scale).abs() < 1e-6 * ohms);
            }
            _ => prop_assert!(false, "bridge must be a resistor"),
        }
    }
}
