//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! `bench_function`, `benchmark_group`/`sample_size`/`finish`, the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple but
//! honest wall-clock measurement loop: per sample, the closure is
//! batched to a minimum duration and the per-iteration time recorded;
//! the harness reports min/median/mean over the samples. Good enough to
//! track order-of-magnitude hot-path improvements without registry
//! access; not a replacement for criterion's statistics.

use std::time::{Duration, Instant};

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, per_iter_ns: Vec::with_capacity(samples) }
    }

    /// Times `f`, batching iterations so each sample spans at least a
    /// few milliseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: run until ~5 ms or 64 iters.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(5) && warm_iters < 64 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let warm_ns = warm_start.elapsed().as_nanos().max(1) as f64 / warm_iters as f64;
        // Aim for ~10 ms per sample, clamped to keep total runtime sane.
        let batch = ((10e6 / warm_ns).ceil() as u64).clamp(1, 100_000);

        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.per_iter_ns.push(ns);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, mut per_iter_ns: Vec<f64>) {
    if per_iter_ns.is_empty() {
        println!("{name:<50} no samples");
        return;
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{name:<50} median {:>12}  (min {:>12}, mean {:>12})",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean)
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&name, bencher.per_iter_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&full, bencher.per_iter_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { sample_size: 2 };
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_applies_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn formats_time_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12e3).ends_with("µs"));
        assert!(fmt_ns(12e6).ends_with("ms"));
        assert!(fmt_ns(12e9).ends_with(" s"));
    }
}
