//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam calling
//! convention (the spawn closure receives a `&Scope` so workers can
//! spawn further workers), implemented on top of `std::thread::scope`.
//! One behavioral difference: a panicking worker propagates the panic
//! at scope exit instead of surfacing it as `Err` — callers here treat
//! worker panics as fatal either way.

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Result type of [`scope`]; the error side carries a worker panic
    /// payload (never produced by this stand-in — panics propagate).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle that can spawn workers borrowing from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker; the closure receives this scope so it can
        /// spawn nested workers, as with crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose workers must all finish before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
