//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's
//! property-based tests use: the [`proptest!`] macro over functions with
//! `pattern in strategy` arguments, range strategies for `f64`/`usize`,
//! [`collection::vec`], `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! and [`ProptestConfig::with_cases`]. Inputs are generated from a
//! deterministic per-test PRNG (seeded from the test name and case
//! index), so failures are reproducible run to run.
//!
//! Shrinking is intentionally not implemented: a failing case reports
//! its case index and asserts with the offending values interpolated by
//! the assertion message instead.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// Deterministic splitmix64 PRNG driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851f42d4c957f2d }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        let span = self.end - self.start;
        if span == 0 {
            self.start
        } else {
            self.start + (rng.next_u64() % span as u64) as usize
        }
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        let span = (self.end - self.start) as u64;
        if span == 0 {
            self.start
        } else {
            self.start + (rng.next_u64() % span) as i64
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives the cases of one property (used by the [`proptest!`]
/// expansion; not part of the public proptest API).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name_seed: u64,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // FNV-1a over the test name: stable per-test seed.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRunner { config, name_seed: h, name }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.name_seed ^ ((case as u64) << 32 | 0xa5a5_5a5a))
    }

    /// Reacts to a case outcome: rejections are skipped, failures panic
    /// with the case index for reproduction.
    pub fn handle(&self, outcome: Result<(), TestCaseError>, case: u32) {
        match outcome {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{}' failed at case {case}: {msg}", self.name)
            }
        }
    }
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        // Conditions are frequently float comparisons, where the
        // negated form is the intended NaN-catching one.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let failed = !($cond);
        if failed {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let failed = !($cond);
        if failed {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        // Comparisons here are frequently on floats, where `!(a > b)`
        // is the intended NaN-rejecting form.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let rejected = !($cond);
        if rejected {
            return Err($crate::TestCaseError::Reject);
        }
    }};
}

/// Declares property tests: `#[test]` functions whose arguments are
/// drawn from strategies via `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                runner.handle(outcome, case);
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..7) {
            prop_assert!((-2.0..3.0).contains(&x), "x = {x}");
            prop_assert!((1..7).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0.0f64..1.0, 3..9)) {
            prop_assert!(v.len() >= 3 && v.len() < 9, "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips_cases(x in 0.0f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }

    #[test]
    fn fixed_vec_length() {
        let strat = crate::collection::vec(0.0f64..1.0, 5usize);
        let mut rng = crate::TestRng::new(1);
        assert_eq!(crate::Strategy::generate(&strat, &mut rng).len(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let runner = crate::TestRunner::new(crate::ProptestConfig::default(), "det");
        let a = crate::Strategy::generate(&(0.0f64..1.0), &mut runner.rng_for(3));
        let b = crate::Strategy::generate(&(0.0f64..1.0), &mut runner.rng_for(3));
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        let runner = crate::TestRunner::new(crate::ProptestConfig::default(), "boom");
        runner.handle(Err(crate::TestCaseError::Fail("nope".into())), 7);
    }
}
