//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning `lock`/`read`/`write`
//! methods — implemented as thin wrappers over `std::sync`. Poisoned
//! guards are recovered transparently, matching `parking_lot`'s
//! poison-free semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
