//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen` for `f64`/`u64`. The
//! generator is xoshiro256++ seeded through splitmix64 — deterministic
//! for a given seed, which is all the Monte-Carlo process-variation
//! model needs.

/// Types that can be sampled uniformly by an [`Rng`].
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Sample for f64 {
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Draws a uniform value of type `T` (for `f64`: in `[0, 1)`).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality PRNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_with_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
